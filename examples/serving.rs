//! Concurrent batched serving: one shared, immutable Mogul index answering a
//! mixed in-database / out-of-sample workload across a worker pool, with
//! measured queries/sec as the worker count grows.
//!
//! The swept worker counts are derived from the host's
//! `available_parallelism`, so the example demonstrates real scaling on
//! multi-core machines instead of a hardcoded ladder; pass a number to pin
//! the maximum worker count instead:
//!
//! ```text
//! cargo run --example serving --release          # sweep 1 ..= 2·cores
//! cargo run --example serving --release -- 4     # sweep 1 ..= 4 workers
//! ```

use mogul_suite::core::RetrievalEngine;
use mogul_suite::data::sift::{sift_like, SiftLikeConfig};
use mogul_suite::serve::{Dispatch, QueryRequest, QueryServer, ServeOptions};
use std::sync::Arc;
use std::time::Instant;

/// Worker counts to sweep: powers of two from 1 up to twice the host's
/// available parallelism (or up to the CLI override), so the point of
/// diminishing returns is always visible in the output.
fn worker_counts() -> Vec<usize> {
    let cores = mogul_suite::sparse::effective_threads(0);
    let max = match std::env::args().nth(1) {
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|&w| w > 0)
            .unwrap_or_else(|| {
                eprintln!("ignoring invalid worker count {raw:?}; using auto-detection");
                2 * cores
            }),
        None => 2 * cores,
    };
    let mut counts = Vec::new();
    let mut w = 1usize;
    while w < max {
        counts.push(w);
        w *= 2;
    }
    counts.push(max);
    counts
}

fn main() {
    // A SIFT-like descriptor collection, split into a database and a set of
    // held-out query vectors.
    let dataset = sift_like(&SiftLikeConfig {
        num_points: 6_000,
        num_words: 60,
        dim: 32,
        ..Default::default()
    })
    .expect("generate descriptors");
    let (db, held_out) = dataset.split_out_queries(60, 11).expect("split queries");
    println!(
        "database: {} descriptors ({} held out as out-of-sample queries)",
        db.len(),
        held_out.len()
    );

    let build_start = Instant::now();
    let engine = RetrievalEngine::builder()
        .knn_k(5)
        .build(db.features().to_vec())
        .expect("build retrieval engine");
    println!("indexed in {:.2} s", build_start.elapsed().as_secs_f64());

    // A mixed batch: every held-out vector as an out-of-sample request,
    // interleaved with in-database requests.
    let mut batch = Vec::new();
    for (i, (feature, _)) in held_out.iter().enumerate() {
        batch.push(QueryRequest::in_database(i * 31 % db.len(), 10));
        batch.push(QueryRequest::out_of_sample(feature.clone(), 10));
    }

    // One immutable index shared by every server configuration.
    let index = Arc::new(engine.into_out_of_sample());
    let rounds = 5usize;
    let mut baseline = None;
    let cores = mogul_suite::sparse::effective_threads(0);
    println!("host parallelism: {cores} (see docs/OPERATIONS.md for sizing guidance)");
    for workers in worker_counts() {
        let server = QueryServer::new(Arc::clone(&index), ServeOptions::with_workers(workers));
        server.serve_batch(&batch); // warm the workspace pool
        let start = Instant::now();
        for _ in 0..rounds {
            for answer in server.serve_batch(&batch) {
                answer.expect("query failed");
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let qps = (rounds * batch.len()) as f64 / secs;
        let speedup = qps / *baseline.get_or_insert(qps);
        println!(
            "{workers} worker(s): {:>8.0} queries/sec  ({speedup:.2}x vs 1 worker)",
            qps
        );
    }
    println!("answers are bit-identical at every worker count (see crates/serve tests)");

    // Scalar vs panel dispatch on a single core: homogeneous in-database
    // batches are where the multi-RHS panel engine shines — one traversal of
    // the factor structure per 8-wide panel instead of per query (see
    // docs/PERFORMANCE.md; BENCH_query.json tracks this across commits).
    println!("\nscalar vs panel dispatch (1 worker, in-database requests, k = 10):");
    let scalar_server = QueryServer::new(
        Arc::clone(&index),
        ServeOptions::builder()
            .workers(1)
            .dispatch(Dispatch::Scalar)
            .build()
            .expect("valid options"),
    );
    let panel_server = QueryServer::new(Arc::clone(&index), ServeOptions::with_workers(1));
    let n = db.len();
    for batch_size in [1usize, 8, 32, 128] {
        let homogeneous: Vec<QueryRequest> = (0..batch_size)
            .map(|i| QueryRequest::in_database((i * 131) % n, 10))
            .collect();
        let mut qps = [0.0f64; 2];
        for (slot, server) in [&scalar_server, &panel_server].into_iter().enumerate() {
            server.serve_batch(&homogeneous); // warm
            let reps = (512 / batch_size).max(4);
            let start = Instant::now();
            for _ in 0..reps {
                for answer in server.serve_batch(&homogeneous) {
                    answer.expect("query failed");
                }
            }
            qps[slot] = (reps * batch_size) as f64 / start.elapsed().as_secs_f64();
        }
        println!(
            "  batch {batch_size:>4}: scalar {:>9.0} q/s   panel {:>9.0} q/s   ({:.2}x)",
            qps[0],
            qps[1],
            qps[1] / qps[0]
        );
    }
    println!("panel answers are bit-identical to scalar dispatch (crates/serve tests)");
}
