//! Manifold Ranking beyond images: music recommendation.
//!
//! The paper's introduction lists music recommendation as another application
//! of top-k Manifold Ranking [Bu et al., ACM MM 2010]. This example models a
//! song library as dense audio-attribute vectors (the PubFig-like generator
//! produces exactly that regime: many artists, unbalanced catalogue sizes)
//! and recommends songs for a seed track with the same Mogul index used for
//! image retrieval.
//!
//! ```text
//! cargo run --example music_recommendation --release
//! ```

use mogul_suite::core::{MogulConfig, MogulIndex, MrParams};
use mogul_suite::data::faces::{attribute_like, AttributeLikeConfig};
use mogul_suite::graph::knn::{knn_graph, KnnConfig};

fn main() {
    // A "song library": 30 artists, 900 tracks, 24 audio attributes
    // (tempo, energy, valence, ...), catalogue sizes follow a Zipf law.
    let library = attribute_like(&AttributeLikeConfig {
        num_people: 30,
        num_points: 900,
        dim: 24,
        within_spread: 0.3,
        imbalance: 0.9,
        ..Default::default()
    })
    .expect("generate song library");
    println!(
        "song library: {} tracks by {} artists",
        library.len(),
        library.num_classes()
    );

    let graph = knn_graph(library.features(), KnnConfig::with_k(5)).expect("similarity graph");
    let index = MogulIndex::build(
        &graph,
        MogulConfig {
            params: MrParams::default(),
            ..MogulConfig::default()
        },
    )
    .expect("recommendation index");

    // Recommend for three seed tracks by different artists.
    for seed in [0usize, 120, 500] {
        let artist = library.label(seed);
        let recs = index.search(seed, 8).expect("recommendations");
        let same_artist = recs
            .nodes()
            .iter()
            .filter(|&&t| library.label(t) == artist)
            .count();
        println!(
            "\nseed track {seed} (artist {artist}): {} recommendations, {} by the same artist",
            recs.len(),
            same_artist
        );
        for item in recs.items().iter().take(5) {
            println!(
                "  track {:4}  artist {:2}  score {:.6}",
                item.node,
                library.label(item.node),
                item.score
            );
        }
    }
    println!(
        "\nthe same O(n) index answers every recommendation query; no per-query \
         matrix inversion is needed"
    );
}
