//! `mogul_index` — save, load and inspect persistent index files (the
//! `MOG1` format of `mogul_core::persist`; see `docs/PERSISTENCE.md`).
//!
//! ```text
//! cargo run --release --example mogul_index                       # self-contained demo
//! cargo run --release --example mogul_index -- save <path> [--items N] [--dim D] [--knn K] [--exact] [--immutable]
//! cargo run --release --example mogul_index -- inspect <path>
//! cargo run --release --example mogul_index -- load <path> [--query ID] [--k K]
//! cargo run --release --example mogul_index -- wal_demo [dir]
//! cargo run --release --example mogul_index -- wal_inspect <dir>
//! cargo run --release --example mogul_index -- shard_demo [dir] [--items N] [--shards S]
//! ```
//!
//! * `save` builds an index over a deterministic synthetic corpus and writes
//!   it (an updatable index by default; `--immutable` writes the plain
//!   serving flavor).
//! * `inspect` validates every checksum and prints the section table.
//! * `load` cold-starts a `QueryServer` from the file — no k-NN
//!   construction, no clustering, no factorization — runs a query, and
//!   reports the load time.
//! * `wal_demo` runs the durability cycle: checkpoint + write-ahead log,
//!   a stream of updates, a simulated crash (torn tail appended to the
//!   segment), and recovery that is verified bit-identical to the writer
//!   that never crashed. This is what the CI `wal-smoke` job runs.
//! * `wal_inspect` validates a WAL directory (`MWAL` segments; see
//!   `docs/PERSISTENCE.md`) read-only and prints the segment table.
//! * `shard_demo` runs the sharding cycle (see `docs/SHARDING.md`): build a
//!   cluster-aligned S-shard index, apply routed updates, checkpoint it as
//!   a manifested shard directory, warm-start it back in parallel, and
//!   verify the reloaded index answers bit-identically — including the
//!   shard-skip statistics of the scatter-gather path. This is what the CI
//!   `shard-smoke` job runs.
//!
//! With no arguments the demo performs the whole cycle (save → inspect →
//! load → query → compare against the in-memory index) in `target/`, which
//! is also what the CI persistence smoke job runs.

use mogul_suite::core::persist;
use mogul_suite::core::update::IndexBuilder;
use mogul_suite::core::wal;
use mogul_suite::data::web::{web_like, WebLikeConfig};
use mogul_suite::serve::{IndexWriter, QueryServer, ServeOptions, UpdateRequest, WalSync};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct SaveOptions {
    items: usize,
    dim: usize,
    knn: usize,
    exact: bool,
    immutable: bool,
}

impl Default for SaveOptions {
    fn default() -> Self {
        SaveOptions {
            items: 2_000,
            dim: 16,
            knn: 5,
            exact: false,
            immutable: false,
        }
    }
}

fn corpus(items: usize, dim: usize) -> Vec<Vec<f64>> {
    web_like(&WebLikeConfig {
        num_points: items,
        num_topics: (items / 100).max(4),
        dim,
        background_fraction: 0.2,
        ..Default::default()
    })
    .expect("generate corpus")
    .features()
    .to_vec()
}

fn save(path: &Path, options: &SaveOptions) {
    println!(
        "building a {}-item, {}-dim {} index (knn = {}) ...",
        options.items,
        options.dim,
        if options.exact {
            "MogulE (complete LDL^T)"
        } else {
            "Mogul (incomplete LDL^T)"
        },
        options.knn
    );
    let features = corpus(options.items, options.dim);
    let start = Instant::now();
    let mut builder = IndexBuilder::new().knn_k(options.knn);
    if options.exact {
        builder = builder.exact_ranking();
    }
    let index = builder.build(features).expect("build index");
    let precompute_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    if options.immutable {
        persist::save_index(index.snapshot().base(), path).expect("save index");
    } else {
        persist::save_updatable(&index, path).expect("save index");
    }
    let save_secs = start.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "precompute {precompute_secs:.2} s, save {save_secs:.3} s, {bytes} bytes -> {}",
        path.display()
    );
}

fn inspect(path: &Path) {
    let info = persist::inspect(path).expect("inspect index file");
    print!("{info}");
}

fn load(path: &Path, query: usize, k: usize) -> f64 {
    let start = Instant::now();
    let server =
        QueryServer::warm_start(path, ServeOptions::with_workers(1)).expect("warm-start server");
    let load_secs = start.elapsed().as_secs_f64();
    println!(
        "cold start: {} items ready in {:.4} s (epoch {}, no precompute)",
        server.len(),
        load_secs,
        server.epoch()
    );
    let top = server.query_by_id(query, k).expect("query");
    println!("top-{k} for item {query}:");
    for item in top.items() {
        println!("  item {:>6}  score {:.6}", item.node, item.score);
    }
    load_secs
}

fn wal_inspect(dir: &Path) {
    let segments = wal::inspect_dir(dir).expect("inspect wal directory");
    if segments.is_empty() {
        println!("no wal segments in {}", dir.display());
        return;
    }
    println!(
        "{:<30} {:>12} {:>8} {:>12} {:>10}  torn tail",
        "segment", "base epoch", "records", "last epoch", "bytes"
    );
    for info in &segments {
        let name = info
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| info.path.display().to_string());
        let torn = match info.torn {
            Some(t) => format!("{} bytes at offset {}", t.bytes, t.offset),
            None => "-".to_string(),
        };
        println!(
            "{name:<30} {:>12} {:>8} {:>12} {:>10}  {torn}",
            info.base_epoch, info.records, info.last_epoch, info.bytes
        );
    }
    let last = segments.last().expect("non-empty");
    println!(
        "log is valid: {} segment(s), contiguous epochs up to {}",
        segments.len(),
        last.last_epoch
    );
}

fn wal_demo(dir: &Path) {
    let ckpt = dir.join("ckpt.mog1");
    let wal_dir = dir.join("wal");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_file(&ckpt);
    std::fs::create_dir_all(dir).expect("create demo dir");

    println!("== enable durability ==");
    let dim = 8;
    // Rebuilds only on demand, so the log (not an auto-checkpoint) is what
    // carries the tail of the stream through the crash.
    let index = IndexBuilder::new()
        .knn_k(5)
        .rebuild_policy(mogul_suite::core::update::RebuildPolicy::never())
        .build(corpus(600, dim))
        .expect("build index");
    let (server, writer) = IndexWriter::new(index, ServeOptions::with_workers(1));
    writer.set_checkpoint(Some(ckpt.clone()));
    writer
        .enable_wal(&wal_dir, WalSync::EveryRecord)
        .expect("enable wal");
    println!(
        "checkpoint -> {}\nwal segment -> {}",
        ckpt.display(),
        writer.wal_segment_path().expect("wal segment").display()
    );

    println!("\n== apply updates (append-before-apply, fsync per record) ==");
    let start = Instant::now();
    let apply_one = |i: u64| {
        if i % 5 == 4 {
            writer
                .apply(&[UpdateRequest::remove((i * 13 % 600) as usize)])
                .expect("apply remove");
        } else {
            let feature: Vec<f64> = (0..dim).map(|d| ((i * 7 + d as u64) % 10) as f64).collect();
            writer
                .apply(&[UpdateRequest::insert(feature)])
                .expect("apply insert");
        }
    };
    for i in 0..25u64 {
        apply_one(i);
    }
    // Mid-stream checkpoint: refactorize, save, rotate the log, collect
    // the stale segment.
    writer.checkpoint_now().expect("checkpoint");
    println!(
        "checkpointed at epoch {}, log rotated to {}",
        server.epoch(),
        writer.wal_segment_path().expect("wal segment").display()
    );
    for i in 25..40u64 {
        apply_one(i);
    }
    let epoch = server.epoch();
    println!(
        "40 updates + 1 checkpoint in {:.3} s, writer acknowledged epoch {epoch}",
        start.elapsed().as_secs_f64()
    );

    println!("\n== simulated crash (torn record appended to the segment) ==");
    let segment = writer.wal_segment_path().expect("wal segment");
    drop(writer);
    let mut bytes = std::fs::read(&segment).expect("read segment");
    bytes.extend_from_slice(&[0x7F; 11]);
    std::fs::write(&segment, &bytes).expect("tear segment");
    println!("appended 11 garbage bytes to {}", segment.display());

    println!("\n== recover ==");
    let start = Instant::now();
    let (recovered, _writer, outcome) =
        IndexWriter::warm_start_durable(&ckpt, &wal_dir, WalSync::EveryRecord, {
            ServeOptions::with_workers(1)
        })
        .expect("recover");
    println!(
        "recovered to epoch {} in {:.4} s: {} segment(s), {} record(s) scanned, \
         {} skipped (<= checkpoint watermark {}), {} replayed, {} torn byte(s) discarded",
        recovered.epoch(),
        start.elapsed().as_secs_f64(),
        outcome.log.segments,
        outcome.log.records,
        outcome.replay.skipped,
        outcome.replay.watermark,
        outcome.replay.applied,
        outcome.log.truncated_bytes
    );
    assert_eq!(
        recovered.epoch(),
        epoch,
        "recovery missed acknowledged epochs"
    );
    for id in recovered.snapshot().item_ids().into_iter().step_by(97) {
        assert_eq!(
            server.query_by_id(id, 5).expect("live query"),
            recovered.query_by_id(id, 5).expect("recovered query"),
            "recovered answers diverged at id {id}"
        );
    }
    println!("verified: recovered answers are bit-identical to the uncrashed writer");

    println!("\n== wal_inspect ==");
    wal_inspect(&wal_dir);
}

fn shard_demo(dir: &Path, items: usize, shards: usize) {
    use mogul_suite::core::{inspect_manifest, load_sharded, ShardedConfig, ShardedIndex};
    use mogul_suite::serve::ShardedWriter;

    let _ = std::fs::remove_dir_all(dir);
    let dim = 16;

    println!("== build ({items} items, {shards} shards) ==");
    let features = corpus(items, dim);
    let config = ShardedConfig::with_shards(shards).builder(
        IndexBuilder::new()
            .knn_k(5)
            .rebuild_policy(mogul_suite::core::update::RebuildPolicy::never()),
    );
    let start = Instant::now();
    let (index, report) = ShardedIndex::build(features.clone(), config).expect("sharded build");
    let sizes: Vec<usize> = report.groups.iter().map(Vec::len).collect();
    println!(
        "partitioned precompute in {:.2} s (parallel = {}), shard sizes {:?}",
        start.elapsed().as_secs_f64(),
        report.parallel,
        sizes
    );

    println!("\n== routed updates ==");
    let (server, writer) = ShardedWriter::new(index);
    let mut inserted = Vec::new();
    for i in 0..6u64 {
        let feature: Vec<f64> = (0..dim).map(|d| ((i * 7 + d as u64) % 10) as f64).collect();
        let report = writer
            .apply(&[UpdateRequest::insert(feature)])
            .expect("apply insert");
        inserted.push(report.inserted[0]);
    }
    writer
        .apply(&[UpdateRequest::remove(inserted[0])])
        .expect("apply remove");
    println!(
        "6 inserts + 1 removal routed; per-shard epochs {:?} (only owning shards advanced)",
        writer.shard_epochs()
    );

    println!("\n== checkpoint ==");
    let rebuilt = writer.checkpoint_clean().expect("checkpoint clean");
    writer.save_to(dir).expect("save sharded");
    let info = inspect_manifest(dir.join("manifest.mog1")).expect("inspect manifest");
    println!(
        "rebuilt shards {rebuilt:?}, wrote {} shard file(s) + manifest -> {}",
        info.shards.len(),
        dir.display()
    );
    for entry in &info.shards {
        println!(
            "  {:<18} ids [{}, {})  epoch {:>2}  {:>8} bytes  checksum {:016x}",
            entry.file_name,
            entry.id_base,
            entry.id_base + entry.id_len,
            entry.epoch,
            entry.file_len,
            entry.checksum
        );
    }

    println!("\n== parallel warm start ==");
    let start = Instant::now();
    let loaded = load_sharded(dir).expect("load sharded");
    println!(
        "{} items across {} shards ready in {:.4} s (no precompute)",
        loaded.len(),
        loaded.num_shards(),
        start.elapsed().as_secs_f64()
    );

    let live = server.snapshot();
    let cold = loaded.snapshot();
    assert_eq!(live.item_ids(), cold.item_ids());
    for id in live.item_ids().into_iter().step_by(97) {
        assert_eq!(
            live.query_by_id(id, 5).expect("live query"),
            cold.query_by_id(id, 5).expect("cold query"),
            "reloaded answers diverged at id {id}"
        );
    }
    println!("verified: warm-started answers are bit-identical to the live index");

    let mut ws = mogul_suite::core::ShardedWorkspace::new();
    let probe = live.item_ids()[0];
    let (_, stats) = cold
        .query_by_id_with_stats_in(&mut ws, probe, 5)
        .expect("stats query");
    println!(
        "scatter: {} of {} shard(s) probed, {} skipped (block-diagonal bound)",
        stats.shards_probed, stats.shards_total, stats.shards_skipped
    );
    assert!(
        stats.shards_skipped >= 1 || shards == 1,
        "in-database queries must skip every foreign shard"
    );
}

fn demo() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&dir).expect("create target dir");
    let path = dir.join("mogul_index_demo.mog1");
    let options = SaveOptions {
        items: 1_500,
        ..SaveOptions::default()
    };

    println!("== save ==");
    let features = corpus(options.items, options.dim);
    let precompute_start = Instant::now();
    let index = IndexBuilder::new()
        .knn_k(options.knn)
        .build(features)
        .expect("build index");
    let precompute_secs = precompute_start.elapsed().as_secs_f64();
    persist::save_updatable(&index, &path).expect("save index");
    println!(
        "precompute {:.2} s, wrote {} bytes -> {}",
        precompute_secs,
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );

    println!("\n== inspect ==");
    inspect(&path);

    println!("\n== load ==");
    let load_secs = load(&path, 3, 5);

    // The loaded index answers exactly like the one still in memory.
    let server = QueryServer::warm_start(&path, ServeOptions::with_workers(1)).expect("load");
    let snapshot = index.snapshot();
    for id in [0usize, 3, 700, 1_499] {
        let a = snapshot.query_by_id(id, 5).expect("in-memory query");
        let b = server.query_by_id(id, 5).expect("cold-start query");
        assert_eq!(a, b, "cold-start answers diverged at id {id}");
    }
    println!(
        "\nverified: cold-start answers are identical to the in-memory index \
         ({:.0}x faster than precompute: {:.4} s vs {:.2} s)",
        precompute_secs / load_secs.max(1e-9),
        load_secs,
        precompute_secs
    );
}

fn usage() -> ! {
    eprintln!(
        "usage: mogul_index [save <path> [--items N] [--dim D] [--knn K] [--exact] [--immutable]\n\
         \x20                | inspect <path>\n\
         \x20                | load <path> [--query ID] [--k K]\n\
         \x20                | wal_demo [dir]\n\
         \x20                | wal_inspect <dir>\n\
         \x20                | shard_demo [dir] [--items N] [--shards S]]\n\
         with no arguments: run the self-contained demo"
    );
    std::process::exit(2)
}

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        demo();
        return;
    }
    if args[0] == "wal_demo" {
        let dir = args.get(1).map(PathBuf::from).unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("target")
                .join("wal_demo")
        });
        wal_demo(&dir);
        return;
    }
    if args[0] == "shard_demo" {
        let dir = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("target")
                    .join("shard_demo")
            });
        shard_demo(
            &dir,
            parse_flag(&args, "--items", 1_200),
            parse_flag(&args, "--shards", 4),
        );
        return;
    }
    let path = PathBuf::from(args.get(1).cloned().unwrap_or_else(|| usage()));
    match args[0].as_str() {
        "save" => {
            let defaults = SaveOptions::default();
            save(
                &path,
                &SaveOptions {
                    items: parse_flag(&args, "--items", defaults.items),
                    dim: parse_flag(&args, "--dim", defaults.dim),
                    knn: parse_flag(&args, "--knn", defaults.knn),
                    exact: args.iter().any(|a| a == "--exact"),
                    immutable: args.iter().any(|a| a == "--immutable"),
                },
            );
        }
        "inspect" => inspect(&path),
        "wal_inspect" => wal_inspect(&path),
        "load" => {
            load(
                &path,
                parse_flag(&args, "--query", 0),
                parse_flag(&args, "--k", 5),
            );
        }
        _ => usage(),
    }
}
