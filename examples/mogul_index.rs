//! `mogul_index` — save, load and inspect persistent index files (the
//! `MOG1` format of `mogul_core::persist`; see `docs/PERSISTENCE.md`).
//!
//! ```text
//! cargo run --release --example mogul_index                       # self-contained demo
//! cargo run --release --example mogul_index -- save <path> [--items N] [--dim D] [--knn K] [--exact] [--immutable]
//! cargo run --release --example mogul_index -- inspect <path>
//! cargo run --release --example mogul_index -- load <path> [--query ID] [--k K]
//! ```
//!
//! * `save` builds an index over a deterministic synthetic corpus and writes
//!   it (an updatable index by default; `--immutable` writes the plain
//!   serving flavor).
//! * `inspect` validates every checksum and prints the section table.
//! * `load` cold-starts a `QueryServer` from the file — no k-NN
//!   construction, no clustering, no factorization — runs a query, and
//!   reports the load time.
//!
//! With no arguments the demo performs the whole cycle (save → inspect →
//! load → query → compare against the in-memory index) in `target/`, which
//! is also what the CI persistence smoke job runs.

use mogul_suite::core::persist;
use mogul_suite::core::update::IndexBuilder;
use mogul_suite::data::web::{web_like, WebLikeConfig};
use mogul_suite::serve::{QueryServer, ServeOptions};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct SaveOptions {
    items: usize,
    dim: usize,
    knn: usize,
    exact: bool,
    immutable: bool,
}

impl Default for SaveOptions {
    fn default() -> Self {
        SaveOptions {
            items: 2_000,
            dim: 16,
            knn: 5,
            exact: false,
            immutable: false,
        }
    }
}

fn corpus(items: usize, dim: usize) -> Vec<Vec<f64>> {
    web_like(&WebLikeConfig {
        num_points: items,
        num_topics: (items / 100).max(4),
        dim,
        background_fraction: 0.2,
        ..Default::default()
    })
    .expect("generate corpus")
    .features()
    .to_vec()
}

fn save(path: &Path, options: &SaveOptions) {
    println!(
        "building a {}-item, {}-dim {} index (knn = {}) ...",
        options.items,
        options.dim,
        if options.exact {
            "MogulE (complete LDL^T)"
        } else {
            "Mogul (incomplete LDL^T)"
        },
        options.knn
    );
    let features = corpus(options.items, options.dim);
    let start = Instant::now();
    let mut builder = IndexBuilder::new().knn_k(options.knn);
    if options.exact {
        builder = builder.exact_ranking();
    }
    let index = builder.build(features).expect("build index");
    let precompute_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    if options.immutable {
        persist::save_index(index.snapshot().base(), path).expect("save index");
    } else {
        persist::save_updatable(&index, path).expect("save index");
    }
    let save_secs = start.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "precompute {precompute_secs:.2} s, save {save_secs:.3} s, {bytes} bytes -> {}",
        path.display()
    );
}

fn inspect(path: &Path) {
    let info = persist::inspect(path).expect("inspect index file");
    print!("{info}");
}

fn load(path: &Path, query: usize, k: usize) -> f64 {
    let start = Instant::now();
    let server =
        QueryServer::warm_start(path, ServeOptions::with_workers(1)).expect("warm-start server");
    let load_secs = start.elapsed().as_secs_f64();
    println!(
        "cold start: {} items ready in {:.4} s (epoch {}, no precompute)",
        server.len(),
        load_secs,
        server.epoch()
    );
    let top = server.query_by_id(query, k).expect("query");
    println!("top-{k} for item {query}:");
    for item in top.items() {
        println!("  item {:>6}  score {:.6}", item.node, item.score);
    }
    load_secs
}

fn demo() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&dir).expect("create target dir");
    let path = dir.join("mogul_index_demo.mog1");
    let options = SaveOptions {
        items: 1_500,
        ..SaveOptions::default()
    };

    println!("== save ==");
    let features = corpus(options.items, options.dim);
    let precompute_start = Instant::now();
    let index = IndexBuilder::new()
        .knn_k(options.knn)
        .build(features)
        .expect("build index");
    let precompute_secs = precompute_start.elapsed().as_secs_f64();
    persist::save_updatable(&index, &path).expect("save index");
    println!(
        "precompute {:.2} s, wrote {} bytes -> {}",
        precompute_secs,
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );

    println!("\n== inspect ==");
    inspect(&path);

    println!("\n== load ==");
    let load_secs = load(&path, 3, 5);

    // The loaded index answers exactly like the one still in memory.
    let server = QueryServer::warm_start(&path, ServeOptions::with_workers(1)).expect("load");
    let snapshot = index.snapshot();
    for id in [0usize, 3, 700, 1_499] {
        let a = snapshot.query_by_id(id, 5).expect("in-memory query");
        let b = server.query_by_id(id, 5).expect("cold-start query");
        assert_eq!(a, b, "cold-start answers diverged at id {id}");
    }
    println!(
        "\nverified: cold-start answers are identical to the in-memory index \
         ({:.0}x faster than precompute: {:.4} s vs {:.2} s)",
        precompute_secs / load_secs.max(1e-9),
        load_secs,
        precompute_secs
    );
}

fn usage() -> ! {
    eprintln!(
        "usage: mogul_index [save <path> [--items N] [--dim D] [--knn K] [--exact] [--immutable]\n\
         \x20                | inspect <path>\n\
         \x20                | load <path> [--query ID] [--k K]]\n\
         with no arguments: run the self-contained demo"
    );
    std::process::exit(2)
}

fn parse_flag(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        demo();
        return;
    }
    let path = PathBuf::from(args.get(1).cloned().unwrap_or_else(|| usage()));
    match args[0].as_str() {
        "save" => {
            let defaults = SaveOptions::default();
            save(
                &path,
                &SaveOptions {
                    items: parse_flag(&args, "--items", defaults.items),
                    dim: parse_flag(&args, "--dim", defaults.dim),
                    knn: parse_flag(&args, "--knn", defaults.knn),
                    exact: args.iter().any(|a| a == "--exact"),
                    immutable: args.iter().any(|a| a == "--immutable"),
                },
            );
        }
        "inspect" => inspect(&path),
        "load" => {
            load(
                &path,
                parse_flag(&args, "--query", 0),
                parse_flag(&args, "--k", 5),
            );
        }
        _ => usage(),
    }
}
