//! Incremental index updates with zero-downtime serving: items are inserted
//! and removed while a query server keeps answering, each update publishing
//! a new epoch-versioned snapshot.
//!
//! ```text
//! cargo run --example incremental_updates --release
//! ```
//!
//! The walk-through mirrors the lifecycle documented in `docs/UPDATES.md`:
//! insert → Woodbury correction → rebuild-debt growth → full
//! refactorization → atomic snapshot swap.

use mogul_suite::core::update::{IndexBuilder, RebuildPolicy};
use mogul_suite::data::sift::{sift_like, SiftLikeConfig};
use mogul_suite::serve::{IndexWriter, ServeOptions, UpdateRequest};
use std::time::Instant;

fn main() {
    // A SIFT-like corpus: most of it is indexed up front, the tail arrives
    // later as live inserts.
    let dataset = sift_like(&SiftLikeConfig {
        num_points: 3_000,
        num_words: 48,
        dim: 32,
        ..Default::default()
    })
    .expect("generate descriptors");
    let features = dataset.features().to_vec();
    let (initial, arriving) = features.split_at(2_800);

    let build_start = Instant::now();
    let index = IndexBuilder::new()
        .knn_k(5)
        .rebuild_policy(RebuildPolicy {
            max_support: 120,
            max_support_fraction: 0.25,
        })
        .build(initial.to_vec())
        .expect("build updatable index");
    println!(
        "indexed {} items in {:.2} s (epoch 0)",
        initial.len(),
        build_start.elapsed().as_secs_f64()
    );

    let (server, writer) = IndexWriter::new(index, ServeOptions::default());

    // A reference query we re-run at every epoch: results may change as the
    // collection changes, but the query itself never waits for a writer.
    let probe = arriving[0].clone();

    let mut inserted = Vec::new();
    for (round, chunk) in arriving.chunks(40).enumerate() {
        let updates: Vec<UpdateRequest> = chunk
            .iter()
            .map(|f| UpdateRequest::insert(f.clone()))
            .collect();
        let apply_start = Instant::now();
        let report = writer.apply(&updates).expect("apply updates");
        inserted.extend(report.inserted.iter().copied());
        let top = server.query_by_feature(&probe, 5).expect("probe query");
        println!(
            "epoch {:>2}: +{} items in {:>6.1} ms  [{}]  debt {:>3} rows ({} live)  probe hits: {:?}",
            report.epoch,
            chunk.len(),
            apply_start.elapsed().as_secs_f64() * 1e3,
            if report.rebuilt {
                "refactorized"
            } else {
                "corrected  "
            },
            report.debt.support,
            report.debt.live_items,
            top.top_k.nodes()
        );
        if round == 1 {
            // Old snapshots stay queryable after swaps: grab one, update,
            // and show both epochs answering side by side.
            let old = server.snapshot();
            writer
                .apply(&[UpdateRequest::remove(inserted[0])])
                .expect("remove");
            let new = server.snapshot();
            println!(
                "         snapshot {} still serves {} items while snapshot {} serves {}",
                old.epoch(),
                old.len(),
                new.epoch(),
                new.len()
            );
        }
    }

    // Force the debt to zero: the background-style refactorization.
    let rebuild_start = Instant::now();
    let report = writer.rebuild().expect("rebuild");
    println!(
        "epoch {:>2}: full refactorization in {:.2} s — debt {} rows, snapshot clean: {}",
        report.epoch,
        rebuild_start.elapsed().as_secs_f64(),
        report.debt.support,
        server.snapshot().is_clean()
    );
    println!(
        "final collection: {} live items at epoch {}",
        server.len(),
        server.epoch()
    );
}
