//! Quickstart: index a small synthetic image collection and answer one query.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use mogul_suite::core::{MogulConfig, MogulIndex, MrParams, Ranker};
use mogul_suite::data::coil::{coil_like, CoilLikeConfig};
use mogul_suite::graph::knn::{knn_graph, KnnConfig};

fn main() {
    // 1. A synthetic stand-in for an image collection: 10 objects, 36 poses
    //    each, on ring-shaped pose manifolds (COIL-100-like structure).
    let dataset = coil_like(&CoilLikeConfig {
        num_objects: 10,
        poses_per_object: 36,
        dim: 32,
        ..Default::default()
    })
    .expect("generate dataset");
    println!(
        "dataset: {} points, {} objects, {} dimensions",
        dataset.len(),
        dataset.num_classes(),
        dataset.dim()
    );

    // 2. The k-NN graph with heat-kernel weights (k = 5, as in the paper).
    let graph = knn_graph(dataset.features(), KnnConfig::with_k(5)).expect("build k-NN graph");
    println!(
        "k-NN graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 3. The Mogul index: modularity clustering, Algorithm 1 ordering,
    //    incomplete LDL^T factorization, pruning metadata. α = 0.99.
    let index = MogulIndex::build(
        &graph,
        MogulConfig {
            params: MrParams::default(),
            ..MogulConfig::default()
        },
    )
    .expect("build Mogul index");
    let stats = index.precompute_stats();
    println!(
        "index: {} clusters, L has {} non-zeros, precomputed in {:.1} ms",
        index.ordering().num_clusters(),
        stats.l_nnz,
        stats.total_secs() * 1e3
    );

    // 4. Query: the top-5 images for image 0 (object 0, pose 0).
    let query = 0usize;
    let top = index.search(query, 5).expect("top-k search");
    println!(
        "\ntop-5 results for image {query} (object {}):",
        dataset.label(query)
    );
    for item in top.items() {
        println!(
            "  image {:4}  object {:2}  score {:.6}",
            item.node,
            dataset.label(item.node),
            item.score
        );
    }
    let hits = top
        .nodes()
        .iter()
        .filter(|&&n| dataset.label(n) == dataset.label(query))
        .count();
    println!(
        "\nretrieval precision: {}/{} results show the same object as the query",
        hits,
        top.len()
    );
    assert_eq!(index.name(), "Mogul");
}
