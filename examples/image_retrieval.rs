//! Image retrieval benchmark scenario: compare Mogul against the exact
//! inverse-matrix solution and the EMR baseline on a COIL-like collection,
//! reporting the paper's two accuracy metrics (P@k and retrieval precision)
//! and the per-query search time.
//!
//! ```text
//! cargo run --example image_retrieval --release
//! ```

use mogul_suite::core::{
    EmrConfig, EmrSolver, InverseSolver, MogulConfig, MogulIndex, MrParams, Ranker,
};
use mogul_suite::data::coil::{coil_like, CoilLikeConfig};
use mogul_suite::eval::metrics::{mean, precision_at_k, retrieval_precision};
use mogul_suite::eval::timer::{format_secs, time_mean};
use mogul_suite::graph::knn::{knn_graph, KnnConfig};

fn main() {
    let k = 5usize;
    let dataset = coil_like(&CoilLikeConfig {
        num_objects: 20,
        poses_per_object: 36,
        dim: 32,
        ..Default::default()
    })
    .expect("generate dataset");
    let graph = knn_graph(dataset.features(), KnnConfig::with_k(5)).expect("knn graph");
    let params = MrParams::default();
    let queries: Vec<usize> = (0..dataset.len()).step_by(dataset.len() / 20).collect();

    println!(
        "image retrieval on {} images ({} objects), top-{k}\n",
        dataset.len(),
        dataset.num_classes()
    );

    // Exact reference (the O(n^3) approach Mogul replaces).
    let inverse = InverseSolver::new(&graph, params).expect("inverse solver");
    let reference: Vec<_> = queries
        .iter()
        .map(|&q| inverse.top_k(q, k).expect("inverse top-k"))
        .collect();

    let mogul = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .expect("mogul index");
    let emr = EmrSolver::new(dataset.features(), params, EmrConfig::with_anchors(10))
        .expect("emr solver");

    for (name, top_k_fn) in [
        (
            "Mogul",
            Box::new(|q: usize| mogul.search(q, k).expect("mogul"))
                as Box<dyn Fn(usize) -> mogul_suite::core::TopKResult>,
        ),
        (
            "EMR(d=10)",
            Box::new(|q: usize| emr.top_k(q, k).expect("emr")),
        ),
        (
            "Inverse",
            Box::new(|q: usize| inverse.top_k(q, k).expect("inverse")),
        ),
    ] {
        let mut p_at_k = Vec::new();
        let mut retrieval = Vec::new();
        for (qi, &q) in queries.iter().enumerate() {
            let top = top_k_fn(q);
            p_at_k.push(precision_at_k(&top, &reference[qi]));
            retrieval.push(
                retrieval_precision(&top, dataset.labels(), dataset.label(q))
                    .expect("retrieval precision"),
            );
        }
        let secs = time_mean(3, || {
            for &q in &queries {
                std::hint::black_box(top_k_fn(q));
            }
        }) / queries.len() as f64;
        println!(
            "{name:<10}  P@{k} = {:.3}   retrieval precision = {:.3}   search time = {}",
            mean(&p_at_k),
            mean(&retrieval),
            format_secs(secs)
        );
    }

    println!(
        "\n(the paper's Figure 2/3 shape: Mogul ≈ Inverse in quality, EMR with few anchors \
         is less accurate; Figure 1 shape: Mogul is orders of magnitude faster than Inverse)"
    );
}
