//! Out-of-sample queries: retrieve from the database with a query image that
//! is *not* part of the k-NN graph (Section 4.6.2 / Table 2 of the paper).
//!
//! ```text
//! cargo run --example out_of_sample_query --release
//! ```

use mogul_suite::core::out_of_sample::OutOfSampleConfig;
use mogul_suite::core::{MogulConfig, MogulIndex, MrParams, OutOfSampleIndex};
use mogul_suite::data::coil::{coil_like, CoilLikeConfig};
use mogul_suite::graph::knn::{knn_graph, KnnConfig};

fn main() {
    // Generate a collection and hold out 10 images as never-indexed queries.
    let dataset = coil_like(&CoilLikeConfig {
        num_objects: 15,
        poses_per_object: 30,
        dim: 32,
        ..Default::default()
    })
    .expect("generate dataset");
    let (database, held_out) = dataset.split_out_queries(10, 42).expect("hold out queries");
    println!(
        "database: {} images   held-out queries: {}",
        database.len(),
        held_out.len()
    );

    // Index only the database images.
    let graph = knn_graph(database.features(), KnnConfig::with_k(5)).expect("knn graph");
    let index = MogulIndex::build(
        &graph,
        MogulConfig {
            params: MrParams::default(),
            ..MogulConfig::default()
        },
    )
    .expect("mogul index");
    let oos = OutOfSampleIndex::new(
        index,
        database.features().to_vec(),
        OutOfSampleConfig::default(),
    )
    .expect("out-of-sample index");

    // Answer each held-out query and report the Table-2 style breakdown.
    let mut nn_ms = 0.0;
    let mut topk_ms = 0.0;
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, (feature, label)) in held_out.iter().enumerate() {
        let result = oos.query(feature, 5).expect("out-of-sample query");
        nn_ms += result.nearest_neighbor_secs * 1e3;
        topk_ms += result.top_k_secs * 1e3;
        let hits = result
            .top_k
            .nodes()
            .iter()
            .filter(|&&n| database.label(n) == *label)
            .count();
        correct += hits;
        total += result.top_k.len();
        println!(
            "query {i}: true object {label:>2}  retrieved objects {:?}  ({} clusters pruned)",
            result
                .top_k
                .nodes()
                .iter()
                .map(|&n| database.label(n))
                .collect::<Vec<_>>(),
            result.stats.clusters_pruned
        );
    }
    let q = held_out.len() as f64;
    println!("\nbreakdown per query (Table 2 of the paper):");
    println!("  nearest neighbor : {:.3} ms", nn_ms / q);
    println!("  top-k search     : {:.3} ms", topk_ms / q);
    println!("  overall          : {:.3} ms", (nn_ms + topk_ms) / q);
    println!(
        "  retrieval precision: {:.3}",
        correct as f64 / total as f64
    );
}
