//! The high-level `RetrievalEngine` on a larger collection, using the
//! approximate (partition-based) k-NN graph construction so the indexing step
//! stays fast as the collection grows.
//!
//! ```text
//! cargo run --example large_scale_engine --release
//! ```

use mogul_suite::core::RetrievalEngine;
use mogul_suite::data::sift::{sift_like, SiftLikeConfig};
use std::time::Instant;

fn main() {
    // An INRIA-like descriptor collection (quantized SIFT-style vectors).
    let dataset = sift_like(&SiftLikeConfig {
        num_points: 20_000,
        num_words: 120,
        dim: 64,
        ..Default::default()
    })
    .expect("generate descriptors");
    println!(
        "collection: {} descriptors, {} visual words, {} dimensions",
        dataset.len(),
        dataset.num_classes(),
        dataset.dim()
    );

    // Index with the approximate k-NN graph (≈ sqrt(n) partitions, 4 probes).
    let build_start = Instant::now();
    let engine = RetrievalEngine::builder()
        .knn_k(5)
        .approximate_graph(140, 4)
        .build(dataset.features().to_vec())
        .expect("build retrieval engine");
    println!(
        "indexed in {:.2} s ({} clusters, {} non-zeros in L, {:.1} bytes/item)",
        build_start.elapsed().as_secs_f64(),
        engine.index().ordering().num_clusters(),
        engine.precompute_stats().l_nnz,
        engine.index().memory_bytes() as f64 / dataset.len() as f64,
    );

    // In-collection queries.
    let query_start = Instant::now();
    let num_queries = 200usize;
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in (0..dataset.len()).step_by(dataset.len() / num_queries) {
        let top = engine.query_by_id(q, 10).expect("query");
        for node in top.nodes() {
            total += 1;
            if dataset.label(node) == dataset.label(q) {
                hits += 1;
            }
        }
    }
    let per_query = query_start.elapsed().as_secs_f64() / num_queries as f64;
    println!(
        "{num_queries} queries: {:.1} us/query, retrieval precision {:.3}",
        per_query * 1e6,
        hits as f64 / total as f64
    );

    // One out-of-sample query (a descriptor that was never indexed).
    let novel: Vec<f64> = dataset
        .feature(7)
        .iter()
        .map(|v| (v + 3.0).min(255.0))
        .collect();
    let oos = engine
        .query_by_feature(&novel, 10)
        .expect("out-of-sample query");
    println!(
        "out-of-sample query: {:.1} us nearest-neighbour + {:.1} us top-k, {} results",
        oos.nearest_neighbor_secs * 1e6,
        oos.top_k_secs * 1e6,
        oos.top_k.len()
    );
}
