//! Integration test of the out-of-sample query pipeline (Section 4.6.2):
//! dataset split → graph/index over the database only → queries with held-out
//! features, compared against EMR's dynamic-update path.

use mogul_suite::core::out_of_sample::OutOfSampleConfig;
use mogul_suite::core::{
    EmrConfig, EmrSolver, MogulConfig, MogulIndex, MrParams, OutOfSampleIndex,
};
use mogul_suite::data::coil::{coil_like, CoilLikeConfig};
use mogul_suite::graph::knn::{knn_graph, KnnConfig};

#[test]
fn out_of_sample_pipeline_retrieves_the_correct_objects() {
    let dataset = coil_like(&CoilLikeConfig {
        num_objects: 8,
        poses_per_object: 20,
        dim: 16,
        noise: 0.02,
        ..Default::default()
    })
    .unwrap();
    let (db, held_out) = dataset.split_out_queries(8, 99).unwrap();
    let graph = knn_graph(db.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();

    let index = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .unwrap();
    let oos =
        OutOfSampleIndex::new(index, db.features().to_vec(), OutOfSampleConfig::default()).unwrap();
    let emr = EmrSolver::new(db.features(), params, EmrConfig::with_anchors(20)).unwrap();

    let mut mogul_hits = 0usize;
    let mut emr_hits = 0usize;
    let mut total = 0usize;
    for (feature, label) in &held_out {
        let mogul_result = oos.query(feature, 5).unwrap();
        let emr_result = emr.top_k_for_feature(feature, 5).unwrap();
        assert_eq!(mogul_result.top_k.len(), 5);
        assert_eq!(emr_result.len(), 5);
        assert!(mogul_result.nearest_neighbor_secs >= 0.0);
        assert!(mogul_result.top_k_secs >= 0.0);
        for node in mogul_result.top_k.nodes() {
            total += 1;
            if db.label(node) == *label {
                mogul_hits += 1;
            }
        }
        for node in emr_result.nodes() {
            if db.label(node) == *label {
                emr_hits += 1;
            }
        }
    }
    let mogul_precision = mogul_hits as f64 / total as f64;
    let emr_precision = emr_hits as f64 / total as f64;
    assert!(
        mogul_precision > 0.7,
        "Mogul out-of-sample precision too low: {mogul_precision}"
    );
    // Not a strict ordering requirement, but both must produce signal.
    assert!(
        emr_precision > 0.2,
        "EMR out-of-sample precision suspicious: {emr_precision}"
    );
}

#[test]
fn queries_far_from_every_cluster_still_return_k_results() {
    let dataset = coil_like(&CoilLikeConfig {
        num_objects: 5,
        poses_per_object: 15,
        dim: 8,
        ..Default::default()
    })
    .unwrap();
    let graph = knn_graph(dataset.features(), KnnConfig::with_k(5)).unwrap();
    let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
    let oos = OutOfSampleIndex::new(
        index,
        dataset.features().to_vec(),
        OutOfSampleConfig {
            num_neighbors: 3,
            cluster_probes: 2,
        },
    )
    .unwrap();
    // A query far outside the data distribution.
    let far_query = vec![1e3; dataset.dim()];
    let result = oos.query(&far_query, 7).unwrap();
    assert!(result.top_k.len() <= 7);
    assert!(!result.neighbors.is_empty());
}
