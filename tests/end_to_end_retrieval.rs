//! Cross-crate integration tests: full retrieval pipelines over the standard
//! synthetic dataset suite (data → graph → core → eval).

use mogul_suite::core::{InverseSolver, MogulConfig, MogulIndex, MrParams, Ranker, SearchMode};
use mogul_suite::data::suite::{standard_suite, SuiteScale};
use mogul_suite::eval::metrics::{mean, precision_at_k, retrieval_precision};
use mogul_suite::graph::knn::{knn_graph, KnnConfig};

fn queries(n: usize, count: usize) -> Vec<usize> {
    (0..count).map(|i| i * n / count).collect()
}

#[test]
fn mogul_matches_inverse_closely_on_the_coil_like_dataset() {
    let suite = standard_suite(SuiteScale::Tiny).unwrap();
    let coil = &suite[0].dataset;
    let graph = knn_graph(coil.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();

    let inverse = InverseSolver::new(&graph, params).unwrap();
    let mogul = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .unwrap();

    let mut p_at_5 = Vec::new();
    let mut retrieval = Vec::new();
    for q in queries(coil.len(), 12) {
        let reference = inverse.top_k(q, 5).unwrap();
        let approx = mogul.search(q, 5).unwrap();
        p_at_5.push(precision_at_k(&approx, &reference));
        retrieval.push(retrieval_precision(&approx, coil.labels(), coil.label(q)).unwrap());
    }
    // Section 5.2.1: Mogul's P@k is high and its retrieval precision is
    // above 90% on COIL-100.
    assert!(mean(&p_at_5) > 0.8, "mean P@5 too low: {}", mean(&p_at_5));
    assert!(
        mean(&retrieval) > 0.9,
        "mean retrieval precision too low: {}",
        mean(&retrieval)
    );
}

#[test]
fn every_suite_dataset_supports_the_full_pipeline() {
    for spec in standard_suite(SuiteScale::Tiny).unwrap() {
        let data = &spec.dataset;
        let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
        assert_eq!(graph.num_nodes(), data.len(), "{}", spec.name);
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        assert!(index.ordering().validate());

        // Pruned and unpruned searches return the same answers (Lemma 7).
        for q in queries(data.len(), 5) {
            let (pruned, _) = index.search_with_stats(q, 10, SearchMode::Pruned).unwrap();
            let (unpruned, _) = index
                .search_with_stats(q, 10, SearchMode::NoPruning)
                .unwrap();
            assert_eq!(pruned.nodes(), unpruned.nodes(), "{} query {q}", spec.name);
            assert!(pruned.len() <= 10);
            assert!(!pruned.contains(q));
        }
    }
}

#[test]
fn index_memory_grows_roughly_linearly_with_n() {
    // Theorem 3: O(n) space. Compare the per-node footprint of a small and a
    // larger COIL-like graph; the ratio should stay bounded (no quadratic blowup).
    let small = standard_suite(SuiteScale::Tiny).unwrap()[0].dataset.clone();
    let large = standard_suite(SuiteScale::Small).unwrap()[0]
        .dataset
        .clone();
    assert!(large.len() > small.len());
    let params = MrParams::default();
    let index_small = MogulIndex::build(
        &knn_graph(small.features(), KnnConfig::with_k(5)).unwrap(),
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .unwrap();
    let index_large = MogulIndex::build(
        &knn_graph(large.features(), KnnConfig::with_k(5)).unwrap(),
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .unwrap();
    let per_node_small = index_small.memory_bytes() as f64 / small.len() as f64;
    let per_node_large = index_large.memory_bytes() as f64 / large.len() as f64;
    assert!(
        per_node_large < 3.0 * per_node_small,
        "per-node footprint grew too fast: {per_node_small:.1} -> {per_node_large:.1} bytes"
    );
}

#[test]
fn mogul_exact_mode_reproduces_the_inverse_answer_on_a_web_like_dataset() {
    let suite = standard_suite(SuiteScale::Tiny).unwrap();
    let web = &suite[2].dataset;
    let graph = knn_graph(web.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();
    let inverse = InverseSolver::new(&graph, params).unwrap();
    let exact = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::exact()
        },
    )
    .unwrap();
    for q in queries(web.len(), 4) {
        let a = exact.all_scores(q).unwrap();
        let b = inverse.scores(q).unwrap();
        let err = mogul_suite::sparse::vector::max_abs_diff(&a, &b).unwrap();
        assert!(err < 1e-8, "query {q}: MogulE error {err}");
    }
}
