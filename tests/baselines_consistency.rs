//! Cross-solver consistency: every baseline must agree with the exact
//! inverse-matrix solution in the regimes where it is supposed to be exact,
//! and stay close in the regimes where it is approximate.

use mogul_suite::core::{
    EmrConfig, EmrSolver, FmrConfig, FmrSolver, InverseSolver, IterativeConfig, IterativeSolver,
    MogulConfig, MogulIndex, MrParams, Ranker,
};
use mogul_suite::data::coil::{coil_like, CoilLikeConfig};
use mogul_suite::eval::metrics::{mean, precision_at_k};
use mogul_suite::graph::knn::{knn_graph, KnnConfig};
use mogul_suite::graph::Graph;

fn coil_dataset() -> mogul_suite::data::Dataset {
    coil_like(&CoilLikeConfig {
        num_objects: 8,
        poses_per_object: 20,
        dim: 16,
        noise: 0.02,
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn iterative_converges_to_the_inverse_solution() {
    let data = coil_dataset();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();
    let inverse = InverseSolver::new(&graph, params).unwrap();
    let iterative = IterativeSolver::new(
        &graph,
        params,
        IterativeConfig {
            tolerance: 1e-10,
            max_iterations: 100_000,
        },
    )
    .unwrap();
    for q in [0usize, 33, 101] {
        let a = iterative.scores(q).unwrap();
        let b = inverse.scores(q).unwrap();
        assert!(mogul_suite::sparse::vector::max_abs_diff(&a, &b).unwrap() < 1e-6);
    }
}

#[test]
fn all_methods_retrieve_reasonable_top_k_sets() {
    let data = coil_dataset();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();
    let queries: Vec<usize> = (0..data.len()).step_by(23).collect();

    let inverse = InverseSolver::new(&graph, params).unwrap();
    let reference: Vec<_> = queries
        .iter()
        .map(|&q| inverse.top_k(q, 5).unwrap())
        .collect();

    let mogul = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .unwrap();
    let mogul_e = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::exact()
        },
    )
    .unwrap();
    let emr_small = EmrSolver::new(data.features(), params, EmrConfig::with_anchors(10)).unwrap();
    let emr_large = EmrSolver::new(data.features(), params, EmrConfig::with_anchors(80)).unwrap();

    let collect_precision = |ranker: &dyn Ranker| -> f64 {
        let values: Vec<f64> = queries
            .iter()
            .enumerate()
            .map(|(i, &q)| precision_at_k(&ranker.top_k(q, 5).unwrap(), &reference[i]))
            .collect();
        mean(&values)
    };

    let p_mogul = collect_precision(&mogul);
    let p_mogul_e = collect_precision(&mogul_e);
    let p_emr_small = collect_precision(&emr_small);
    let p_emr_large = collect_precision(&emr_large);

    // MogulE is exact; Mogul is a close approximation; EMR improves with more
    // anchors but should not beat Mogul at d = 10 (the paper's Figure 2 shape).
    assert!(p_mogul_e > 0.99, "MogulE P@5 = {p_mogul_e}");
    assert!(p_mogul > 0.8, "Mogul P@5 = {p_mogul}");
    assert!(
        p_mogul >= p_emr_small - 0.05,
        "Mogul ({p_mogul}) should not lose clearly to EMR with 10 anchors ({p_emr_small})"
    );
    assert!((0.0..=1.0).contains(&p_emr_large));
}

#[test]
fn fmr_is_exact_when_the_partition_has_no_cross_edges() {
    // Two disconnected cliques: any sane partition has zero cross edges, so
    // FMR (with full-rank blocks) must reproduce the exact solution.
    let mut graph = Graph::empty(16);
    for base in [0usize, 8] {
        for i in 0..8 {
            for j in (i + 1)..8 {
                graph.add_edge(base + i, base + j, 1.0).unwrap();
            }
        }
    }
    let params = MrParams::default();
    let inverse = InverseSolver::new(&graph, params).unwrap();
    let fmr = FmrSolver::new(
        &graph,
        params,
        FmrConfig {
            num_clusters: 2,
            rank: 64,
            seed: 3,
        },
    )
    .unwrap();
    assert_eq!(
        fmr.dropped_edges(),
        0,
        "spectral clustering should split the two disconnected cliques cleanly"
    );
    for q in 0..16 {
        let a = fmr.scores(q).unwrap();
        let b = inverse.scores(q).unwrap();
        assert!(mogul_suite::sparse::vector::max_abs_diff(&a, &b).unwrap() < 1e-8);
    }
}

#[test]
fn solver_names_are_distinct() {
    let data = coil_dataset();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();
    let names = vec![
        InverseSolver::new(&graph, params).unwrap().name(),
        IterativeSolver::new(&graph, params, IterativeConfig::default())
            .unwrap()
            .name(),
        FmrSolver::new(&graph, params, FmrConfig::default())
            .unwrap()
            .name(),
        EmrSolver::new(data.features(), params, EmrConfig::default())
            .unwrap()
            .name(),
        MogulIndex::build(&graph, MogulConfig::default())
            .unwrap()
            .name(),
        MogulIndex::build(&graph, MogulConfig::exact())
            .unwrap()
            .name(),
    ];
    let unique: std::collections::HashSet<&str> = names.iter().copied().collect();
    assert_eq!(
        unique.len(),
        names.len(),
        "duplicate solver names: {names:?}"
    );
}
