//! Cross-solver consistency: every baseline must agree with the exact
//! inverse-matrix solution in the regimes where it is supposed to be exact,
//! and stay close in the regimes where it is approximate.

use mogul_suite::core::{
    EmrConfig, EmrSolver, FmrConfig, FmrSolver, InverseSolver, IterativeConfig, IterativeSolver,
    MogulConfig, MogulIndex, MrParams, OosWorkspace, Ranker, SearchMode, SearchWorkspace,
};
use mogul_suite::data::coil::{coil_like, CoilLikeConfig};
use mogul_suite::eval::metrics::{mean, precision_at_k};
use mogul_suite::graph::knn::{knn_graph, KnnConfig};
use mogul_suite::graph::Graph;

fn coil_dataset() -> mogul_suite::data::Dataset {
    coil_like(&CoilLikeConfig {
        num_objects: 8,
        poses_per_object: 20,
        dim: 16,
        noise: 0.02,
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn iterative_converges_to_the_inverse_solution() {
    let data = coil_dataset();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();
    let inverse = InverseSolver::new(&graph, params).unwrap();
    let iterative = IterativeSolver::new(
        &graph,
        params,
        IterativeConfig {
            tolerance: 1e-10,
            max_iterations: 100_000,
        },
    )
    .unwrap();
    for q in [0usize, 33, 101] {
        let a = iterative.scores(q).unwrap();
        let b = inverse.scores(q).unwrap();
        assert!(mogul_suite::sparse::vector::max_abs_diff(&a, &b).unwrap() < 1e-6);
    }
}

#[test]
fn all_methods_retrieve_reasonable_top_k_sets() {
    let data = coil_dataset();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();
    let queries: Vec<usize> = (0..data.len()).step_by(23).collect();

    let inverse = InverseSolver::new(&graph, params).unwrap();
    let reference: Vec<_> = queries
        .iter()
        .map(|&q| inverse.top_k(q, 5).unwrap())
        .collect();

    let mogul = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .unwrap();
    let mogul_e = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::exact()
        },
    )
    .unwrap();
    let emr_small = EmrSolver::new(data.features(), params, EmrConfig::with_anchors(10)).unwrap();
    let emr_large = EmrSolver::new(data.features(), params, EmrConfig::with_anchors(80)).unwrap();

    let collect_precision = |ranker: &dyn Ranker| -> f64 {
        let values: Vec<f64> = queries
            .iter()
            .enumerate()
            .map(|(i, &q)| precision_at_k(&ranker.top_k(q, 5).unwrap(), &reference[i]))
            .collect();
        mean(&values)
    };

    let p_mogul = collect_precision(&mogul);
    let p_mogul_e = collect_precision(&mogul_e);
    let p_emr_small = collect_precision(&emr_small);
    let p_emr_large = collect_precision(&emr_large);

    // MogulE is exact; Mogul is a close approximation; EMR improves with more
    // anchors but should not beat Mogul at d = 10 (the paper's Figure 2 shape).
    assert!(p_mogul_e > 0.99, "MogulE P@5 = {p_mogul_e}");
    assert!(p_mogul > 0.8, "Mogul P@5 = {p_mogul}");
    assert!(
        p_mogul >= p_emr_small - 0.05,
        "Mogul ({p_mogul}) should not lose clearly to EMR with 10 anchors ({p_emr_small})"
    );
    assert!((0.0..=1.0).contains(&p_emr_large));
}

#[test]
fn fmr_is_exact_when_the_partition_has_no_cross_edges() {
    // Two disconnected cliques: any sane partition has zero cross edges, so
    // FMR (with full-rank blocks) must reproduce the exact solution.
    let mut graph = Graph::empty(16);
    for base in [0usize, 8] {
        for i in 0..8 {
            for j in (i + 1)..8 {
                graph.add_edge(base + i, base + j, 1.0).unwrap();
            }
        }
    }
    let params = MrParams::default();
    let inverse = InverseSolver::new(&graph, params).unwrap();
    let fmr = FmrSolver::new(
        &graph,
        params,
        FmrConfig {
            num_clusters: 2,
            rank: 64,
            seed: 3,
        },
    )
    .unwrap();
    assert_eq!(
        fmr.dropped_edges(),
        0,
        "spectral clustering should split the two disconnected cliques cleanly"
    );
    for q in 0..16 {
        let a = fmr.scores(q).unwrap();
        let b = inverse.scores(q).unwrap();
        assert!(mogul_suite::sparse::vector::max_abs_diff(&a, &b).unwrap() < 1e-8);
    }
}

#[test]
fn workspace_entry_points_match_allocating_paths_at_the_workspace_tier() {
    // The `*_in` variants (caller-owned scratch, zero hot-path allocations)
    // promise bit-identical results to the allocating paths. The per-crate
    // tests pin this at the unit level; this test pins it at the workspace
    // tier, across one long-lived workspace reused over every call — the
    // exact shape a serving loop uses.
    let data = coil_dataset();
    let features = data.features().to_vec();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();

    for config in [MogulConfig::default(), MogulConfig::exact()] {
        let index = MogulIndex::build(&graph, MogulConfig { params, ..config }).unwrap();
        let mut ws = SearchWorkspace::new();
        for q in [0usize, 57, 140] {
            assert_eq!(
                index.search(q, 6).unwrap(),
                index.search_in(&mut ws, q, 6).unwrap()
            );
            for mode in [
                SearchMode::Pruned,
                SearchMode::NoPruning,
                SearchMode::FullSubstitution,
            ] {
                assert_eq!(
                    index.search_with_stats(q, 6, mode).unwrap(),
                    index.search_with_stats_in(&mut ws, q, 6, mode).unwrap()
                );
            }
            let allocating = index.all_scores(q).unwrap();
            let reused = index.all_scores_in(&mut ws, q).unwrap();
            assert!(
                allocating
                    .iter()
                    .zip(reused.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "all_scores_in diverged for query {q}"
            );
        }
        let weights = vec![(3usize, 0.5), (80, 0.3), (159, 0.2)];
        assert_eq!(
            index
                .search_weighted(&weights, 5, SearchMode::Pruned)
                .unwrap(),
            index
                .search_weighted_in(&mut ws, &weights, 5, SearchMode::Pruned)
                .unwrap()
        );
    }

    // The engine-level `_in` entry points, through the same reused scratch.
    let engine = mogul_suite::core::RetrievalEngine::builder()
        .knn_k(5)
        .build(features)
        .unwrap();
    let mut search_ws = SearchWorkspace::new();
    let mut oos_ws = OosWorkspace::new();
    for q in [2usize, 77] {
        assert_eq!(
            engine.query_by_id(q, 5).unwrap(),
            engine.query_by_id_in(&mut search_ws, q, 5).unwrap()
        );
    }
    for probe in [data.feature(9), data.feature(123)] {
        let allocating = engine.query_by_feature(probe, 5).unwrap();
        let reused = engine.query_by_feature_in(&mut oos_ws, probe, 5).unwrap();
        assert_eq!(allocating.top_k, reused.top_k);
        assert_eq!(allocating.neighbors, reused.neighbors);
        assert_eq!(allocating.stats, reused.stats);
    }
}

#[test]
fn solver_names_are_distinct() {
    let data = coil_dataset();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let params = MrParams::default();
    let names = vec![
        InverseSolver::new(&graph, params).unwrap().name(),
        IterativeSolver::new(&graph, params, IterativeConfig::default())
            .unwrap()
            .name(),
        FmrSolver::new(&graph, params, FmrConfig::default())
            .unwrap()
            .name(),
        EmrSolver::new(data.features(), params, EmrConfig::default())
            .unwrap()
            .name(),
        MogulIndex::build(&graph, MogulConfig::default())
            .unwrap()
            .name(),
        MogulIndex::build(&graph, MogulConfig::exact())
            .unwrap()
            .name(),
    ];
    let unique: std::collections::HashSet<&str> = names.iter().copied().collect();
    assert_eq!(
        unique.len(),
        names.len(),
        "duplicate solver names: {names:?}"
    );
}
