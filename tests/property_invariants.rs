//! Property-based tests of Mogul's algorithmic invariants on random graphs.

use mogul_suite::core::{InverseSolver, MogulConfig, MogulIndex, MrParams, Ranker, SearchMode};
use mogul_suite::graph::Graph;
use proptest::prelude::*;

/// Build a random connected-ish weighted graph from proptest inputs.
fn graph_from_edges(n: usize, raw_edges: &[(usize, usize, u8)]) -> Graph {
    let mut graph = Graph::empty(n);
    // A spanning chain keeps the graph from being totally disconnected.
    for i in 1..n {
        graph.add_edge(i - 1, i, 0.5).unwrap();
    }
    for &(a, b, w) in raw_edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let weight = 0.1 + f64::from(w) / 64.0;
        graph.add_edge(a, b, weight).unwrap();
    }
    graph
}

fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (6usize..28).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0u8..64), 0..(2 * n));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 7 safety: the pruned search returns exactly the same nodes as the
    /// search that scores every cluster.
    #[test]
    fn pruning_never_changes_the_answer(
        (n, edges) in graph_strategy(),
        query_raw in 0usize..1000,
        k in 1usize..8,
        alpha_pct in 50u32..99,
    ) {
        let graph = graph_from_edges(n, &edges);
        let query = query_raw % n;
        let params = MrParams::new(f64::from(alpha_pct) / 100.0).unwrap();
        let index = MogulIndex::build(&graph, MogulConfig { params, ..MogulConfig::default() }).unwrap();
        let (pruned, stats) = index.search_with_stats(query, k, SearchMode::Pruned).unwrap();
        let (unpruned, _) = index.search_with_stats(query, k, SearchMode::NoPruning).unwrap();
        prop_assert_eq!(pruned.nodes(), unpruned.nodes());
        prop_assert!(stats.clusters_pruned <= stats.clusters_considered);
    }

    /// MogulE (complete factorization) reproduces the dense inverse solution
    /// on every graph, not just on the curated test fixtures.
    #[test]
    fn exact_mode_matches_the_dense_inverse(
        (n, edges) in graph_strategy(),
        query_raw in 0usize..1000,
    ) {
        let graph = graph_from_edges(n, &edges);
        let query = query_raw % n;
        let params = MrParams::default();
        let inverse = InverseSolver::new(&graph, params).unwrap();
        let exact = MogulIndex::build(&graph, MogulConfig { params, ..MogulConfig::exact() }).unwrap();
        let a = exact.all_scores(query).unwrap();
        let b = inverse.scores(query).unwrap();
        prop_assert!(mogul_suite::sparse::vector::max_abs_diff(&a, &b).unwrap() < 1e-8);
    }

    /// The approximate scores are finite, the query's own score is positive,
    /// and the ordering metadata stays structurally valid.
    #[test]
    fn approximate_scores_are_well_formed(
        (n, edges) in graph_strategy(),
        query_raw in 0usize..1000,
    ) {
        let graph = graph_from_edges(n, &edges);
        let query = query_raw % n;
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        prop_assert!(index.ordering().validate());
        let scores = index.scores(query).unwrap();
        prop_assert_eq!(scores.len(), n);
        prop_assert!(scores.iter().all(|s| s.is_finite()));
        prop_assert!(scores[query] > 0.0);
        // Top-k never contains the query and never exceeds k entries.
        let top = index.top_k(query, 5).unwrap();
        prop_assert!(top.len() <= 5);
        prop_assert!(!top.contains(query));
    }

    /// The interior blocks of the factor never couple two different interior
    /// clusters (Lemma 3), for both factorizations.
    #[test]
    fn factor_block_structure_holds(
        (n, edges) in graph_strategy(),
        exact in proptest::bool::ANY,
    ) {
        let graph = graph_from_edges(n, &edges);
        let config = if exact { MogulConfig::exact() } else { MogulConfig::default() };
        let index = MogulIndex::build(&graph, config).unwrap();
        let ordering = index.ordering();
        let border = ordering.border_range();
        for (i, j, v) in index.factor_l().iter() {
            if i == j || v == 0.0 || border.contains(i) || border.contains(j) {
                continue;
            }
            prop_assert_eq!(
                ordering.cluster_of_permuted(i),
                ordering.cluster_of_permuted(j),
                "cross-cluster entry at ({}, {})", i, j
            );
        }
    }
}
