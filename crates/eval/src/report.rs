//! Plain-text tables for the figure/table runners.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row; short rows are padded with empty cells, long rows
    /// are truncated to the header width.
    pub fn add_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Append a free-text note rendered below the table.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Access a cell (row, column) if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        writeln!(f, "| {} |", header_line.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut t = Table::new("Demo", &["dataset", "time"]);
        t.add_row(vec!["COIL".into(), "1.0 ms".into()]);
        t.add_row(vec!["INRIA".into()]); // padded
        t.add_note("synthetic data");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, 1), Some("1.0 ms"));
        assert_eq!(t.cell(1, 1), Some(""));
        assert_eq!(t.cell(5, 0), None);
        let rendered = t.to_string();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("COIL"));
        assert!(rendered.contains("note: synthetic data"));
        assert!(rendered.lines().count() >= 5);
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.title(), "Demo");
    }
}
