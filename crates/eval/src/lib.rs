//! # mogul-eval
//!
//! Evaluation harness reproducing the experimental section (Section 5) of
//! *Scaling Manifold Ranking Based Image Retrieval* (VLDB 2014).
//!
//! * [`metrics`] — `P@k` (agreement with the inverse-matrix answer) and
//!   *retrieval precision* (agreement with ground-truth labels), the two
//!   accuracy measures of Section 5.2.1.
//! * [`timer`] — wall-clock measurement helpers.
//! * [`report`] — plain-text tables used by every figure/table runner.
//! * [`scenarios`] — shared setup: synthetic dataset → k-NN graph → solvers.
//! * [`experiments`] — one module per figure/table of the paper; each exposes
//!   a `run` function returning a [`report::Table`] with the same rows or
//!   series the paper plots.

#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod scenarios;
pub mod timer;

pub use report::Table;
pub use scenarios::{Scenario, ScenarioConfig};

/// Errors produced by this crate (shared with the substrates).
pub use mogul_sparse::error::{Result, SparseError as EvalError};
