//! Wall-clock measurement helpers.

use std::time::Instant;

/// Run `f` once and return its result together with the elapsed seconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Run `f` `iters` times and return the *mean* elapsed seconds per run
/// (at least one run is always performed).
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> f64 {
    let iters = iters.max(1);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Format seconds compactly for the experiment tables: sub-millisecond values
/// keep scientific precision, larger values switch to ms / s.
pub fn format_secs(secs: f64) -> String {
    if !secs.is_finite() {
        "n/a".to_string()
    } else if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_value_and_duration() {
        let (value, secs) = time_once(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn time_mean_averages() {
        let mut count = 0usize;
        let secs = time_mean(5, || count += 1);
        assert_eq!(count, 5);
        assert!(secs >= 0.0);
        // Zero iterations still runs once.
        let mut count = 0usize;
        time_mean(0, || count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn formatting_ranges() {
        assert!(format_secs(5e-10).ends_with("ns"));
        assert!(format_secs(5e-5).ends_with("us"));
        assert!(format_secs(5e-3).ends_with("ms"));
        assert!(format_secs(2.5).ends_with('s'));
        assert_eq!(format_secs(f64::NAN), "n/a");
    }
}
