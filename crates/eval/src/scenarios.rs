//! Shared experiment setup: synthetic dataset → k-NN graph → query workload.

use crate::Result;
use mogul_core::MrParams;
use mogul_data::suite::{standard_suite, DatasetSpec, SuiteScale};
use mogul_graph::knn::{knn_graph, KnnConfig};
use mogul_graph::Graph;

/// Configuration shared by every experiment runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Size of the synthetic stand-ins for the paper's four datasets.
    pub scale: SuiteScale,
    /// Number of nearest neighbours of the k-NN graph (the paper uses 5).
    pub knn_k: usize,
    /// Manifold Ranking `α` (the paper uses 0.99).
    pub alpha: f64,
    /// Number of query nodes sampled per dataset when averaging.
    pub num_queries: usize,
    /// Seed controlling query selection.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            scale: SuiteScale::Small,
            knn_k: 5,
            alpha: 0.99,
            num_queries: 10,
            seed: 2014,
        }
    }
}

impl ScenarioConfig {
    /// Manifold Ranking parameters derived from the configuration.
    pub fn params(&self) -> Result<MrParams> {
        MrParams::new(self.alpha)
    }
}

/// One prepared dataset: features, labels, k-NN graph and query workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The dataset specification (name + generated data).
    pub spec: DatasetSpec,
    /// The k-NN graph over the dataset's features.
    pub graph: Graph,
    /// In-database query nodes used for averaged measurements.
    pub queries: Vec<usize>,
}

impl Scenario {
    /// Build a scenario from a dataset specification.
    pub fn build(spec: DatasetSpec, config: &ScenarioConfig) -> Result<Scenario> {
        let graph = knn_graph(spec.dataset.features(), KnnConfig::with_k(config.knn_k))?;
        let queries = pick_queries(spec.dataset.len(), config.num_queries, config.seed);
        Ok(Scenario {
            spec,
            graph,
            queries,
        })
    }

    /// Dataset display name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// Number of points / graph nodes.
    pub fn len(&self) -> usize {
        self.spec.dataset.len()
    }

    /// `true` when the dataset is empty (never the case for the suite).
    pub fn is_empty(&self) -> bool {
        self.spec.dataset.is_empty()
    }
}

/// Deterministically spread `count` query indices over `0..n`.
pub fn pick_queries(n: usize, count: usize, seed: u64) -> Vec<usize> {
    if n == 0 || count == 0 {
        return Vec::new();
    }
    let count = count.min(n);
    let offset = (seed as usize) % n;
    (0..count).map(|i| (offset + i * n / count) % n).collect()
}

/// Build all four standard scenarios in the paper's size order.
pub fn standard_scenarios(config: &ScenarioConfig) -> Result<Vec<Scenario>> {
    standard_suite(config.scale)?
        .into_iter()
        .map(|spec| Scenario::build(spec, config))
        .collect()
}

/// Build only the first `limit` standard scenarios (smallest datasets first);
/// used by tests and by experiments that are too expensive for the larger
/// datasets.
pub fn limited_scenarios(config: &ScenarioConfig, limit: usize) -> Result<Vec<Scenario>> {
    let mut specs = standard_suite(config.scale)?;
    specs.truncate(limit);
    specs
        .into_iter()
        .map(|spec| Scenario::build(spec, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_deterministic_and_in_range() {
        let q = pick_queries(100, 10, 7);
        assert_eq!(q.len(), 10);
        assert!(q.iter().all(|&i| i < 100));
        assert_eq!(q, pick_queries(100, 10, 7));
        assert_ne!(q, pick_queries(100, 10, 8));
        assert!(pick_queries(0, 5, 1).is_empty());
        assert!(pick_queries(10, 0, 1).is_empty());
        assert_eq!(pick_queries(3, 10, 0).len(), 3);
    }

    #[test]
    fn limited_scenarios_build_graphs() {
        let config = ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 3,
            ..Default::default()
        };
        let scenarios = limited_scenarios(&config, 1).unwrap();
        assert_eq!(scenarios.len(), 1);
        let s = &scenarios[0];
        assert_eq!(s.name(), "COIL-100-like");
        assert!(!s.is_empty());
        assert_eq!(s.graph.num_nodes(), s.len());
        assert!(s.graph.num_edges() > 0);
        assert_eq!(s.queries.len(), 3);
        assert!(config.params().is_ok());
    }
}
