//! Accuracy metrics of Section 5.2.1.
//!
//! * **P@k** — "the fraction of answer nodes among the top-k results that
//!   match those of the inverse matrix approach".
//! * **Retrieval precision** — "the ratio of answer nodes that correspond to
//!   the same objects as the query nodes", i.e. semantic quality against
//!   ground-truth labels.

use crate::{EvalError, Result};
use mogul_core::TopKResult;

/// `P@k`: fraction of `result` nodes that also appear in `reference`.
///
/// Both lists are treated as sets (rank order inside the top-k does not
/// matter, matching the paper's definition). Returns a value in `[0, 1]`.
pub fn precision_at_k(result: &TopKResult, reference: &TopKResult) -> f64 {
    if result.is_empty() {
        return if reference.is_empty() { 1.0 } else { 0.0 };
    }
    let reference_set: std::collections::HashSet<usize> = reference.nodes().into_iter().collect();
    let hits = result
        .nodes()
        .iter()
        .filter(|n| reference_set.contains(n))
        .count();
    hits as f64 / result.len() as f64
}

/// Retrieval precision: fraction of `result` nodes whose ground-truth label
/// equals `query_label`.
pub fn retrieval_precision(
    result: &TopKResult,
    labels: &[usize],
    query_label: usize,
) -> Result<f64> {
    if result.is_empty() {
        return Ok(0.0);
    }
    let mut hits = 0usize;
    for node in result.nodes() {
        if node >= labels.len() {
            return Err(EvalError::IndexOutOfBounds {
                index: (node, 0),
                shape: (labels.len(), 1),
            });
        }
        if labels[node] == query_label {
            hits += 1;
        }
    }
    Ok(hits as f64 / result.len() as f64)
}

/// Normalized discounted cumulative gain at `k`, with binary relevance
/// derived from ground-truth labels. Not reported in the paper but useful as
/// an additional rank-aware quality check.
pub fn ndcg(result: &TopKResult, labels: &[usize], query_label: usize) -> Result<f64> {
    if result.is_empty() {
        return Ok(0.0);
    }
    let mut dcg = 0.0;
    for (rank, node) in result.nodes().into_iter().enumerate() {
        if node >= labels.len() {
            return Err(EvalError::IndexOutOfBounds {
                index: (node, 0),
                shape: (labels.len(), 1),
            });
        }
        if labels[node] == query_label {
            dcg += 1.0 / ((rank as f64 + 2.0).log2());
        }
    }
    let relevant_total = labels.iter().filter(|&&l| l == query_label).count();
    let ideal_hits = relevant_total.min(result.len());
    let idcg: f64 = (0..ideal_hits)
        .map(|r| 1.0 / ((r as f64 + 2.0).log2()))
        .sum();
    if idcg == 0.0 {
        Ok(0.0)
    } else {
        Ok(dcg / idcg)
    }
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogul_core::RankedNode;

    fn result(nodes: &[usize]) -> TopKResult {
        TopKResult::new(
            nodes
                .iter()
                .enumerate()
                .map(|(rank, &node)| RankedNode {
                    node,
                    score: 1.0 - rank as f64 * 0.1,
                })
                .collect(),
        )
    }

    #[test]
    fn precision_at_k_counts_overlap() {
        let a = result(&[1, 2, 3, 4]);
        let b = result(&[2, 3, 5, 6]);
        assert!((precision_at_k(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&a, &a), 1.0);
        assert_eq!(precision_at_k(&a, &result(&[7, 8])), 0.0);
        assert_eq!(precision_at_k(&result(&[]), &result(&[])), 1.0);
        assert_eq!(precision_at_k(&result(&[]), &a), 0.0);
    }

    #[test]
    fn retrieval_precision_uses_labels() {
        let labels = vec![0, 0, 1, 1, 0];
        let r = result(&[1, 2, 4]);
        let p = retrieval_precision(&r, &labels, 0).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(retrieval_precision(&result(&[]), &labels, 0).unwrap(), 0.0);
        assert!(retrieval_precision(&result(&[9]), &labels, 0).is_err());
    }

    #[test]
    fn ndcg_rewards_early_hits() {
        let labels = vec![0, 0, 1, 1];
        let good = result(&[1, 2]); // relevant first
        let bad = result(&[2, 1]); // relevant second
        let g = ndcg(&good, &labels, 0).unwrap();
        let b = ndcg(&bad, &labels, 0).unwrap();
        assert!(g > b);
        assert!(g <= 1.0 + 1e-12);
        assert_eq!(ndcg(&result(&[]), &labels, 0).unwrap(), 0.0);
        assert!(ndcg(&result(&[9]), &labels, 0).is_err());
        // No relevant items at all.
        assert_eq!(ndcg(&result(&[2, 3]), &labels, 5).unwrap(), 0.0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
