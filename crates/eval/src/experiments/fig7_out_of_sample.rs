//! Figure 7 and Table 2: out-of-sample query performance.
//!
//! Figure 7 compares the per-query search time of Mogul and EMR when the
//! query image is not part of the database. Table 2 breaks Mogul's time into
//! the nearest-neighbour phase (finding the query's neighbours through the
//! nearest cluster centroid) and the top-k search phase.

use crate::metrics::mean;
use crate::report::Table;
use crate::scenarios::{Scenario, ScenarioConfig};
use crate::timer::{format_secs, time_once};
use crate::Result;
use mogul_core::{
    out_of_sample::OutOfSampleConfig, EmrConfig, EmrSolver, MogulConfig, MogulIndex,
    OutOfSampleIndex, TopKResult,
};
use mogul_graph::knn::{knn_graph, KnnConfig};

/// Options of the out-of-sample experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Options {
    /// Number of held-out query images per dataset.
    pub num_queries: usize,
    /// Number of answer nodes.
    pub k: usize,
    /// EMR anchor count.
    pub emr_anchors: usize,
}

impl Default for Fig7Options {
    fn default() -> Self {
        Fig7Options {
            num_queries: 10,
            k: 5,
            emr_anchors: 10,
        }
    }
}

/// Measured out-of-sample results for one dataset.
#[derive(Debug, Clone)]
pub struct OutOfSampleMeasurement {
    /// Dataset name.
    pub dataset: String,
    /// Database size after holding out the queries.
    pub n: usize,
    /// Mean Mogul nearest-neighbour phase time (seconds).
    pub mogul_nn_secs: f64,
    /// Mean Mogul top-k phase time (seconds).
    pub mogul_topk_secs: f64,
    /// Mean EMR out-of-sample query time (seconds).
    pub emr_secs: f64,
    /// Mean Mogul retrieval precision of the held-out queries.
    pub mogul_precision: f64,
}

/// Run the measurement for every scenario.
pub fn measure(
    scenarios: &[Scenario],
    config: &ScenarioConfig,
    options: &Fig7Options,
) -> Result<Vec<OutOfSampleMeasurement>> {
    let params = config.params()?;
    let mut out = Vec::new();
    for scenario in scenarios {
        let holdout = options
            .num_queries
            .min(scenario.len().saturating_sub(2))
            .max(1);
        let (db, queries) = scenario
            .spec
            .dataset
            .split_out_queries(holdout, config.seed)?;
        // The database graph must be rebuilt without the held-out points.
        let graph = knn_graph(db.features(), KnnConfig::with_k(config.knn_k))?;
        let index = MogulIndex::build(
            &graph,
            MogulConfig {
                params,
                ..MogulConfig::default()
            },
        )?;
        let oos =
            OutOfSampleIndex::new(index, db.features().to_vec(), OutOfSampleConfig::default())?;
        let emr = EmrSolver::new(
            db.features(),
            params,
            EmrConfig::with_anchors(options.emr_anchors),
        )?;

        let mut nn_secs = Vec::new();
        let mut topk_secs = Vec::new();
        let mut emr_secs = Vec::new();
        let mut precisions = Vec::new();
        for (feature, label) in &queries {
            let result = oos.query(feature, options.k)?;
            nn_secs.push(result.nearest_neighbor_secs);
            topk_secs.push(result.top_k_secs);
            precisions.push(label_precision(&result.top_k, db.labels(), *label));
            let (_, secs) = time_once(|| {
                emr.top_k_for_feature(feature, options.k)
                    .expect("emr out-of-sample")
            });
            emr_secs.push(secs);
        }
        out.push(OutOfSampleMeasurement {
            dataset: scenario.name().to_string(),
            n: db.len(),
            mogul_nn_secs: mean(&nn_secs),
            mogul_topk_secs: mean(&topk_secs),
            emr_secs: mean(&emr_secs),
            mogul_precision: mean(&precisions),
        });
    }
    Ok(out)
}

fn label_precision(top: &TopKResult, labels: &[usize], query_label: usize) -> f64 {
    if top.is_empty() {
        return 0.0;
    }
    let hits = top
        .nodes()
        .iter()
        .filter(|&&n| labels[n] == query_label)
        .count();
    hits as f64 / top.len() as f64
}

/// Figure 7: out-of-sample search time of Mogul vs EMR.
pub fn figure7_table(measurements: &[OutOfSampleMeasurement]) -> Table {
    let mut table = Table::new(
        "Figure 7 - search time for out-of-sample queries",
        &["dataset", "n", "Mogul", "EMR", "speed-up (EMR / Mogul)"],
    );
    for m in measurements {
        let mogul_total = m.mogul_nn_secs + m.mogul_topk_secs;
        let ratio = if mogul_total > 0.0 {
            m.emr_secs / mogul_total
        } else {
            f64::INFINITY
        };
        table.add_row(vec![
            m.dataset.clone(),
            m.n.to_string(),
            format_secs(mogul_total),
            format_secs(m.emr_secs),
            format!("{ratio:.1}x"),
        ]);
    }
    table
}

/// Table 2: breakdown of Mogul's out-of-sample search time.
pub fn table2(measurements: &[OutOfSampleMeasurement]) -> Table {
    let mut table = Table::new(
        "Table 2 - breakdown of out-of-sample search [ms]",
        &[
            "dataset",
            "nearest neighbor",
            "top-k search",
            "overall",
            "retrieval precision",
        ],
    );
    for m in measurements {
        table.add_row(vec![
            m.dataset.clone(),
            format!("{:.3}", m.mogul_nn_secs * 1e3),
            format!("{:.3}", m.mogul_topk_secs * 1e3),
            format!("{:.3}", (m.mogul_nn_secs + m.mogul_topk_secs) * 1e3),
            format!("{:.3}", m.mogul_precision),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::limited_scenarios;
    use mogul_data::suite::SuiteScale;

    #[test]
    fn measurements_and_tables_are_produced() {
        let config = ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 2,
            ..Default::default()
        };
        let scenarios = limited_scenarios(&config, 1).unwrap();
        let options = Fig7Options {
            num_queries: 3,
            k: 5,
            emr_anchors: 8,
        };
        let measurements = measure(&scenarios, &config, &options).unwrap();
        assert_eq!(measurements.len(), 1);
        let m = &measurements[0];
        assert!(m.mogul_nn_secs >= 0.0);
        assert!(m.mogul_topk_secs >= 0.0);
        assert!(m.emr_secs >= 0.0);
        assert!((0.0..=1.0).contains(&m.mogul_precision));
        let f7 = figure7_table(&measurements);
        let t2 = table2(&measurements);
        assert_eq!(f7.num_rows(), 1);
        assert_eq!(t2.num_rows(), 1);
        assert!(f7.to_string().contains("COIL-100-like"));
        assert!(t2.to_string().contains("overall"));
    }
}
