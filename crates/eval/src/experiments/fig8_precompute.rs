//! Figure 8: precomputation time of Mogul vs. a random node ordering.
//!
//! The paper shows that the cluster-aware ordering does not only improve
//! accuracy and enable pruning, it also makes the Incomplete Cholesky
//! factorization itself cheaper (fewer partial sums touch non-zero entries)
//! — about 20% faster than factorizing under a random permutation, with the
//! overall precomputation growing linearly in the number of nodes.

use crate::report::Table;
use crate::scenarios::{Scenario, ScenarioConfig};
use crate::timer::format_secs;
use crate::Result;
use mogul_core::{MogulConfig, MogulIndex};
use mogul_graph::ordering::random_ordering;

/// Options of the precomputation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Options {
    /// Repetitions used to stabilize the timing.
    pub repetitions: usize,
}

impl Default for Fig8Options {
    fn default() -> Self {
        Fig8Options { repetitions: 3 }
    }
}

/// Run the Figure 8 measurement over the supplied scenarios.
pub fn run(
    scenarios: &[Scenario],
    config: &ScenarioConfig,
    options: &Fig8Options,
) -> Result<Table> {
    let params = config.params()?;
    let mut table = Table::new(
        "Figure 8 - precomputation time (Mogul ordering vs random ordering)",
        &[
            "dataset",
            "n",
            "Mogul total",
            "Mogul factorization",
            "Random factorization",
            "factorization saving",
        ],
    );
    for scenario in scenarios {
        let reps = options.repetitions.max(1);
        let mut mogul_total = 0.0;
        let mut mogul_fact = 0.0;
        let mut random_fact = 0.0;
        for rep in 0..reps {
            let mogul_index = MogulIndex::build(
                &scenario.graph,
                MogulConfig {
                    params,
                    ..MogulConfig::default()
                },
            )?;
            mogul_total += mogul_index.precompute_stats().total_secs();
            mogul_fact += mogul_index.precompute_stats().factorization_secs;

            let random_index = MogulIndex::build_with_ordering(
                &scenario.graph,
                MogulConfig {
                    params,
                    ..MogulConfig::default()
                },
                random_ordering(scenario.graph.num_nodes(), config.seed + rep as u64),
            )?;
            random_fact += random_index.precompute_stats().factorization_secs;
        }
        mogul_total /= reps as f64;
        mogul_fact /= reps as f64;
        random_fact /= reps as f64;
        let saving = if random_fact > 0.0 {
            100.0 * (1.0 - mogul_fact / random_fact)
        } else {
            0.0
        };
        table.add_row(vec![
            scenario.name().to_string(),
            scenario.len().to_string(),
            format_secs(mogul_total),
            format_secs(mogul_fact),
            format_secs(random_fact),
            format!("{saving:.0}%"),
        ]);
    }
    table.add_note(
        "'factorization saving' compares only the Incomplete Cholesky step, as Figure 8 does",
    );
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::limited_scenarios;
    use mogul_data::suite::SuiteScale;

    #[test]
    fn produces_one_row_per_dataset() {
        let config = ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 1,
            ..Default::default()
        };
        let scenarios = limited_scenarios(&config, 2).unwrap();
        let table = run(&scenarios, &config, &Fig8Options { repetitions: 1 }).unwrap();
        assert_eq!(table.num_rows(), 2);
        let rendered = table.to_string();
        assert!(rendered.contains("Mogul factorization"));
    }
}
