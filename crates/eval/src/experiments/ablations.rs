//! Ablation studies beyond the paper's figures.
//!
//! `DESIGN.md` calls out three design choices worth isolating:
//!
//! * **Scaling** — Theorems 2 and 3 claim `O(n)` search time and memory; the
//!   scaling ablation measures Mogul's precomputation time, per-query search
//!   time and index size across a geometric sweep of database sizes so the
//!   linear trend can be verified empirically.
//! * **α sweep** — the smoothing parameter trades query fit against manifold
//!   smoothness (Equation (1)); the sweep reports retrieval precision and
//!   P@k for several α values.
//! * **k-NN graph degree** — the paper fixes `k = 5`; the sweep reports how
//!   the graph degree affects accuracy and the factor size.

use crate::metrics::{mean, precision_at_k, retrieval_precision};
use crate::report::Table;
use crate::scenarios::{pick_queries, ScenarioConfig};
use crate::timer::{format_secs, time_mean};
use crate::Result;
use mogul_core::{InverseSolver, MogulConfig, MogulIndex, MrParams, Ranker};
use mogul_data::coil::{coil_like, CoilLikeConfig};
use mogul_graph::knn::{knn_graph, KnnConfig};

/// Options of the scaling ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingOptions {
    /// Numbers of objects for the COIL-like generator (24 poses each).
    pub object_counts: Vec<usize>,
    /// Poses per object.
    pub poses_per_object: usize,
    /// Queries measured per size.
    pub num_queries: usize,
}

impl Default for ScalingOptions {
    fn default() -> Self {
        ScalingOptions {
            object_counts: vec![10, 20, 40, 80],
            poses_per_object: 24,
            num_queries: 10,
        }
    }
}

/// Scaling ablation: Mogul cost versus database size (Theorems 2 and 3).
pub fn run_scaling(config: &ScenarioConfig, options: &ScalingOptions) -> Result<Table> {
    let params = config.params()?;
    let mut table = Table::new(
        "Ablation - Mogul cost vs database size (Theorems 2 and 3)",
        &[
            "n",
            "edges",
            "precompute",
            "search (top-5)",
            "index bytes",
            "bytes / node",
        ],
    );
    for &objects in &options.object_counts {
        let data = coil_like(&CoilLikeConfig {
            num_objects: objects,
            poses_per_object: options.poses_per_object,
            dim: 32,
            ..Default::default()
        })?;
        let graph = knn_graph(data.features(), KnnConfig::with_k(config.knn_k))?;
        let index = MogulIndex::build(
            &graph,
            MogulConfig {
                params,
                ..MogulConfig::default()
            },
        )?;
        let queries = pick_queries(data.len(), options.num_queries, config.seed);
        let search_secs = time_mean(3, || {
            for &q in &queries {
                let _ = index.search(q, 5).expect("search");
            }
        }) / queries.len().max(1) as f64;
        let bytes = index.memory_bytes();
        table.add_row(vec![
            data.len().to_string(),
            graph.num_edges().to_string(),
            format_secs(index.precompute_stats().total_secs()),
            format_secs(search_secs),
            bytes.to_string(),
            format!("{:.1}", bytes as f64 / data.len() as f64),
        ]);
    }
    table.add_note("linear growth of every column is the O(n) behaviour claimed by the paper");
    Ok(table)
}

/// Options of the parameter ablation (α and k-NN degree sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterOptions {
    /// α values to sweep (the paper fixes 0.99).
    pub alphas: Vec<f64>,
    /// k-NN graph degrees to sweep (the paper fixes 5).
    pub knn_ks: Vec<usize>,
    /// Number of answer nodes.
    pub k: usize,
    /// Queries per configuration.
    pub num_queries: usize,
}

impl Default for ParameterOptions {
    fn default() -> Self {
        ParameterOptions {
            alphas: vec![0.5, 0.9, 0.99],
            knn_ks: vec![5, 10, 20],
            k: 5,
            num_queries: 10,
        }
    }
}

/// Parameter ablation on the COIL-like dataset: how α and the k-NN degree
/// affect Mogul's accuracy and factor size.
pub fn run_parameters(config: &ScenarioConfig, options: &ParameterOptions) -> Result<Table> {
    let data = coil_like(&CoilLikeConfig {
        num_objects: 12,
        poses_per_object: 24,
        dim: 32,
        ..Default::default()
    })?;
    let queries = pick_queries(data.len(), options.num_queries, config.seed);
    let mut table = Table::new(
        "Ablation - alpha and k-NN degree (COIL-like, top-5)",
        &[
            "alpha",
            "knn k",
            "P@5 vs Inverse",
            "retrieval precision",
            "L nnz",
            "pruned clusters / considered",
        ],
    );

    for &knn_k in &options.knn_ks {
        let graph = knn_graph(data.features(), KnnConfig::with_k(knn_k))?;
        for &alpha in &options.alphas {
            let params = MrParams::new(alpha)?;
            let inverse = InverseSolver::new(&graph, params)?;
            let index = MogulIndex::build(
                &graph,
                MogulConfig {
                    params,
                    ..MogulConfig::default()
                },
            )?;
            let mut p_at_k = Vec::new();
            let mut retrieval = Vec::new();
            let mut pruned = 0usize;
            let mut considered = 0usize;
            for &q in &queries {
                let reference = inverse.top_k(q, options.k)?;
                let (top, stats) =
                    index.search_with_stats(q, options.k, mogul_core::SearchMode::Pruned)?;
                p_at_k.push(precision_at_k(&top, &reference));
                retrieval.push(retrieval_precision(&top, data.labels(), data.label(q))?);
                pruned += stats.clusters_pruned;
                considered += stats.clusters_considered;
            }
            table.add_row(vec![
                format!("{alpha:.2}"),
                knn_k.to_string(),
                format!("{:.3}", mean(&p_at_k)),
                format!("{:.3}", mean(&retrieval)),
                index.precompute_stats().l_nnz.to_string(),
                format!("{pruned} / {considered}"),
            ]);
        }
    }
    table.add_note("alpha = 0.99 and k = 5 are the paper's settings");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogul_data::suite::SuiteScale;

    fn tiny_config() -> ScenarioConfig {
        ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 3,
            ..Default::default()
        }
    }

    #[test]
    fn scaling_table_grows_linearly_in_rows() {
        let table = run_scaling(
            &tiny_config(),
            &ScalingOptions {
                object_counts: vec![4, 8],
                poses_per_object: 15,
                num_queries: 3,
            },
        )
        .unwrap();
        assert_eq!(table.num_rows(), 2);
        // The per-node footprint should stay in the same ballpark (O(n) memory).
        let small: f64 = table.cell(0, 5).unwrap().parse().unwrap();
        let large: f64 = table.cell(1, 5).unwrap().parse().unwrap();
        assert!(large < 3.0 * small, "per-node bytes {small} -> {large}");
    }

    #[test]
    fn parameter_table_covers_the_grid() {
        let table = run_parameters(
            &tiny_config(),
            &ParameterOptions {
                alphas: vec![0.9, 0.99],
                knn_ks: vec![5],
                k: 5,
                num_queries: 3,
            },
        )
        .unwrap();
        assert_eq!(table.num_rows(), 2);
        for row in 0..table.num_rows() {
            let p: f64 = table.cell(row, 2).unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
