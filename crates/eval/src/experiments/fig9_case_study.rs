//! Figure 9: qualitative case study on the COIL-like dataset.
//!
//! The paper shows query images next to (a) the nodes directly connected in
//! the k-NN graph ("Connected", i.e. plain nearest-neighbour retrieval),
//! (b) Mogul's answers and (c) EMR's answers, and observes that Mogul's
//! answers match the query object while plain k-NN and EMR mix in
//! semantically different objects. The synthetic stand-in replaces images
//! with `(object id, pose index)` labels, so the same comparison is made on
//! label agreement.

use crate::report::Table;
use crate::scenarios::{Scenario, ScenarioConfig};
use crate::Result;
use mogul_core::{EmrConfig, EmrSolver, MogulConfig, MogulIndex, Ranker};

/// Options of the case study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Options {
    /// Number of retrieved items shown per query.
    pub k: usize,
    /// Number of queries shown.
    pub num_queries: usize,
    /// EMR anchor count. The paper uses 100 anchors for the 7,200-image
    /// COIL-100 collection; `0` keeps that anchor-to-image ratio on the
    /// synthetic stand-in (`max(5, n / 72)`).
    pub emr_anchors: usize,
}

impl Default for Fig9Options {
    fn default() -> Self {
        Fig9Options {
            k: 4,
            num_queries: 4,
            emr_anchors: 0,
        }
    }
}

fn describe(data: &mogul_data::Dataset, nodes: &[usize], query_label: usize) -> String {
    let rendered: Vec<String> = nodes
        .iter()
        .map(|&n| {
            let label = data.label(n);
            let marker = if label == query_label { "=" } else { "!" };
            format!("obj{label}{marker}")
        })
        .collect();
    rendered.join(" ")
}

/// Run the case study on one scenario (the paper uses COIL-100).
pub fn run(scenario: &Scenario, config: &ScenarioConfig, options: &Fig9Options) -> Result<Table> {
    let params = config.params()?;
    let data = &scenario.spec.dataset;
    let index = MogulIndex::build(
        &scenario.graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )?;
    let emr_anchors = if options.emr_anchors == 0 {
        (data.len() / 72).max(5)
    } else {
        options.emr_anchors
    };
    let emr = EmrSolver::new(
        data.features(),
        params,
        EmrConfig::with_anchors(emr_anchors),
    )?;

    let mut table = Table::new(
        "Figure 9 - retrieval case study (obj<label>, '=' same object as query, '!' different)",
        &["query", "Connected (k-NN)", "Mogul", "EMR"],
    );
    for &query in scenario.queries.iter().take(options.num_queries) {
        let query_label = data.label(query);
        // "Connected": direct neighbours in the k-NN graph, strongest first.
        let mut connected: Vec<(usize, f64)> = scenario.graph.neighbors(query).to_vec();
        connected.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let connected_nodes: Vec<usize> =
            connected.iter().take(options.k).map(|&(n, _)| n).collect();
        let mogul_nodes = index.search(query, options.k)?.nodes();
        let emr_nodes = emr.top_k(query, options.k)?.nodes();
        table.add_row(vec![
            format!("node {query} (obj{query_label})"),
            describe(data, &connected_nodes, query_label),
            describe(data, &mogul_nodes, query_label),
            describe(data, &emr_nodes, query_label),
        ]);
    }
    table.add_note("the paper's qualitative claim: Mogul's column should contain only '=' entries");
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::limited_scenarios;
    use mogul_data::suite::SuiteScale;

    #[test]
    fn case_study_rows_reference_objects() {
        let config = ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 3,
            ..Default::default()
        };
        let scenario = &limited_scenarios(&config, 1).unwrap()[0];
        let table = run(
            scenario,
            &config,
            &Fig9Options {
                k: 3,
                num_queries: 2,
                emr_anchors: 10,
            },
        )
        .unwrap();
        assert_eq!(table.num_rows(), 2);
        let rendered = table.to_string();
        assert!(rendered.contains("obj"));
        // Mogul's retrieved objects on the ring dataset should match the query object.
        for row in 0..table.num_rows() {
            let mogul_cell = table.cell(row, 2).unwrap();
            assert!(
                !mogul_cell.contains('!'),
                "Mogul returned a different object: {mogul_cell}"
            );
        }
    }
}
