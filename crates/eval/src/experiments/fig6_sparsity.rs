//! Figure 6: non-zero pattern of the factor `L` under the Mogul node
//! ordering versus a random ordering.
//!
//! The paper shows spy plots: with the cluster-aware ordering `L` is singly
//! bordered block diagonal (Lemma 3); with a random ordering the non-zeros
//! scatter across the whole matrix. This runner reports the same information
//! as pattern statistics plus an ASCII density plot per configuration.

use crate::report::Table;
use crate::scenarios::{Scenario, ScenarioConfig};
use crate::Result;
use mogul_core::{MogulConfig, MogulIndex};
use mogul_graph::ordering::random_ordering;
use mogul_sparse::stats::{
    block_diagonal_fraction, density_grid, pattern_stats, render_density_ascii,
};

/// Options of the sparsity-pattern experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Options {
    /// Side length of the ASCII density grid.
    pub grid: usize,
    /// Include the ASCII spy plots as table notes.
    pub render_ascii: bool,
}

impl Default for Fig6Options {
    fn default() -> Self {
        Fig6Options {
            grid: 24,
            render_ascii: true,
        }
    }
}

/// Run the Figure 6 comparison over the supplied scenarios.
pub fn run(
    scenarios: &[Scenario],
    config: &ScenarioConfig,
    options: &Fig6Options,
) -> Result<Table> {
    let params = config.params()?;
    let mut table = Table::new(
        "Figure 6 - non-zero structure of matrix L (Mogul ordering vs random ordering)",
        &[
            "dataset",
            "ordering",
            "L nnz",
            "mean |col-row|",
            "block-diagonal fraction",
            "boosted pivots",
        ],
    );
    for scenario in scenarios {
        let n = scenario.graph.num_nodes();
        for (label, index) in [
            (
                "Mogul",
                MogulIndex::build(
                    &scenario.graph,
                    MogulConfig {
                        params,
                        ..MogulConfig::default()
                    },
                )?,
            ),
            (
                "Random",
                MogulIndex::build_with_ordering(
                    &scenario.graph,
                    MogulConfig {
                        params,
                        ..MogulConfig::default()
                    },
                    random_ordering(n, config.seed),
                )?,
            ),
        ] {
            let l = index.factor_l();
            let stats = pattern_stats(l);
            let boundaries: Vec<usize> =
                index.ordering().clusters.iter().map(|c| c.start).collect();
            let block_fraction = block_diagonal_fraction(l, &boundaries);
            table.add_row(vec![
                scenario.name().to_string(),
                label.to_string(),
                stats.nnz.to_string(),
                format!("{:.1}", stats.mean_distance_from_diagonal),
                format!("{:.3}", block_fraction),
                index.precompute_stats().boosted_pivots.to_string(),
            ]);
            if options.render_ascii {
                let grid = density_grid(l, options.grid);
                table.add_note(format!(
                    "{} / {label} ordering, L spy plot:\n{}",
                    scenario.name(),
                    render_density_ascii(&grid)
                ));
            }
        }
    }
    table.add_note(
        "the Mogul ordering concentrates non-zeros near the diagonal (small mean |col-row|, \
         block-diagonal fraction close to 1), reproducing the singly bordered block diagonal \
         shape of the paper's spy plots",
    );
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::limited_scenarios;
    use mogul_data::suite::SuiteScale;

    #[test]
    fn mogul_ordering_is_more_block_diagonal_than_random() {
        let config = ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 1,
            ..Default::default()
        };
        let scenarios = limited_scenarios(&config, 1).unwrap();
        let table = run(
            &scenarios,
            &config,
            &Fig6Options {
                grid: 8,
                render_ascii: false,
            },
        )
        .unwrap();
        assert_eq!(table.num_rows(), 2);
        // Column 4 is the block-diagonal fraction; Mogul row comes first.
        let mogul_fraction: f64 = table.cell(0, 4).unwrap().parse().unwrap();
        let random_fraction: f64 = table.cell(1, 4).unwrap().parse().unwrap();
        assert!(
            mogul_fraction >= random_fraction,
            "Mogul {mogul_fraction} vs random {random_fraction}"
        );
        // Mean distance from the diagonal should be smaller under the Mogul ordering.
        let mogul_dist: f64 = table.cell(0, 3).unwrap().parse().unwrap();
        let random_dist: f64 = table.cell(1, 3).unwrap().parse().unwrap();
        assert!(mogul_dist <= random_dist);
    }
}
