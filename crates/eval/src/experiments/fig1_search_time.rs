//! Figure 1: search time of every method on the four datasets.
//!
//! The paper reports wall-clock search time (precomputation excluded) of
//! Mogul with k ∈ {5, 10, 15, 20}, EMR (d = 10 anchors), FMR (rank 250),
//! the iterative method (tolerance 10⁻⁴) and the inverse-matrix approach.
//! The inverse approach is skipped on the larger datasets — in the paper
//! because of its `O(n²)` memory, here because of its `O(n³)` time at
//! reproduction scale.

use crate::report::Table;
use crate::scenarios::{Scenario, ScenarioConfig};
use crate::timer::{format_secs, time_mean};
use crate::Result;
use mogul_core::{
    EmrConfig, EmrSolver, FmrConfig, FmrSolver, InverseSolver, IterativeConfig, IterativeSolver,
    MogulConfig, MogulIndex, Ranker,
};

/// Options of the Figure 1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Options {
    /// Values of k for the Mogul(k) columns.
    pub mogul_ks: Vec<usize>,
    /// Number of EMR anchor points (the paper uses 10 in this figure).
    pub emr_anchors: usize,
    /// FMR low-rank target (the paper uses 250).
    pub fmr_rank: usize,
    /// Skip the dense Inverse baseline on datasets larger than this.
    pub inverse_max_n: usize,
    /// Skip FMR on datasets larger than this (its block solves degenerate
    /// towards dense behaviour on badly partitioned graphs).
    pub fmr_max_n: usize,
    /// Repetitions per query when averaging search time.
    pub repetitions: usize,
}

impl Default for Fig1Options {
    fn default() -> Self {
        Fig1Options {
            mogul_ks: vec![5, 10, 15, 20],
            emr_anchors: 10,
            fmr_rank: 250,
            inverse_max_n: 2_500,
            fmr_max_n: 6_000,
            repetitions: 3,
        }
    }
}

/// Run the Figure 1 measurement over the supplied scenarios.
pub fn run(
    scenarios: &[Scenario],
    config: &ScenarioConfig,
    options: &Fig1Options,
) -> Result<Table> {
    let params = config.params()?;
    let mut table = Table::new(
        "Figure 1 - search time per query [wall clock]",
        &["method", "dataset", "n", "search time", "seconds"],
    );
    table.add_note("Mogul(k): Algorithm 2 with pruning; precomputation excluded, as in the paper");

    for scenario in scenarios {
        let n = scenario.len();
        let queries = &scenario.queries;

        // --- Mogul(k) -------------------------------------------------------
        let index = MogulIndex::build(
            &scenario.graph,
            MogulConfig {
                params,
                ..MogulConfig::default()
            },
        )?;
        for &k in &options.mogul_ks {
            let secs = time_mean(options.repetitions, || {
                for &q in queries {
                    let _ = index.search(q, k).expect("mogul search");
                }
            }) / queries.len().max(1) as f64;
            add_time_row(&mut table, &format!("Mogul({k})"), scenario, n, secs);
        }

        // --- EMR -------------------------------------------------------------
        let emr = EmrSolver::new(
            scenario.spec.dataset.features(),
            params,
            EmrConfig::with_anchors(options.emr_anchors),
        )?;
        let secs = time_mean(options.repetitions, || {
            for &q in queries {
                let _ = emr.top_k(q, 5).expect("emr search");
            }
        }) / queries.len().max(1) as f64;
        add_time_row(&mut table, "EMR", scenario, n, secs);

        // --- FMR -------------------------------------------------------------
        if n <= options.fmr_max_n {
            let fmr = FmrSolver::new(
                &scenario.graph,
                params,
                FmrConfig {
                    rank: options.fmr_rank,
                    ..FmrConfig::default()
                },
            )?;
            let secs = time_mean(1, || {
                for &q in queries {
                    let _ = fmr.top_k(q, 5).expect("fmr search");
                }
            }) / queries.len().max(1) as f64;
            add_time_row(&mut table, "FMR", scenario, n, secs);
        } else {
            add_skip_row(&mut table, "FMR", scenario, n);
        }

        // --- Iterative --------------------------------------------------------
        let iterative = IterativeSolver::new(&scenario.graph, params, IterativeConfig::default())?;
        let secs = time_mean(1, || {
            for &q in queries {
                let _ = iterative.top_k(q, 5).expect("iterative search");
            }
        }) / queries.len().max(1) as f64;
        add_time_row(&mut table, "Iterative", scenario, n, secs);

        // --- Inverse -----------------------------------------------------------
        if n <= options.inverse_max_n {
            let inverse = InverseSolver::new(&scenario.graph, params)?;
            // The per-query cost of the Inverse approach is the full dense
            // score computation; the paper additionally charges the inverse
            // itself to the search, which we report as a note instead.
            let (_, build_secs) = crate::timer::time_once(|| {
                InverseSolver::new(&scenario.graph, params).expect("inverse build")
            });
            let secs = time_mean(1, || {
                for &q in queries {
                    let _ = inverse.top_k(q, 5).expect("inverse search");
                }
            }) / queries.len().max(1) as f64;
            add_time_row(&mut table, "Inverse (per query)", scenario, n, secs);
            add_time_row(
                &mut table,
                "Inverse (incl. inversion)",
                scenario,
                n,
                secs + build_secs,
            );
        } else {
            add_skip_row(&mut table, "Inverse", scenario, n);
        }
    }
    Ok(table)
}

fn add_time_row(table: &mut Table, method: &str, scenario: &Scenario, n: usize, secs: f64) {
    table.add_row(vec![
        method.to_string(),
        scenario.name().to_string(),
        n.to_string(),
        format_secs(secs),
        format!("{secs:.3e}"),
    ]);
}

fn add_skip_row(table: &mut Table, method: &str, scenario: &Scenario, n: usize) {
    table.add_row(vec![
        method.to_string(),
        scenario.name().to_string(),
        n.to_string(),
        "skipped (too large)".to_string(),
        "".to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::limited_scenarios;
    use mogul_data::suite::SuiteScale;

    #[test]
    fn produces_a_row_per_method_and_dataset() {
        let config = ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 2,
            ..Default::default()
        };
        let scenarios = limited_scenarios(&config, 1).unwrap();
        let options = Fig1Options {
            repetitions: 1,
            mogul_ks: vec![5, 10],
            ..Default::default()
        };
        let table = run(&scenarios, &config, &options).unwrap();
        // 2 Mogul rows + EMR + FMR + Iterative + 2 Inverse rows = 7.
        assert_eq!(table.num_rows(), 7);
        let rendered = table.to_string();
        assert!(rendered.contains("Mogul(5)"));
        assert!(rendered.contains("EMR"));
        assert!(rendered.contains("Iterative"));
        assert!(rendered.contains("Inverse"));
    }
}
