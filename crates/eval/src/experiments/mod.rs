//! One module per table/figure of the paper's evaluation section.
//!
//! | Module | Reproduces | Paper section |
//! |---|---|---|
//! | [`fig1_search_time`] | Figure 1 — search time of Mogul(k), EMR, FMR, Iterative, Inverse on the four datasets | §5.1 |
//! | [`anchor_sweep`] | Figures 2, 3, 4 — P@k, retrieval precision and search time vs. the number of EMR anchor points | §5.2.1 |
//! | [`fig5_pruning`] | Figure 5 — effect of the sparse structure and the pruning estimation | §5.2.2 |
//! | [`fig6_sparsity`] | Figure 6 — non-zero pattern of the factor `L` under Mogul vs. random ordering | §5.2.2 |
//! | [`fig7_out_of_sample`] | Figure 7 and Table 2 — out-of-sample search time and its breakdown | §5.2.3 |
//! | [`fig8_precompute`] | Figure 8 — precomputation time of Mogul vs. a random ordering | §5.2.4 |
//! | [`fig9_case_study`] | Figure 9 — qualitative retrieval comparison on the COIL-like dataset | §5.3 |
//!
//! Every module exposes a `run*` function returning [`crate::Table`]s with
//! the same rows/series the paper plots; the binaries in `mogul-bench` print
//! them.

pub mod ablations;
pub mod anchor_sweep;
pub mod fig1_search_time;
pub mod fig5_pruning;
pub mod fig6_sparsity;
pub mod fig7_out_of_sample;
pub mod fig8_precompute;
pub mod fig9_case_study;
