//! Figures 2, 3 and 4: accuracy and search time versus the number of EMR
//! anchor points, on the COIL-like dataset with k = 5 answers.
//!
//! The three figures share the same sweep: for each anchor count `d` the
//! experiment measures EMR's `P@k` against the inverse-matrix answer
//! (Figure 2), its retrieval precision against ground-truth object labels
//! (Figure 3) and its per-query search time (Figure 4). Mogul and MogulE do
//! not depend on `d`, so they appear as flat reference lines, exactly as in
//! the paper.

use crate::metrics::{mean, precision_at_k, retrieval_precision};
use crate::report::Table;
use crate::scenarios::{Scenario, ScenarioConfig};
use crate::timer::{format_secs, time_mean};
use crate::Result;
use mogul_core::{
    EmrConfig, EmrSolver, InverseSolver, MogulConfig, MogulIndex, Ranker, TopKResult,
};

/// Options for the anchor sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AnchorSweepOptions {
    /// Anchor counts to sweep (the paper goes from 10 to 1000 on a log axis).
    pub anchor_counts: Vec<usize>,
    /// Number of answer nodes (the paper uses the top five).
    pub k: usize,
    /// Repetitions when averaging search time.
    pub repetitions: usize,
}

impl Default for AnchorSweepOptions {
    fn default() -> Self {
        AnchorSweepOptions {
            anchor_counts: vec![10, 20, 50, 100, 200, 400],
            k: 5,
            repetitions: 3,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Method name ("Mogul", "MogulE" or "EMR(d)").
    pub method: String,
    /// Number of anchors (0 for the anchor-free methods).
    pub anchors: usize,
    /// Mean `P@k` against the inverse-matrix answer.
    pub precision_at_k: f64,
    /// Mean retrieval precision against ground-truth labels.
    pub retrieval_precision: f64,
    /// Mean per-query search time in seconds.
    pub search_secs: f64,
}

/// Run the sweep on one scenario (the paper uses the COIL-100 dataset).
pub fn run_sweep(
    scenario: &Scenario,
    config: &ScenarioConfig,
    options: &AnchorSweepOptions,
) -> Result<Vec<SweepPoint>> {
    let params = config.params()?;
    let labels = scenario.spec.dataset.labels();
    let queries = &scenario.queries;
    let k = options.k;

    // Ground truth for P@k: the inverse-matrix top-k.
    let inverse = InverseSolver::new(&scenario.graph, params)?;
    let reference: Vec<TopKResult> = queries
        .iter()
        .map(|&q| inverse.top_k(q, k))
        .collect::<Result<_>>()?;

    let mut points = Vec::new();

    // Anchor-free reference lines: Mogul and MogulE.
    for exact in [false, true] {
        let index = MogulIndex::build(
            &scenario.graph,
            MogulConfig {
                params,
                ..if exact {
                    MogulConfig::exact()
                } else {
                    MogulConfig::default()
                }
            },
        )?;
        let mut p_at_k = Vec::new();
        let mut retrieval = Vec::new();
        for (qi, &q) in queries.iter().enumerate() {
            let top = index.search(q, k)?;
            p_at_k.push(precision_at_k(&top, &reference[qi]));
            retrieval.push(retrieval_precision(&top, labels, labels[q])?);
        }
        let secs = time_mean(options.repetitions, || {
            for &q in queries {
                let _ = index.search(q, k).expect("mogul search");
            }
        }) / queries.len().max(1) as f64;
        points.push(SweepPoint {
            method: if exact { "MogulE" } else { "Mogul" }.to_string(),
            anchors: 0,
            precision_at_k: mean(&p_at_k),
            retrieval_precision: mean(&retrieval),
            search_secs: secs,
        });
    }

    // EMR for every anchor count.
    for &anchors in &options.anchor_counts {
        let emr = EmrSolver::new(
            scenario.spec.dataset.features(),
            params,
            EmrConfig::with_anchors(anchors),
        )?;
        let mut p_at_k = Vec::new();
        let mut retrieval = Vec::new();
        for (qi, &q) in queries.iter().enumerate() {
            let top = emr.top_k(q, k)?;
            p_at_k.push(precision_at_k(&top, &reference[qi]));
            retrieval.push(retrieval_precision(&top, labels, labels[q])?);
        }
        let secs = time_mean(options.repetitions, || {
            for &q in queries {
                let _ = emr.top_k(q, k).expect("emr search");
            }
        }) / queries.len().max(1) as f64;
        points.push(SweepPoint {
            method: format!("EMR(d={anchors})"),
            anchors,
            precision_at_k: mean(&p_at_k),
            retrieval_precision: mean(&retrieval),
            search_secs: secs,
        });
    }
    Ok(points)
}

/// Figure 2: P@k versus the number of anchor points.
pub fn figure2_table(points: &[SweepPoint]) -> Table {
    let mut table = Table::new(
        "Figure 2 - P@k vs number of anchor points (top-5, COIL-like)",
        &["method", "anchors", "P@k"],
    );
    for p in points {
        table.add_row(vec![
            p.method.clone(),
            if p.anchors == 0 {
                "-".into()
            } else {
                p.anchors.to_string()
            },
            format!("{:.3}", p.precision_at_k),
        ]);
    }
    table
}

/// Figure 3: retrieval precision versus the number of anchor points.
pub fn figure3_table(points: &[SweepPoint]) -> Table {
    let mut table = Table::new(
        "Figure 3 - retrieval precision vs number of anchor points (top-5, COIL-like)",
        &["method", "anchors", "retrieval precision"],
    );
    for p in points {
        table.add_row(vec![
            p.method.clone(),
            if p.anchors == 0 {
                "-".into()
            } else {
                p.anchors.to_string()
            },
            format!("{:.3}", p.retrieval_precision),
        ]);
    }
    table
}

/// Figure 4: search time versus the number of anchor points.
pub fn figure4_table(points: &[SweepPoint]) -> Table {
    let mut table = Table::new(
        "Figure 4 - search time vs number of anchor points (top-5, COIL-like)",
        &["method", "anchors", "search time", "seconds"],
    );
    for p in points {
        table.add_row(vec![
            p.method.clone(),
            if p.anchors == 0 {
                "-".into()
            } else {
                p.anchors.to_string()
            },
            format_secs(p.search_secs),
            format!("{:.3e}", p.search_secs),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::limited_scenarios;
    use mogul_data::suite::SuiteScale;

    #[test]
    fn sweep_produces_expected_series() {
        let config = ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 3,
            ..Default::default()
        };
        let scenario = &limited_scenarios(&config, 1).unwrap()[0];
        let options = AnchorSweepOptions {
            anchor_counts: vec![5, 20],
            k: 5,
            repetitions: 1,
        };
        let points = run_sweep(scenario, &config, &options).unwrap();
        assert_eq!(points.len(), 4); // Mogul, MogulE, EMR(5), EMR(20)
        for p in &points {
            assert!((0.0..=1.0).contains(&p.precision_at_k), "{p:?}");
            assert!((0.0..=1.0).contains(&p.retrieval_precision), "{p:?}");
            assert!(p.search_secs >= 0.0);
        }
        // MogulE is exact, so its P@k must be (near) perfect.
        let mogul_e = points.iter().find(|p| p.method == "MogulE").unwrap();
        assert!(mogul_e.precision_at_k > 0.95, "{mogul_e:?}");
        // Mogul's retrieval precision should be high on the ring dataset.
        let mogul = points.iter().find(|p| p.method == "Mogul").unwrap();
        assert!(mogul.retrieval_precision > 0.8, "{mogul:?}");

        let t2 = figure2_table(&points);
        let t3 = figure3_table(&points);
        let t4 = figure4_table(&points);
        assert_eq!(t2.num_rows(), 4);
        assert_eq!(t3.num_rows(), 4);
        assert_eq!(t4.num_rows(), 4);
        assert!(t2.to_string().contains("EMR(d=5)"));
    }
}
