//! Figure 5: effect of the sparse structure and of the pruning estimation.
//!
//! The paper compares three configurations when retrieving the top five
//! nodes: full Mogul (restricted substitution + pruning), Mogul without the
//! estimation ("W/O estimation" — restricted substitution only) and a plain
//! Incomplete-Cholesky solve that ignores the sparse structure entirely.

use crate::report::Table;
use crate::scenarios::{Scenario, ScenarioConfig};
use crate::timer::{format_secs, time_mean};
use crate::Result;
use mogul_core::{MogulConfig, MogulIndex, SearchMode};

/// Options of the pruning ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Options {
    /// Number of answer nodes (the paper uses the top five).
    pub k: usize,
    /// Repetitions per query when averaging.
    pub repetitions: usize,
}

impl Default for Fig5Options {
    fn default() -> Self {
        Fig5Options {
            k: 5,
            repetitions: 3,
        }
    }
}

/// Run the Figure 5 ablation over the supplied scenarios.
pub fn run(
    scenarios: &[Scenario],
    config: &ScenarioConfig,
    options: &Fig5Options,
) -> Result<Table> {
    let params = config.params()?;
    let mut table = Table::new(
        "Figure 5 - effect of the pruning approach (top-5 search time)",
        &[
            "dataset",
            "n",
            "Mogul",
            "W/O estimation",
            "Incomplete Cholesky",
            "pruned clusters / considered",
        ],
    );
    for scenario in scenarios {
        let index = MogulIndex::build(
            &scenario.graph,
            MogulConfig {
                params,
                ..MogulConfig::default()
            },
        )?;
        let queries = &scenario.queries;
        let mut mode_secs = [0.0f64; 3];
        for (slot, mode) in [
            SearchMode::Pruned,
            SearchMode::NoPruning,
            SearchMode::FullSubstitution,
        ]
        .into_iter()
        .enumerate()
        {
            mode_secs[slot] = time_mean(options.repetitions, || {
                for &q in queries {
                    let _ = index
                        .search_with_stats(q, options.k, mode)
                        .expect("mogul search");
                }
            }) / queries.len().max(1) as f64;
        }
        // Pruning statistics (informative, matches the paper's discussion).
        let mut pruned = 0usize;
        let mut considered = 0usize;
        for &q in queries {
            let (_, stats) = index.search_with_stats(q, options.k, SearchMode::Pruned)?;
            pruned += stats.clusters_pruned;
            considered += stats.clusters_considered;
        }
        table.add_row(vec![
            scenario.name().to_string(),
            scenario.len().to_string(),
            format_secs(mode_secs[0]),
            format_secs(mode_secs[1]),
            format_secs(mode_secs[2]),
            format!("{pruned} / {considered}"),
        ]);
    }
    table.add_note(
        "Mogul ≤ W/O estimation ≤ Incomplete Cholesky is the shape reported in the paper",
    );
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::limited_scenarios;
    use mogul_data::suite::SuiteScale;

    #[test]
    fn table_has_one_row_per_dataset() {
        let config = ScenarioConfig {
            scale: SuiteScale::Tiny,
            num_queries: 3,
            ..Default::default()
        };
        let scenarios = limited_scenarios(&config, 2).unwrap();
        let table = run(
            &scenarios,
            &config,
            &Fig5Options {
                repetitions: 1,
                k: 5,
            },
        )
        .unwrap();
        assert_eq!(table.num_rows(), 2);
        let rendered = table.to_string();
        assert!(rendered.contains("COIL-100-like"));
        assert!(rendered.contains("PubFig-like"));
    }
}
