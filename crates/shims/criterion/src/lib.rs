//! Offline API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements the
//! surface the workspace's `benches/*.rs` use: [`Criterion::benchmark_group`],
//! group configuration ([`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::warm_up_time`] / [`BenchmarkGroup::measurement_time`]),
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology is deliberately simple: warm up for the configured duration,
//! then run `sample_size` samples (each sample runs the routine as many times
//! as fits a per-sample time slice) and report the mean/min/max per-iteration
//! wall time. Good enough for `cargo bench` smoke runs and relative
//! comparisons; not a statistical replacement for real criterion.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("EMR", 50)` → `EMR/50`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the configured number of iterations, timing the batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to run the routine before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a routine under `id` (a string or [`BenchmarkId`]).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_benchmark_name(), &mut f);
        self
    }

    /// Benchmark a routine that receives an input value by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_benchmark_name(), &mut |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}

    fn run(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: call the routine once per loop until the budget is spent,
        // and learn the per-iteration cost while doing so.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Size each sample so `sample_size` samples fit the measurement budget.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64
        };

        let mut times: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iterations: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {name:<32} mean {:>12}  min {:>12}  max {:>12}  ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            self.sample_size,
            iters_per_sample,
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Things usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Render the display name.
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("EMR", 50).name, "EMR/50");
    }
}
