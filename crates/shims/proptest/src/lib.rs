//! Offline API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements the
//! surface the workspace's property tests use: the [`proptest!`] macro with a
//! `#![proptest_config(...)]` header, [`Strategy`] implemented for integer and
//! float ranges plus tuples, [`Just`], [`Strategy::prop_flat_map`] /
//! [`Strategy::prop_map`], [`collection::vec`], [`bool::ANY`],
//! [`ProptestConfig::with_cases`], and the `prop_assert!` family.
//!
//! Sampling is driven by a deterministic SplitMix64 stream, so test runs are
//! reproducible. Unlike real proptest there is **no shrinking**: a failing
//! case panics with the assertion message from the offending inputs.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh deterministic stream (fixed seed — runs are reproducible).
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound > 0`).
    pub fn next_index(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() >> 11) as u128 * bound as u128) >> 53) as u64
    }
}

/// Per-test configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a strategy from each sampled value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Transform each sampled value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_index(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 0..n)`: a vector of `element` samples with random length.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Bind `pat in strategy` parameters sequentially, innermost-first, then run
/// the test body. Internal helper for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block $(,)?) => { $body };
    ($rng:ident, $body:block, $pat:pat in $strategy:expr $(, $($rest:tt)*)?) => {{
        let $pat = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng, $body $(, $($rest)*)?)
    }};
}

/// Subset of the `proptest!` macro: a `#![proptest_config(...)]` header
/// followed by `#[test]` functions whose arguments are `pattern in strategy`
/// pairs. Each test runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for _case in 0..config.cases {
                    $crate::__proptest_bind!(rng, $body, $($params)*);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, Vec<u8>)> {
        (2usize..10).prop_flat_map(|n| {
            let bytes = crate::collection::vec(0u8..64, 1..(2 * n));
            (Just(n), bytes)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds and flat-mapped strategies compose.
        #[test]
        fn ranges_and_flat_map_work(
            (n, bytes) in pair_strategy(),
            x in 0.25f64..0.75,
            flag in crate::bool::ANY,
        ) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(!bytes.is_empty() && bytes.len() < 2 * n);
            prop_assert!(bytes.iter().all(|&b| b < 64));
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert_eq!(u8::from(flag) <= 1, true);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        let s = (0usize..100, 0.0f64..1.0);
        for _ in 0..100 {
            prop_assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
