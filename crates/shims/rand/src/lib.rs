//! Offline API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! exactly the surface the workspace uses: [`Rng::gen`] for `f64`/`bool`,
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded with
//! SplitMix64 — deterministic for a given seed on every platform, but *not*
//! stream-compatible with upstream `rand`.

#![warn(missing_docs)]

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// The raw 64-bit generator interface (object-safe).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` (uniform over its natural range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in `[0, bound)`. Used by [`seq::SliceRandom`].
    fn gen_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping; bias is < 2^-53 for the
        // slice lengths this workspace shuffles.
        (((self.next_u64() >> 11) as u128 * bound as u128) >> 53) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_ish() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..1000).map(|_| a.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..1000).map(|_| b.gen::<f64>()).collect();
        assert_eq!(xs, ys);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
