//! Property-based tests of the graph substrate: clustering invariants and
//! Algorithm 1 ordering guarantees on random graphs.

use mogul_graph::clustering::modularity::{
    modularity_clustering, modularity_score, ModularityConfig,
};
use mogul_graph::clustering::Clustering;
use mogul_graph::ordering::{mogul_ordering, random_ordering};
use mogul_graph::Graph;
use proptest::prelude::*;

fn build_graph(n: usize, raw_edges: &[(usize, usize, u8)]) -> Graph {
    let mut graph = Graph::empty(n);
    for &(a, b, w) in raw_edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let weight = 0.05 + f64::from(w) / 32.0;
        graph.add_edge(a, b, weight).unwrap();
    }
    graph
}

fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (4usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0u8..32), 0..(3 * n));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Modularity clustering always returns a full, contiguous labelling and
    /// never merges nodes across connected components.
    #[test]
    fn modularity_clustering_invariants((n, edges) in graph_strategy()) {
        let graph = build_graph(n, &edges);
        let clustering = modularity_clustering(&graph, &ModularityConfig::default());
        prop_assert_eq!(clustering.len(), n);
        // Labels are contiguous: every label below num_clusters appears.
        let mut seen = vec![false; clustering.num_clusters()];
        for &l in clustering.labels() {
            prop_assert!(l < clustering.num_clusters());
            seen[l] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // No cluster spans two connected components.
        let components = graph.connected_components();
        for u in 0..n {
            for v in 0..n {
                if clustering.same_cluster(u, v) && graph.num_edges() > 0 {
                    // Same cluster implies same component whenever both nodes
                    // have at least one edge (isolated nodes are singletons).
                    if graph.degree(u) > 0 && graph.degree(v) > 0 {
                        prop_assert_eq!(components[u], components[v]);
                    }
                }
            }
        }
        // The returned clustering is never worse than the all-singletons one.
        let q = modularity_score(&graph, &clustering);
        let q_singletons = modularity_score(&graph, &Clustering::singletons(n));
        prop_assert!(q + 1e-9 >= q_singletons);
    }

    /// Algorithm 1 always produces a valid ordering: a bijection, contiguous
    /// clusters, a trailing border cluster, and no interior node with an edge
    /// into a different interior cluster.
    #[test]
    fn ordering_invariants((n, edges) in graph_strategy()) {
        let graph = build_graph(n, &edges);
        let clustering = modularity_clustering(&graph, &ModularityConfig::default());
        let ordering = mogul_ordering(&graph, &clustering).unwrap();
        prop_assert!(ordering.validate());
        prop_assert_eq!(ordering.len(), n);

        let border_idx = ordering.border_cluster();
        // Permutation is a bijection.
        let mut seen = vec![false; n];
        for p in 0..n {
            let old = ordering.permutation.old_index(p);
            prop_assert!(!seen[old]);
            seen[old] = true;
        }
        // Interior nodes only touch their own cluster or the border.
        for u in 0..n {
            let cu = ordering.cluster_of_node(u);
            if cu == border_idx {
                continue;
            }
            for &(v, _) in graph.neighbors(u) {
                let cv = ordering.cluster_of_node(v);
                prop_assert!(cv == cu || cv == border_idx);
            }
        }
        // Within every cluster, nodes appear in non-decreasing order of their
        // within-cluster degree (the Algorithm 1 arrangement).
        for (ci, range) in ordering.clusters.iter().enumerate() {
            let mut previous = 0usize;
            for p in range.indices() {
                let node = ordering.permutation.old_index(p);
                let within = graph.count_neighbors_where(node, |v| ordering.cluster_of_node(v) == ci);
                prop_assert!(within >= previous, "cluster {ci} not sorted by within-degree");
                previous = within;
            }
        }
    }

    /// Random orderings are valid single-cluster orderings for any size.
    #[test]
    fn random_ordering_is_always_valid(n in 0usize..200, seed in 0u64..50) {
        let ordering = random_ordering(n, seed);
        prop_assert!(ordering.validate());
        prop_assert_eq!(ordering.num_clusters(), 1);
        prop_assert_eq!(ordering.border_range().len, n);
    }
}
