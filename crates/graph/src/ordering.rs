//! Algorithm 1: the cluster-aware node ordering.
//!
//! The permutation produced here is what turns the Incomplete Cholesky factor
//! `L` into a *singly bordered block diagonal* matrix (Lemma 3): nodes that
//! only have within-cluster edges are laid out cluster by cluster, nodes that
//! have cross-cluster edges are moved to the final "border" cluster `C_N`,
//! and within each cluster nodes are arranged in ascending order of their
//! within-cluster edge count so that the left side of `W` stays sparse.

use crate::clustering::labels::Clustering;
use crate::clustering::modularity::{modularity_clustering, ModularityConfig};
use crate::graph::Graph;
use crate::Result;
use mogul_sparse::Permutation;

/// A contiguous range of permuted node indices belonging to one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterRange {
    /// First permuted index of the cluster.
    pub start: usize,
    /// Number of nodes in the cluster.
    pub len: usize,
}

impl ClusterRange {
    /// One-past-the-end permuted index.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// `true` if the permuted index `idx` lies inside this cluster.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end()
    }

    /// Iterate over the permuted indices of the cluster.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end()
    }

    /// `true` when the cluster holds no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The output of Algorithm 1: a node permutation plus the cluster layout in
/// the permuted index space. The final cluster is always the border cluster
/// `C_N` (nodes with cross-cluster edges); it may be empty.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOrdering {
    /// Node permutation `P` (`new = permuted`, `old = original node id`).
    pub permutation: Permutation,
    /// Contiguous clusters in permuted space; the last entry is `C_N`.
    pub clusters: Vec<ClusterRange>,
}

impl NodeOrdering {
    /// Number of nodes covered by the ordering.
    pub fn len(&self) -> usize {
        self.permutation.len()
    }

    /// `true` when the ordering covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.permutation.is_empty()
    }

    /// Number of clusters (including the border cluster).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Index of the border cluster `C_N` (always the last one).
    pub fn border_cluster(&self) -> usize {
        self.clusters.len() - 1
    }

    /// The border cluster range.
    pub fn border_range(&self) -> ClusterRange {
        self.clusters[self.border_cluster()]
    }

    /// Cluster index of a *permuted* node index.
    pub fn cluster_of_permuted(&self, permuted: usize) -> usize {
        // Clusters are contiguous and ordered; binary search on start offsets.
        match self.clusters.binary_search_by_key(&permuted, |c| c.start) {
            Ok(pos) => {
                // `permuted` is the start of cluster `pos`, but empty clusters
                // share start offsets; advance to the cluster that contains it.
                let mut p = pos;
                while p < self.clusters.len() && !self.clusters[p].contains(permuted) {
                    p += 1;
                }
                p.min(self.clusters.len() - 1)
            }
            Err(pos) => {
                let mut p = pos.saturating_sub(1);
                while p + 1 < self.clusters.len() && !self.clusters[p].contains(permuted) {
                    p += 1;
                }
                p
            }
        }
    }

    /// Cluster index of an *original* node id.
    pub fn cluster_of_node(&self, node: usize) -> usize {
        self.cluster_of_permuted(self.permutation.new_index(node))
    }

    /// Consistency check used by tests and debug assertions: clusters tile
    /// `0..n` contiguously and the permutation is a bijection.
    pub fn validate(&self) -> bool {
        let mut cursor = 0usize;
        for c in &self.clusters {
            if c.start != cursor {
                return false;
            }
            cursor = c.end();
        }
        cursor == self.len()
    }
}

/// Run Algorithm 1: derive the Mogul node ordering from a graph and a
/// clustering of its nodes.
pub fn mogul_ordering(graph: &Graph, clustering: &Clustering) -> Result<NodeOrdering> {
    clustering.check_len(graph.num_nodes())?;
    let n = graph.num_nodes();
    let num_input_clusters = clustering.num_clusters();

    // Lines 3-7: nodes with cross-cluster edges move to the border cluster.
    let mut in_border = vec![false; n];
    for u in 0..n {
        for &(v, _) in graph.neighbors(u) {
            if clustering.label(u) != clustering.label(v) {
                in_border[u] = true;
                break;
            }
        }
    }

    // Final cluster id per node: original cluster for interior nodes, a fresh
    // id for border nodes.
    let border_id = num_input_clusters;
    let final_label: Vec<usize> = (0..n)
        .map(|u| {
            if in_border[u] {
                border_id
            } else {
                clustering.label(u)
            }
        })
        .collect();

    // Within-cluster edge count e(u) with respect to the *final* assignment.
    let within_edges: Vec<usize> = (0..n)
        .map(|u| graph.count_neighbors_where(u, |v| final_label[v] == final_label[u]))
        .collect();

    // Collect members per final cluster.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_input_clusters + 1];
    for u in 0..n {
        members[final_label[u]].push(u);
    }

    // Lines 8-17: lay clusters out one by one, nodes in ascending order of
    // within-cluster edges (ties broken by node id for determinism).
    let mut new_to_old = Vec::with_capacity(n);
    let mut clusters = Vec::new();
    for (cluster_id, mut nodes) in members.into_iter().enumerate() {
        let is_border = cluster_id == border_id;
        if nodes.is_empty() && !is_border {
            continue; // interior clusters emptied by the border extraction
        }
        nodes.sort_by_key(|&u| (within_edges[u], u));
        let start = new_to_old.len();
        let len = nodes.len();
        new_to_old.extend(nodes);
        clusters.push(ClusterRange { start, len });
        if is_border {
            // Border cluster is always last; nothing follows.
            break;
        }
    }
    // Ensure the border cluster exists even when no interior cluster had
    // cross-cluster edges (e.g. a fully disconnected clustering).
    if clusters.is_empty() || new_to_old.len() != n {
        // This can only happen if the border id was skipped above because
        // the loop broke early; rebuild defensively.
        return Err(crate::GraphError::InvalidInput(
            "internal error: ordering did not cover all nodes".into(),
        ));
    }

    let permutation = Permutation::from_new_to_old(new_to_old)?;
    let ordering = NodeOrdering {
        permutation,
        clusters,
    };
    debug_assert!(ordering.validate());
    Ok(ordering)
}

/// Convenience: modularity clustering followed by [`mogul_ordering`].
pub fn mogul_ordering_from_graph(graph: &Graph, config: &ModularityConfig) -> Result<NodeOrdering> {
    let clustering = modularity_clustering(graph, config);
    mogul_ordering(graph, &clustering)
}

/// The identity ordering with a single (border) cluster. Used as the
/// "no clustering information" baseline: every node is treated as a border
/// node, so no pruning is possible.
pub fn identity_ordering(n: usize) -> NodeOrdering {
    NodeOrdering {
        permutation: Permutation::identity(n),
        clusters: vec![ClusterRange { start: 0, len: n }],
    }
}

/// A uniformly random ordering with a single (border) cluster. This is the
/// "Random" configuration of Figures 6 and 8 in the paper.
pub fn random_ordering(n: usize, seed: u64) -> NodeOrdering {
    let mut ids: Vec<usize> = (0..n).collect();
    // Fisher-Yates with a small xorshift generator.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
    NodeOrdering {
        permutation: Permutation::from_new_to_old(ids).expect("shuffle produces a bijection"),
        clusters: vec![ClusterRange { start: 0, len: n }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::modularity::ModularityConfig;

    /// Two triangles joined by one bridge edge: nodes 2 and 3 become border nodes.
    fn bridged_triangles() -> (Graph, Clustering) {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        )
        .unwrap();
        let clustering = Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        (g, clustering)
    }

    #[test]
    fn border_nodes_move_to_last_cluster() {
        let (g, c) = bridged_triangles();
        let ordering = mogul_ordering(&g, &c).unwrap();
        assert!(ordering.validate());
        assert_eq!(ordering.len(), 6);
        assert_eq!(ordering.num_clusters(), 3);
        let border = ordering.border_range();
        assert_eq!(border.len, 2);
        // Nodes 2 and 3 (the bridge endpoints) are the border nodes.
        let border_nodes: Vec<usize> = border
            .indices()
            .map(|p| ordering.permutation.old_index(p))
            .collect();
        let mut sorted = border_nodes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3]);
        // Interior clusters contain only nodes from one original cluster.
        for cluster_idx in 0..ordering.border_cluster() {
            let range = ordering.clusters[cluster_idx];
            let labels: std::collections::HashSet<usize> = range
                .indices()
                .map(|p| c.label(ordering.permutation.old_index(p)))
                .collect();
            assert_eq!(labels.len(), 1);
        }
    }

    #[test]
    fn interior_nodes_have_no_cross_cluster_edges() {
        let (g, c) = bridged_triangles();
        let ordering = mogul_ordering(&g, &c).unwrap();
        let border_idx = ordering.border_cluster();
        for u in 0..g.num_nodes() {
            if ordering.cluster_of_node(u) == border_idx {
                continue;
            }
            for &(v, _) in g.neighbors(u) {
                let cv = ordering.cluster_of_node(v);
                assert!(
                    cv == ordering.cluster_of_node(u) || cv == border_idx,
                    "interior node {u} has an edge into another interior cluster"
                );
            }
        }
    }

    #[test]
    fn nodes_sorted_by_within_cluster_degree() {
        // A star inside one cluster: the hub has the most within-cluster
        // edges and must come last within its cluster.
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (0, 4, 1.0),
                (1, 2, 1.0),
            ],
        )
        .unwrap();
        let c = Clustering::single_cluster(5);
        let ordering = mogul_ordering(&g, &c).unwrap();
        // Single input cluster with no cross-cluster edges → one interior
        // cluster plus an empty border cluster.
        assert_eq!(ordering.num_clusters(), 2);
        assert!(ordering.border_range().is_empty());
        let interior = ordering.clusters[0];
        let last_node = ordering.permutation.old_index(interior.end() - 1);
        assert_eq!(last_node, 0, "hub must be ordered last");
        let first_node = ordering.permutation.old_index(0);
        assert!(first_node == 3 || first_node == 4, "leaves come first");
    }

    #[test]
    fn cluster_lookup_is_consistent() {
        let (g, c) = bridged_triangles();
        let ordering = mogul_ordering(&g, &c).unwrap();
        for p in 0..ordering.len() {
            let cluster = ordering.cluster_of_permuted(p);
            assert!(ordering.clusters[cluster].contains(p));
            let node = ordering.permutation.old_index(p);
            assert_eq!(ordering.cluster_of_node(node), cluster);
        }
    }

    #[test]
    fn end_to_end_with_modularity_clustering() {
        // Two cliques bridged by one edge; the pipeline should produce at
        // least two interior clusters plus a small border.
        let mut g = Graph::empty(12);
        for base in [0, 6] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        g.add_edge(0, 6, 0.01).unwrap();
        let ordering = mogul_ordering_from_graph(&g, &ModularityConfig::default()).unwrap();
        assert!(ordering.validate());
        assert!(ordering.num_clusters() >= 3);
        assert_eq!(ordering.border_range().len, 2);
    }

    #[test]
    fn identity_and_random_orderings() {
        let id = identity_ordering(5);
        assert!(id.validate());
        assert_eq!(id.num_clusters(), 1);
        assert_eq!(id.border_cluster(), 0);
        assert!(id.permutation.is_identity());

        let rnd = random_ordering(50, 7);
        assert!(rnd.validate());
        assert_eq!(rnd.len(), 50);
        assert!(
            !rnd.permutation.is_identity(),
            "50-element shuffle should move something"
        );
        // Same seed → same permutation; different seed → (almost surely) different.
        assert_eq!(random_ordering(50, 7), random_ordering(50, 7));
        assert_ne!(random_ordering(50, 7), random_ordering(50, 8));
    }

    #[test]
    fn empty_graph_ordering() {
        let g = Graph::empty(0);
        let c = Clustering::from_labels(&[]);
        let ordering = mogul_ordering(&g, &c).unwrap();
        assert!(ordering.is_empty());
        assert_eq!(ordering.num_clusters(), 1);
        assert!(ordering.border_range().is_empty());
    }

    #[test]
    fn mismatched_clustering_is_rejected() {
        let g = Graph::empty(3);
        let c = Clustering::from_labels(&[0, 0]);
        assert!(mogul_ordering(&g, &c).is_err());
    }
}
