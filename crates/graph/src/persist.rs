//! (De)serialization of the graph substrate for the on-disk index format.
//!
//! Two structures from this crate are persisted (see `mogul-core::persist`
//! for the container format): the current adjacency state of a [`Graph`]
//! (needed to resume incremental updates without re-running k-NN
//! construction) and the [`NodeOrdering`] of Algorithm 1 (needed to
//! reconstruct a search index without re-clustering).
//!
//! Both codecs follow the rules of [`mogul_sparse::persist`]: little-endian,
//! length-prefixed, bit-exact for weights, never panicking on short or
//! malformed input, and re-validating through the ordinary constructors
//! ([`Graph::from_edges`], [`mogul_sparse::Permutation::from_new_to_old`]
//! and [`NodeOrdering::validate`]) so a decoded structure satisfies exactly
//! the invariants a freshly built one does.

use crate::graph::Graph;
use crate::ordering::{ClusterRange, NodeOrdering};
use crate::Result;
use mogul_sparse::persist::{
    decode_permutation, encode_permutation, put_f64, put_usize, ByteReader,
};
use mogul_sparse::SparseError;

/// Append a graph as `n` plus its undirected edge list (each edge stored
/// once, `u < v`, weights bit-exact).
pub fn encode_graph(graph: &Graph, out: &mut Vec<u8>) {
    put_usize(out, graph.num_nodes());
    put_usize(out, graph.num_edges());
    for u in 0..graph.num_nodes() {
        for &(v, w) in graph.neighbors(u) {
            if v > u {
                put_usize(out, u);
                put_usize(out, v);
                put_f64(out, w);
            }
        }
    }
}

/// Decode a graph, re-validating every edge through [`Graph::add_edge`]
/// (in-range endpoints, no self-loops, finite positive weights).
///
/// `max_nodes` bounds the declared node count **before** the adjacency
/// table is allocated: isolated nodes carry no payload bytes, so unlike
/// every other count in the codec the node count cannot be validated
/// against the remaining payload — the caller must supply the bound it
/// knows (e.g. the item count from its own metadata).
pub fn decode_graph(reader: &mut ByteReader<'_>, what: &str, max_nodes: usize) -> Result<Graph> {
    let n = reader.take_usize(what)?;
    if n > max_nodes {
        return Err(SparseError::InvalidInput(format!(
            "{what}: graph declares {n} nodes but at most {max_nodes} are expected"
        )));
    }
    let num_edges = reader.take_len(24, what)?;
    let mut graph = Graph::empty(n);
    for _ in 0..num_edges {
        let u = reader.take_usize(what)?;
        let v = reader.take_usize(what)?;
        let w = reader.take_f64(what)?;
        graph.add_edge(u, v, w)?;
    }
    if graph.num_edges() != num_edges {
        return Err(SparseError::InvalidInput(format!(
            "{what}: edge list contains duplicates ({num_edges} declared, {} distinct)",
            graph.num_edges()
        )));
    }
    Ok(graph)
}

/// Append a node ordering (permutation + cluster layout).
pub fn encode_ordering(ordering: &NodeOrdering, out: &mut Vec<u8>) {
    encode_permutation(&ordering.permutation, out);
    put_usize(out, ordering.clusters.len());
    for cluster in &ordering.clusters {
        put_usize(out, cluster.start);
        put_usize(out, cluster.len);
    }
}

/// Decode a node ordering, re-validating that the clusters tile `0..n`
/// contiguously and the permutation is a bijection.
pub fn decode_ordering(reader: &mut ByteReader<'_>, what: &str) -> Result<NodeOrdering> {
    let permutation = decode_permutation(reader, what)?;
    let num_clusters = reader.take_len(16, what)?;
    if num_clusters == 0 && !permutation.is_empty() {
        return Err(SparseError::InvalidInput(format!(
            "{what}: ordering over {} nodes declares zero clusters",
            permutation.len()
        )));
    }
    let mut clusters = Vec::with_capacity(num_clusters);
    for _ in 0..num_clusters {
        let start = reader.take_usize(what)?;
        let len = reader.take_usize(what)?;
        clusters.push(ClusterRange { start, len });
    }
    let ordering = NodeOrdering {
        permutation,
        clusters,
    };
    if !ordering.validate() {
        return Err(SparseError::InvalidInput(format!(
            "{what}: cluster ranges do not tile the permuted index space"
        )));
    }
    Ok(ordering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::modularity::{modularity_clustering, ModularityConfig};
    use crate::ordering::mogul_ordering;

    fn sample_graph() -> Graph {
        let mut g = Graph::empty(9);
        for base in [0usize, 3, 6] {
            g.add_edge(base, base + 1, 1.0).unwrap();
            g.add_edge(base + 1, base + 2, 0.5).unwrap();
            g.add_edge(base, base + 2, 0.25).unwrap();
        }
        g.add_edge(2, 3, 0.0625).unwrap();
        g.add_edge(5, 6, 0.03125).unwrap();
        g
    }

    #[test]
    fn graph_round_trip_is_exact() {
        let g = sample_graph();
        let mut bytes = Vec::new();
        encode_graph(&g, &mut bytes);
        let mut reader = ByteReader::new(&bytes);
        let back = decode_graph(&mut reader, "graph", g.num_nodes()).unwrap();
        reader.finish("graph").unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn isolated_nodes_survive() {
        let mut g = Graph::empty(4);
        g.add_edge(0, 1, 2.0).unwrap();
        let mut bytes = Vec::new();
        encode_graph(&g, &mut bytes);
        let back = decode_graph(&mut ByteReader::new(&bytes), "graph", 4).unwrap();
        assert_eq!(back.num_nodes(), 4);
        assert_eq!(back.degree(3), 0);
    }

    #[test]
    fn ordering_round_trip_is_exact() {
        let g = sample_graph();
        let clustering = modularity_clustering(&g, &ModularityConfig::default());
        let ordering = mogul_ordering(&g, &clustering).unwrap();
        let mut bytes = Vec::new();
        encode_ordering(&ordering, &mut bytes);
        let mut reader = ByteReader::new(&bytes);
        let back = decode_ordering(&mut reader, "ordering").unwrap();
        reader.finish("ordering").unwrap();
        assert_eq!(ordering, back);
    }

    #[test]
    fn truncated_input_errors_for_both_codecs() {
        let g = sample_graph();
        let clustering = modularity_clustering(&g, &ModularityConfig::default());
        let ordering = mogul_ordering(&g, &clustering).unwrap();
        let mut graph_bytes = Vec::new();
        encode_graph(&g, &mut graph_bytes);
        let mut ordering_bytes = Vec::new();
        encode_ordering(&ordering, &mut ordering_bytes);
        for len in 0..graph_bytes.len() {
            assert!(decode_graph(&mut ByteReader::new(&graph_bytes[..len]), "graph", 9).is_err());
        }
        for len in 0..ordering_bytes.len() {
            assert!(
                decode_ordering(&mut ByteReader::new(&ordering_bytes[..len]), "ordering").is_err()
            );
        }
    }

    #[test]
    fn hostile_node_counts_are_rejected_before_allocation() {
        // A declared node count beyond the caller's bound must fail before
        // the adjacency table is allocated.
        let mut bytes = Vec::new();
        put_usize(&mut bytes, 1 << 60);
        put_usize(&mut bytes, 0);
        assert!(decode_graph(&mut ByteReader::new(&bytes), "graph", 1 << 20).is_err());
    }

    #[test]
    fn malformed_clusters_are_rejected() {
        // A valid permutation whose cluster table leaves a gap.
        let perm = crate::ordering::random_ordering(6, 2).permutation;
        let mut bytes = Vec::new();
        encode_permutation(&perm, &mut bytes);
        put_usize(&mut bytes, 2);
        put_usize(&mut bytes, 0); // cluster 0: start 0, len 2
        put_usize(&mut bytes, 2);
        put_usize(&mut bytes, 3); // cluster 1: start 3 (gap!), len 3
        put_usize(&mut bytes, 3);
        assert!(decode_ordering(&mut ByteReader::new(&bytes), "ordering").is_err());
    }
}
