//! Corpus partitioning for the sharded multi-index.
//!
//! A `ShardedIndex` (see `mogul-core::shard`) splits the collection into `S`
//! independent shards, each with its own k-NN graph, ordering and `L D Lᵀ`
//! factorization. The quality of that split decides how well scatter-gather
//! works: manifold ranking mass stays inside a feature-space neighbourhood,
//! so shards should be **cluster-aligned** — a query's neighbourhood should
//! live in one shard, letting the gather phase skip the rest.
//!
//! [`partition_points`] reuses the workspace's k-means machinery
//! ([`crate::clustering::kmeans()`]) to produce exactly `S` deterministic,
//! non-empty groups, then rebalances so every group meets a minimum size
//! (each shard must be able to build a k-NN graph and must never be emptied
//! by removals). The result is **ragged by design**: natural clusters rarely
//! have equal sizes, and the equivalence batteries exercise exactly that.

use crate::clustering::kmeans::{kmeans, KmeansConfig};
use crate::{GraphError, Result};
use mogul_sparse::vector::squared_euclidean_unchecked;

/// Configuration of [`partition_points`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Number of groups (shards) to produce. Must be at least 1.
    pub shards: usize,
    /// Seed of the underlying k-means++ initialization; the partition is a
    /// pure function of `(points, config)`.
    pub seed: u64,
    /// Minimum group size, enforced by the rebalancing pass. Must be at
    /// least 1; the default (2) is the smallest corpus a shard's k-NN graph
    /// construction accepts.
    pub min_group_size: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            shards: 4,
            seed: 42,
            min_group_size: 2,
        }
    }
}

impl PartitionConfig {
    /// Convenience constructor fixing only the shard count.
    pub fn with_shards(shards: usize) -> Self {
        PartitionConfig {
            shards,
            ..PartitionConfig::default()
        }
    }
}

/// Split `points` into exactly `config.shards` cluster-aligned groups of
/// input positions.
///
/// Guarantees, checked by the property tests of the sharded index:
///
/// * the groups are a **partition**: every position `0..points.len()`
///   appears in exactly one group;
/// * every group holds at least `config.min_group_size` positions;
/// * positions inside each group are ascending (so shard-local ordering is
///   the input ordering restricted to the group);
/// * the result is deterministic for fixed inputs.
///
/// Grouping is Lloyd's k-means over the raw feature vectors (`k = shards`);
/// deficient groups are then topped up by moving, from the largest groups,
/// the members closest to the deficient group's centroid — a deterministic
/// repair that terminates after at most `shards · min_group_size` moves.
///
/// Errors ([`GraphError::InvalidInput`]): zero shards, a zero minimum size,
/// fewer than `shards · min_group_size` points, or inconsistent dimensions.
pub fn partition_points(points: &[Vec<f64>], config: &PartitionConfig) -> Result<Vec<Vec<usize>>> {
    if config.shards == 0 {
        return Err(GraphError::InvalidInput(
            "cannot partition into zero shards".into(),
        ));
    }
    if config.min_group_size == 0 {
        return Err(GraphError::InvalidInput(
            "minimum group size must be at least 1".into(),
        ));
    }
    let n = points.len();
    if n < config.shards * config.min_group_size {
        return Err(GraphError::InvalidInput(format!(
            "{n} points cannot fill {} shards of at least {} items each",
            config.shards, config.min_group_size
        )));
    }
    let dim = points[0].len();
    for (i, p) in points.iter().enumerate() {
        if p.len() != dim {
            return Err(GraphError::InvalidInput(format!(
                "point {i} has dimension {} but expected {dim}",
                p.len()
            )));
        }
    }
    if config.shards == 1 {
        return Ok(vec![(0..n).collect()]);
    }

    let result = kmeans(
        points,
        &KmeansConfig {
            k: config.shards,
            seed: config.seed,
            ..KmeansConfig::default()
        },
    )?;
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); config.shards];
    for (pos, &label) in result.clustering.labels().iter().enumerate() {
        groups[label].push(pos);
    }

    // Rebalance: while some group is deficient, move into it the member of
    // the largest surplus group that lies closest to the deficient group's
    // centroid. Each move strictly raises Σ min(|g|, min_group_size), so the
    // loop terminates; ties break to the lower position for determinism.
    while let Some(deficient) = (0..groups.len())
        .filter(|&g| groups[g].len() < config.min_group_size)
        .min_by_key(|&g| (groups[g].len(), g))
    {
        let donor = (0..groups.len())
            .filter(|&g| g != deficient && groups[g].len() > config.min_group_size)
            .max_by_key(|&g| (groups[g].len(), usize::MAX - g))
            .expect("n >= shards * min_group_size guarantees a donor group");
        let centroid = &result.centroids[deficient];
        let take = groups[donor]
            .iter()
            .enumerate()
            .map(|(slot, &pos)| {
                let d2 = if centroid.is_empty() {
                    0.0
                } else {
                    squared_euclidean_unchecked(&points[pos], centroid)
                };
                (d2, pos, slot)
            })
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .expect("donor group is non-empty")
            .2;
        let pos = groups[donor].remove(take);
        groups[deficient].push(pos);
    }

    for group in groups.iter_mut() {
        group.sort_unstable();
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `count` points around each of `centers`, deterministic.
    fn blobs(centers: &[(f64, f64)], count: usize) -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for (c, &(x, y)) in centers.iter().enumerate() {
            for i in 0..count {
                points.push(vec![
                    x + ((i * 31 + c * 7) % 13) as f64 / 26.0,
                    y + ((i * 17 + c * 5) % 11) as f64 / 22.0,
                ]);
            }
        }
        points
    }

    #[test]
    fn groups_form_a_partition_and_respect_min_size() {
        let points = blobs(&[(0.0, 0.0), (40.0, 0.0), (0.0, 40.0)], 9);
        for shards in [1usize, 2, 3, 5, 7] {
            let groups = partition_points(&points, &PartitionConfig::with_shards(shards)).unwrap();
            assert_eq!(groups.len(), shards);
            let mut seen = vec![false; points.len()];
            for group in &groups {
                assert!(group.len() >= 2, "deficient group under {shards} shards");
                assert!(group.windows(2).all(|w| w[0] < w[1]), "unsorted group");
                for &pos in group {
                    assert!(!seen[pos], "position {pos} appears twice");
                    seen[pos] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "positions missing from partition");
        }
    }

    #[test]
    fn well_separated_blobs_map_to_their_own_groups() {
        let points = blobs(&[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)], 8);
        let groups = partition_points(&points, &PartitionConfig::with_shards(4)).unwrap();
        // Each group is exactly one blob (32 points, 4 blobs of 8).
        let mut sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![8, 8, 8, 8]);
        for group in &groups {
            let blob = group[0] / 8;
            assert!(
                group.iter().all(|&p| p / 8 == blob),
                "blob split: {group:?}"
            );
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let points = blobs(&[(0.0, 0.0), (10.0, 3.0)], 12);
        let a = partition_points(&points, &PartitionConfig::with_shards(3)).unwrap();
        let b = partition_points(&points, &PartitionConfig::with_shards(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let points = blobs(&[(0.0, 0.0)], 6);
        assert!(partition_points(&points, &PartitionConfig::with_shards(0)).is_err());
        assert!(partition_points(&points, &PartitionConfig::with_shards(4)).is_err());
        let bad = PartitionConfig {
            min_group_size: 0,
            ..PartitionConfig::with_shards(2)
        };
        assert!(partition_points(&points, &bad).is_err());
        let mut ragged = points.clone();
        ragged[3] = vec![1.0];
        assert!(partition_points(&ragged, &PartitionConfig::with_shards(2)).is_err());
    }
}
