//! Lloyd's k-means over dense feature vectors.
//!
//! Two consumers in the workspace need k-means: the EMR baseline selects its
//! anchor points "from the data points by using the k-means algorithm"
//! (Section 2 of the paper), and spectral clustering clusters the rows of the
//! eigenvector embedding.

use crate::clustering::labels::Clustering;
use crate::{GraphError, Result};
use mogul_sparse::effective_threads;
use mogul_sparse::vector::squared_euclidean_unchecked;

/// Smallest point count worth spawning assignment workers for.
const PAR_MIN_POINTS: usize = 1024;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters / centroids.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iter: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
    /// Seed for the k-means++ style initialization.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig {
            k: 8,
            max_iter: 50,
            tol: 1e-6,
            seed: 42,
        }
    }
}

impl KmeansConfig {
    /// Convenience constructor fixing only `k`.
    pub fn with_k(k: usize) -> Self {
        KmeansConfig {
            k,
            ..KmeansConfig::default()
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Cluster assignment of every point.
    pub clustering: Clustering,
    /// Final centroids (`k × dim`), one per cluster label.
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.max(1).wrapping_mul(0x2545F4914F6CDD1D),
        }
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// k-means++ style initialization: the first centroid is uniform, each later
/// centroid is sampled proportionally to the squared distance from the
/// closest already-chosen centroid.
fn init_centroids(points: &[Vec<f64>], k: usize, rng: &mut XorShift64) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = (rng.next_u64() % n as u64) as usize;
    centroids.push(points[first].clone());
    let mut dist2: Vec<f64> = points
        .iter()
        .map(|p| squared_euclidean_unchecked(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let chosen = if total <= 1e-300 {
            // All points coincide with existing centroids; pick uniformly.
            (rng.next_u64() % n as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if target <= d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.push(points[chosen].clone());
        let new_c = centroids.last().unwrap();
        for (d, p) in dist2.iter_mut().zip(points.iter()) {
            let nd = squared_euclidean_unchecked(p, new_c);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

/// Assign `labels[i]`/`dists[i]` for the contiguous point block starting at
/// `start`: nearest centroid and its squared distance. This is the per-point
/// independent half of a Lloyd iteration, shared by the serial and threaded
/// drivers.
fn assign_block(
    points: &[Vec<f64>],
    centroids: &[Vec<f64>],
    start: usize,
    labels: &mut [usize],
    dists: &mut [f64],
) {
    for (offset, (label, dist)) in labels.iter_mut().zip(dists.iter_mut()).enumerate() {
        let p = &points[start + offset];
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = squared_euclidean_unchecked(p, centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        *label = best;
        *dist = best_d;
    }
}

/// The assignment step over all points, fanned out over `workers` scoped
/// threads on disjoint chunks. Each point's nearest-centroid computation is
/// independent and lands in its own slot, so the parallel split is
/// bit-identical to the serial sweep by construction.
fn assign_all(
    points: &[Vec<f64>],
    centroids: &[Vec<f64>],
    labels: &mut [usize],
    dists: &mut [f64],
    workers: usize,
) {
    let n = points.len();
    if workers <= 1 || n < PAR_MIN_POINTS {
        assign_block(points, centroids, 0, labels, dists);
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (idx, (lbl, dst)) in labels
            .chunks_mut(chunk)
            .zip(dists.chunks_mut(chunk))
            .enumerate()
        {
            scope.spawn(move || assign_block(points, centroids, idx * chunk, lbl, dst));
        }
    });
}

/// Run Lloyd's k-means on a set of points.
///
/// Empty clusters are re-seeded with the point farthest from its centroid so
/// the requested `k` is always realized (as long as `k ≤ n`). Equivalent to
/// [`kmeans_threaded`] with `threads = 0` (one assignment worker per core).
pub fn kmeans(points: &[Vec<f64>], config: &KmeansConfig) -> Result<KmeansResult> {
    kmeans_threaded(points, config, 0)
}

/// [`kmeans`] with an explicit worker count for the assignment step
/// (`0` = one per core, resolved through
/// [`mogul_sparse::effective_threads`]).
///
/// Only the per-point nearest-centroid assignment is parallel; the centroid
/// sums, empty-cluster re-seeding and inertia fold stay serial in point
/// order, so the result is **bit-identical** for every worker count (the
/// determinism suite pins `threads = 1` against `threads = 8` exactly).
pub fn kmeans_threaded(
    points: &[Vec<f64>],
    config: &KmeansConfig,
    threads: usize,
) -> Result<KmeansResult> {
    if points.is_empty() {
        return Err(GraphError::InvalidInput(
            "k-means requires at least one point".into(),
        ));
    }
    let dim = points[0].len();
    if dim == 0 {
        return Err(GraphError::InvalidInput(
            "k-means requires non-empty feature vectors".into(),
        ));
    }
    for (i, p) in points.iter().enumerate() {
        if p.len() != dim {
            return Err(GraphError::InvalidInput(format!(
                "point {i} has dimension {} but expected {dim}",
                p.len()
            )));
        }
        if !p.iter().all(|v| v.is_finite()) {
            return Err(GraphError::InvalidInput(format!(
                "point {i} contains non-finite values"
            )));
        }
    }
    let n = points.len();
    if config.k == 0 {
        return Err(GraphError::InvalidInput("k must be at least 1".into()));
    }
    let k = config.k.min(n);

    let workers = effective_threads(threads).min(n.max(1));

    let mut rng = XorShift64::new(config.seed);
    let mut centroids = init_centroids(points, k, &mut rng);
    let mut labels = vec![0usize; n];
    let mut dists = vec![0.0f64; n];
    let mut iterations = 0usize;

    for iter in 0..config.max_iter.max(1) {
        iterations = iter + 1;
        // Assignment step (the parallel half of the iteration).
        assign_all(points, &centroids, &mut labels, &mut dists, workers);
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[labels[i]] += 1;
            for (s, v) in sums[labels[i]].iter_mut().zip(p.iter()) {
                *s += v;
            }
        }
        // Re-seed empty clusters with the point farthest from its centroid.
        for c in 0..k {
            if counts[c] == 0 {
                let (far_idx, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, squared_euclidean_unchecked(p, &centroids[labels[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .unwrap();
                sums[c] = points[far_idx].clone();
                counts[c] = 1;
                labels[far_idx] = c;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            let mut new_centroid = sums[c].clone();
            for v in new_centroid.iter_mut() {
                *v /= counts[c] as f64;
            }
            movement += squared_euclidean_unchecked(&new_centroid, &centroids[c]).sqrt();
            centroids[c] = new_centroid;
        }
        if movement < config.tol {
            break;
        }
    }

    // Final assignment; the inertia fold stays serial in point order so the
    // f64 sum is independent of the worker count.
    assign_all(points, &centroids, &mut labels, &mut dists, workers);
    let mut inertia = 0.0;
    for &d in &dists {
        inertia += d;
    }

    Ok(KmeansResult {
        clustering: Clustering::from_labels(&labels),
        centroids,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for c in 0..3 {
            let cx = c as f64 * 10.0;
            for i in 0..10 {
                let jitter = (i as f64) * 0.01;
                pts.push(vec![cx + jitter, cx - jitter]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = three_blobs();
        let result = kmeans(&pts, &KmeansConfig::with_k(3)).unwrap();
        assert_eq!(result.clustering.num_clusters(), 3);
        assert_eq!(result.centroids.len(), 3);
        // Points from the same blob share a label.
        for blob in 0..3 {
            let base = blob * 10;
            for i in 1..10 {
                assert!(result.clustering.same_cluster(base, base + i));
            }
        }
        // Blobs are separated.
        assert!(!result.clustering.same_cluster(0, 10));
        assert!(result.inertia < 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = three_blobs();
        let a = kmeans(&pts, &KmeansConfig::with_k(3)).unwrap();
        let b = kmeans(&pts, &KmeansConfig::with_k(3)).unwrap();
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn k_clamped_to_number_of_points() {
        let pts = vec![vec![0.0], vec![1.0]];
        let result = kmeans(&pts, &KmeansConfig::with_k(10)).unwrap();
        assert_eq!(result.centroids.len(), 2);
        assert_eq!(result.clustering.num_clusters(), 2);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts = vec![vec![1.0, 1.0]; 8];
        let result = kmeans(&pts, &KmeansConfig::with_k(3)).unwrap();
        assert!(result.inertia < 1e-12);
        assert!(result.clustering.num_clusters() >= 1);
    }

    #[test]
    fn input_validation() {
        assert!(kmeans(&[], &KmeansConfig::with_k(2)).is_err());
        assert!(kmeans(&[vec![]], &KmeansConfig::with_k(1)).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], &KmeansConfig::with_k(1)).is_err());
        assert!(kmeans(&[vec![f64::NAN]], &KmeansConfig::with_k(1)).is_err());
        assert!(kmeans(
            &[vec![1.0]],
            &KmeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn worker_count_never_changes_a_bit() {
        // Large enough to cross PAR_MIN_POINTS so the threaded arm really
        // fans out; the serial run must match it bit for bit (labels,
        // centroids and the inertia fold).
        let mut rng = XorShift64::new(7);
        let points: Vec<Vec<f64>> = (0..1200)
            .map(|i| {
                let cx = (i % 5) as f64 * 8.0;
                vec![cx + rng.next_f64(), cx - rng.next_f64(), rng.next_f64()]
            })
            .collect();
        let config = KmeansConfig::with_k(16);
        let serial = kmeans_threaded(&points, &config, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = kmeans_threaded(&points, &config, threads).unwrap();
            assert_eq!(serial.clustering, parallel.clustering, "{threads} threads");
            assert_eq!(serial.centroids, parallel.centroids, "{threads} threads");
            assert_eq!(
                serial.inertia.to_bits(),
                parallel.inertia.to_bits(),
                "{threads} threads"
            );
            assert_eq!(serial.iterations, parallel.iterations);
        }
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let result = kmeans(&pts, &KmeansConfig::with_k(1)).unwrap();
        assert!((result.centroids[0][0] - 1.0).abs() < 1e-9);
        assert!((result.centroids[0][1] - 2.0).abs() < 1e-9);
    }
}
