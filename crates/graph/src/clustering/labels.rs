//! Cluster assignments.

use crate::{GraphError, Result};

/// A partition of `n` items into clusters, stored as one label per item.
///
/// Labels are always contiguous (`0..num_clusters`); constructors renumber
/// arbitrary label sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    labels: Vec<usize>,
    num_clusters: usize,
}

impl Clustering {
    /// Build from raw labels, renumbering them to be contiguous from zero
    /// (in order of first appearance).
    pub fn from_labels(raw: &[usize]) -> Self {
        let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for &l in raw {
            let next = remap.len();
            let id = *remap.entry(l).or_insert(next);
            labels.push(id);
        }
        Clustering {
            labels,
            num_clusters: remap.len(),
        }
    }

    /// The trivial clustering that puts every item in a single cluster.
    pub fn single_cluster(n: usize) -> Self {
        Clustering {
            labels: vec![0; n],
            num_clusters: if n == 0 { 0 } else { 1 },
        }
    }

    /// The discrete clustering that puts every item in its own cluster.
    pub fn singletons(n: usize) -> Self {
        Clustering {
            labels: (0..n).collect(),
            num_clusters: n,
        }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the clustering covers zero items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Cluster label of item `i`.
    #[inline]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Size of each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Members of each cluster, in ascending item order.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.num_clusters];
        for (i, &l) in self.labels.iter().enumerate() {
            members[l].push(i);
        }
        members
    }

    /// `true` when items `a` and `b` share a cluster.
    pub fn same_cluster(&self, a: usize, b: usize) -> bool {
        self.labels[a] == self.labels[b]
    }

    /// Validate that the clustering covers exactly `n` items.
    pub fn check_len(&self, n: usize) -> Result<()> {
        if self.len() != n {
            return Err(GraphError::InvalidInput(format!(
                "clustering covers {} items but {} were expected",
                self.len(),
                n
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumbering_is_contiguous() {
        let c = Clustering::from_labels(&[7, 3, 7, 9, 3]);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.labels(), &[0, 1, 0, 2, 1]);
        assert_eq!(c.sizes(), vec![2, 2, 1]);
        assert!(c.same_cluster(0, 2));
        assert!(!c.same_cluster(0, 1));
    }

    #[test]
    fn members_lists_are_sorted() {
        let c = Clustering::from_labels(&[1, 0, 1, 0]);
        let members = c.members();
        assert_eq!(members[0], vec![0, 2]);
        assert_eq!(members[1], vec![1, 3]);
    }

    #[test]
    fn trivial_clusterings() {
        let single = Clustering::single_cluster(4);
        assert_eq!(single.num_clusters(), 1);
        assert_eq!(single.sizes(), vec![4]);
        let singles = Clustering::singletons(3);
        assert_eq!(singles.num_clusters(), 3);
        assert_eq!(singles.sizes(), vec![1, 1, 1]);
        let empty = Clustering::single_cluster(0);
        assert_eq!(empty.num_clusters(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn length_validation() {
        let c = Clustering::from_labels(&[0, 1]);
        assert!(c.check_len(2).is_ok());
        assert!(c.check_len(3).is_err());
    }
}
