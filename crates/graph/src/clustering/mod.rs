//! Graph and vector clustering algorithms.
//!
//! * [`labels`] — the [`Clustering`] assignment type shared by every
//!   algorithm.
//! * [`modularity`] — incremental-aggregation modularity clustering
//!   (Louvain-style). This plays the role of the Shiokawa et al. \[17\]
//!   clustering the paper uses inside Algorithm 1: linear-time, maximizes
//!   within-cluster edges, and chooses the number of clusters automatically.
//! * [`mod@kmeans`] — Lloyd's k-means over feature vectors; used for EMR's
//!   anchor points and by spectral clustering.
//! * [`spectral`] — normalized spectral clustering; used by the FMR baseline
//!   to partition the adjacency matrix into blocks.
//! * [`partition`] — cluster-aligned corpus partitioning for the sharded
//!   multi-index (`mogul-core::shard`).

pub mod kmeans;
pub mod labels;
pub mod modularity;
pub mod partition;
pub mod spectral;

pub use kmeans::{kmeans, kmeans_threaded, KmeansConfig, KmeansResult};
pub use labels::Clustering;
pub use modularity::{
    modularity_clustering, modularity_clustering_threaded, modularity_score, ModularityConfig,
};
pub use partition::{partition_points, PartitionConfig};
pub use spectral::{spectral_clustering, SpectralConfig};
