//! Normalized spectral clustering.
//!
//! The FMR baseline (He et al. \[8\] in the paper) partitions the k-NN graph
//! with spectral clustering before applying a per-block low-rank
//! approximation. The classic normalized-cut pipeline is implemented here:
//! embed the nodes with the leading eigenvectors of the symmetrically
//! normalized adjacency `D^{-1/2} A D^{-1/2}` (computed with the Lanczos
//! solver from `mogul-sparse`), row-normalize the embedding, then run
//! k-means on the embedded points.

use crate::adjacency::symmetric_normalization;
use crate::clustering::kmeans::{kmeans, KmeansConfig};
use crate::clustering::labels::Clustering;
use crate::graph::Graph;
use crate::{GraphError, Result};
use mogul_sparse::eigen::lanczos_largest;

/// Configuration for [`spectral_clustering`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralConfig {
    /// Number of clusters (and of embedding dimensions).
    pub num_clusters: usize,
    /// Seed for the Lanczos start vector and the k-means initialization.
    pub seed: u64,
    /// Maximum Lloyd iterations of the embedded k-means.
    pub kmeans_max_iter: usize,
}

impl SpectralConfig {
    /// Convenience constructor fixing only the number of clusters.
    pub fn with_clusters(num_clusters: usize) -> Self {
        SpectralConfig {
            num_clusters,
            seed: 42,
            kmeans_max_iter: 50,
        }
    }
}

/// Spectral clustering of a weighted undirected graph into
/// `config.num_clusters` groups.
pub fn spectral_clustering(graph: &Graph, config: &SpectralConfig) -> Result<Clustering> {
    let n = graph.num_nodes();
    if config.num_clusters == 0 {
        return Err(GraphError::InvalidInput(
            "spectral clustering requires at least one cluster".into(),
        ));
    }
    if n == 0 {
        return Ok(Clustering::from_labels(&[]));
    }
    let k = config.num_clusters.min(n);
    if k == 1 {
        return Ok(Clustering::single_cluster(n));
    }
    if graph.num_edges() == 0 {
        // No structure to exploit: fall back to singletons capped at k via
        // round-robin so the requested cluster count is respected.
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        return Ok(Clustering::from_labels(&labels));
    }

    let adjacency = graph.adjacency_matrix();
    let s = symmetric_normalization(&adjacency)?;
    let subspace = (2 * k + 20).min(n);
    let pairs = lanczos_largest(&s, k, subspace, config.seed)?;
    let found = pairs.len().max(1);

    // Connected components: each component contributes a degenerate unit
    // eigenvalue that a single-start Lanczos iteration cannot separate, so
    // the component id is appended to the embedding explicitly. This keeps
    // disconnected graphs cleanly partitioned along component boundaries.
    let components = graph.connected_components();
    let num_components = components.iter().copied().max().map_or(0, |m| m + 1);

    // Row-normalized spectral embedding (+ component indicator).
    let mut embedding: Vec<Vec<f64>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<f64> = (0..found).map(|j| pairs.vectors.get(i, j)).collect();
        mogul_sparse::vector::normalize(&mut row);
        if num_components > 1 {
            let mut indicator = vec![0.0; num_components];
            // Weight the indicator strongly so k-means never merges across
            // components while components outnumber the requested clusters.
            indicator[components[i]] = 2.0;
            row.extend(indicator);
        }
        embedding.push(row);
    }

    let km = kmeans(
        &embedding,
        &KmeansConfig {
            k,
            max_iter: config.kmeans_max_iter,
            tol: 1e-7,
            seed: config.seed,
        },
    )?;
    Ok(km.clustering)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques_graph() -> Graph {
        let size = 6;
        let mut g = Graph::empty(2 * size);
        for base in [0, size] {
            for i in 0..size {
                for j in (i + 1)..size {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        g.add_edge(0, size, 0.01).unwrap();
        g
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques_graph();
        let clustering = spectral_clustering(&g, &SpectralConfig::with_clusters(2)).unwrap();
        assert_eq!(clustering.num_clusters(), 2);
        for i in 1..6 {
            assert!(clustering.same_cluster(0, i));
            assert!(clustering.same_cluster(6, 6 + i));
        }
        assert!(!clustering.same_cluster(0, 6));
    }

    #[test]
    fn single_cluster_and_empty_graph() {
        let g = two_cliques_graph();
        let one = spectral_clustering(&g, &SpectralConfig::with_clusters(1)).unwrap();
        assert_eq!(one.num_clusters(), 1);
        let empty = Graph::empty(0);
        let c = spectral_clustering(&empty, &SpectralConfig::with_clusters(3)).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn edgeless_graph_still_returns_k_clusters() {
        let g = Graph::empty(7);
        let c = spectral_clustering(&g, &SpectralConfig::with_clusters(3)).unwrap();
        assert_eq!(c.len(), 7);
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    fn rejects_zero_clusters() {
        let g = two_cliques_graph();
        assert!(spectral_clustering(&g, &SpectralConfig::with_clusters(0)).is_err());
    }

    #[test]
    fn cluster_count_clamped_to_nodes() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let c = spectral_clustering(&g, &SpectralConfig::with_clusters(10)).unwrap();
        assert!(c.num_clusters() <= 3);
        assert_eq!(c.len(), 3);
    }
}
