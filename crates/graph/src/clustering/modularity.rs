//! Modularity-based graph clustering (incremental aggregation).
//!
//! Algorithm 1 of the paper divides the k-NN graph "by the state-of-the-art
//! clustering approach by Shiokawa et al. \[17\]", whose defining properties —
//! the only ones the paper relies on — are: (1) it maximizes modularity by
//! incrementally aggregating nodes, so within-cluster edges dominate, (2) it
//! runs in time linear in the number of edges, and (3) the number of clusters
//! is chosen automatically. The classic Louvain procedure implemented here
//! (greedy local moving + graph aggregation) has exactly those properties; the
//! substitution is documented in `DESIGN.md`.

use crate::clustering::labels::Clustering;
use crate::graph::Graph;

/// Smallest level size worth fanning the degree precomputation out for.
const PAR_MIN_NODES: usize = 1024;

/// Configuration of the modularity clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModularityConfig {
    /// Maximum number of aggregation levels (each level is one local-moving
    /// pass followed by a graph contraction).
    pub max_levels: usize,
    /// Maximum number of sweeps over all nodes within one local-moving pass.
    pub max_sweeps: usize,
    /// Minimum total modularity gain per level required to continue.
    pub min_gain: f64,
}

impl Default for ModularityConfig {
    fn default() -> Self {
        ModularityConfig {
            max_levels: 12,
            max_sweeps: 16,
            min_gain: 1e-7,
        }
    }
}

/// Modularity `Q` of a clustering of a weighted graph.
///
/// `Q = Σ_c [ Σ_in(c) / 2m − (Σ_tot(c) / 2m)² ]` where `Σ_in(c)` is twice the
/// weight of intra-cluster edges, `Σ_tot(c)` the summed weighted degree of
/// the cluster and `m` the total edge weight.
pub fn modularity_score(graph: &Graph, clustering: &Clustering) -> f64 {
    let m = graph.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let two_m = 2.0 * m;
    let k = clustering.num_clusters();
    let mut sigma_in = vec![0.0; k];
    let mut sigma_tot = vec![0.0; k];
    for u in 0..graph.num_nodes() {
        let cu = clustering.label(u);
        sigma_tot[cu] += graph.weighted_degree(u);
        for &(v, w) in graph.neighbors(u) {
            if clustering.label(v) == cu {
                sigma_in[cu] += w; // each intra edge counted twice overall
            }
        }
    }
    (0..k)
        .map(|c| sigma_in[c] / two_m - (sigma_tot[c] / two_m).powi(2))
        .sum()
}

/// Weighted graph in contracted (community) space used between levels.
struct LevelGraph {
    /// Adjacency lists including self-loops (`(neighbor, weight)`).
    adj: Vec<Vec<(usize, f64)>>,
    /// Self-loop weight per node (intra-community weight folded during
    /// contraction).
    self_loops: Vec<f64>,
    total_weight: f64,
}

impl LevelGraph {
    fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut adj = Vec::with_capacity(n);
        for u in 0..n {
            adj.push(graph.neighbors(u).to_vec());
        }
        LevelGraph {
            adj,
            self_loops: vec![0.0; n],
            total_weight: graph.total_weight(),
        }
    }

    fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    fn weighted_degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum::<f64>() + self.self_loops[u]
    }

    /// All weighted degrees, fanned out over `workers` scoped threads on
    /// disjoint chunks. Each node's degree is a sum over its own adjacency
    /// list written to its own slot, so the split is bit-identical to the
    /// serial sweep for every worker count.
    fn weighted_degrees(&self, workers: usize) -> Vec<f64> {
        let n = self.num_nodes();
        let mut degrees = vec![0.0f64; n];
        if workers <= 1 || n < PAR_MIN_NODES {
            for (u, d) in degrees.iter_mut().enumerate() {
                *d = self.weighted_degree(u);
            }
            return degrees;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for (idx, slot) in degrees.chunks_mut(chunk).enumerate() {
                let start = idx * chunk;
                scope.spawn(move || {
                    for (offset, d) in slot.iter_mut().enumerate() {
                        *d = self.weighted_degree(start + offset);
                    }
                });
            }
        });
        degrees
    }

    /// One full Louvain local-moving pass. The moving itself is inherently
    /// sequential — each move reads the community state left by every
    /// earlier move, which is what makes Louvain converge — so only the
    /// per-node degree precomputation fans out across workers.
    fn local_moving(&self, config: &ModularityConfig, workers: usize) -> (Vec<usize>, f64) {
        let n = self.num_nodes();
        let two_m = 2.0 * self.total_weight;
        let mut community: Vec<usize> = (0..n).collect();
        let degrees = self.weighted_degrees(workers);
        let mut sigma_tot: Vec<f64> = degrees.clone();
        let mut total_gain = 0.0;
        if two_m <= 0.0 {
            return (community, 0.0);
        }

        let mut neighbor_weights: std::collections::HashMap<usize, f64> =
            std::collections::HashMap::new();
        let mut candidates: Vec<(usize, f64)> = Vec::new();
        for _ in 0..config.max_sweeps {
            let mut moved = false;
            for u in 0..n {
                let cu = community[u];
                // Weights from u to each neighbouring community.
                neighbor_weights.clear();
                for &(v, w) in &self.adj[u] {
                    if v == u {
                        continue;
                    }
                    *neighbor_weights.entry(community[v]).or_insert(0.0) += w;
                }
                // Temporarily remove u from its community.
                sigma_tot[cu] -= degrees[u];
                let w_to_own = neighbor_weights.get(&cu).copied().unwrap_or(0.0);

                // Gain of joining community c: k_{u,c} − Σ_tot(c)·k_u / 2m
                // (constant terms dropped; removal cost handled via w_to_own).
                // The tie-breaking epsilon is relative to the node's weighted
                // degree so that graphs with very small absolute edge weights
                // (e.g. heat-kernel weights of far-apart points) still move.
                // Candidates are scanned in ascending community order: the
                // HashMap's iteration order is randomized per instance, and
                // letting it pick among near-ties would make the clustering
                // differ from run to run (and process to process).
                let epsilon = 1e-12 * degrees[u].max(f64::MIN_POSITIVE);
                let mut best_community = cu;
                let mut best_gain = w_to_own - sigma_tot[cu] * degrees[u] / two_m;
                candidates.clear();
                candidates.extend(neighbor_weights.iter().map(|(&c, &w)| (c, w)));
                candidates.sort_unstable_by_key(|&(c, _)| c);
                for &(c, w_uc) in &candidates {
                    if c == cu {
                        continue;
                    }
                    let gain = w_uc - sigma_tot[c] * degrees[u] / two_m;
                    if gain > best_gain + epsilon {
                        best_gain = gain;
                        best_community = c;
                    }
                }
                sigma_tot[best_community] += degrees[u];
                if best_community != cu {
                    let old_gain = w_to_own - sigma_tot[cu] * degrees[u] / two_m;
                    total_gain += (best_gain - old_gain) / self.total_weight.max(1e-300);
                    community[u] = best_community;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        (community, total_gain)
    }

    /// Contract communities into super-nodes.
    fn aggregate(&self, community: &[usize]) -> (LevelGraph, Vec<usize>) {
        // Renumber communities contiguously.
        let clustering = Clustering::from_labels(community);
        let k = clustering.num_clusters();
        let mut adj_maps: Vec<std::collections::HashMap<usize, f64>> =
            vec![std::collections::HashMap::new(); k];
        let mut self_loops = vec![0.0; k];
        for u in 0..self.num_nodes() {
            let cu = clustering.label(u);
            self_loops[cu] += self.self_loops[u];
            for &(v, w) in &self.adj[u] {
                let cv = clustering.label(v);
                if cu == cv {
                    // Each undirected intra edge visited twice; fold half each time.
                    self_loops[cu] += w / 2.0;
                } else {
                    *adj_maps[cu].entry(cv).or_insert(0.0) += w;
                }
            }
        }
        let adj: Vec<Vec<(usize, f64)>> = adj_maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(usize, f64)> = m.into_iter().collect();
                v.sort_unstable_by_key(|&(id, _)| id);
                v
            })
            .collect();
        (
            LevelGraph {
                adj,
                self_loops,
                total_weight: self.total_weight,
            },
            clustering.labels().to_vec(),
        )
    }
}

/// Modularity clustering of a weighted undirected graph.
///
/// Returns a [`Clustering`] over the graph's nodes; the number of clusters is
/// determined automatically (nodes of disconnected components never merge).
/// Equivalent to [`modularity_clustering_threaded`] with `threads = 0`.
pub fn modularity_clustering(graph: &Graph, config: &ModularityConfig) -> Clustering {
    modularity_clustering_threaded(graph, config, 0)
}

/// [`modularity_clustering`] with an explicit worker count (`0` = one per
/// core, resolved through
/// [`effective_threads`](mogul_sparse::effective_threads)).
///
/// Louvain's local-moving sweep is inherently sequential (each move depends
/// on all earlier moves), so only the per-level degree precomputation is
/// parallel — results are **bit-identical** for every worker count.
pub fn modularity_clustering_threaded(
    graph: &Graph,
    config: &ModularityConfig,
    threads: usize,
) -> Clustering {
    let workers = mogul_sparse::effective_threads(threads);
    let n = graph.num_nodes();
    if n == 0 {
        return Clustering::from_labels(&[]);
    }
    if graph.num_edges() == 0 {
        return Clustering::singletons(n);
    }

    // node → current community in the original index space
    let mut assignment: Vec<usize> = (0..n).collect();
    let mut level = LevelGraph::from_graph(graph);

    for _ in 0..config.max_levels {
        let (community, gain) = level.local_moving(config, workers);
        let changed = community.iter().enumerate().any(|(i, &c)| c != i);
        if !changed {
            break;
        }
        let (next_level, renumbered) = level.aggregate(&community);
        // Re-map the original assignment through this level's communities.
        for a in assignment.iter_mut() {
            *a = renumbered[*a];
        }
        let converged = next_level.num_nodes() == level.num_nodes() || gain < config.min_gain;
        level = next_level;
        if converged {
            break;
        }
    }
    Clustering::from_labels(&assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated cliques joined by a single weak edge.
    fn two_cliques(size: usize) -> Graph {
        let n = 2 * size;
        let mut g = Graph::empty(n);
        for base in [0, size] {
            for i in 0..size {
                for j in (i + 1)..size {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        g.add_edge(0, size, 0.01).unwrap();
        g
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques(6);
        let clustering = modularity_clustering(&g, &ModularityConfig::default());
        assert_eq!(clustering.num_clusters(), 2);
        for i in 0..6 {
            assert!(clustering.same_cluster(0, i));
            assert!(clustering.same_cluster(6, 6 + i));
        }
        assert!(!clustering.same_cluster(0, 6));
    }

    #[test]
    fn modularity_of_good_clustering_beats_trivial() {
        let g = two_cliques(5);
        let good = modularity_clustering(&g, &ModularityConfig::default());
        let single = Clustering::single_cluster(g.num_nodes());
        let singles = Clustering::singletons(g.num_nodes());
        let q_good = modularity_score(&g, &good);
        let q_single = modularity_score(&g, &single);
        let q_singles = modularity_score(&g, &singles);
        assert!(q_good > q_single);
        assert!(q_good > q_singles);
        assert!(q_good > 0.3, "expected strong modularity, got {q_good}");
    }

    #[test]
    fn worker_count_never_changes_the_clustering() {
        // 1280 nodes (256 cliques of 5 in a ring) crosses PAR_MIN_NODES, so
        // the threaded degree precomputation really fans out; every worker
        // count must produce the identical clustering.
        let clique = 5usize;
        let groups = 256usize;
        let n = clique * groups;
        let mut g = Graph::empty(n);
        for c in 0..groups {
            let base = c * clique;
            for i in 0..clique {
                for j in (i + 1)..clique {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
            let b = ((c + 1) % groups) * clique + 1;
            g.add_edge(base, b, 0.05).unwrap();
        }
        let config = ModularityConfig::default();
        let serial = modularity_clustering_threaded(&g, &config, 1);
        for threads in [2usize, 8] {
            let parallel = modularity_clustering_threaded(&g, &config, threads);
            assert_eq!(serial, parallel, "{threads} threads");
        }
    }

    #[test]
    fn ring_of_cliques_finds_all_groups() {
        // Four cliques of 5 nodes connected in a ring by single edges.
        let clique = 5usize;
        let groups = 4usize;
        let n = clique * groups;
        let mut g = Graph::empty(n);
        for c in 0..groups {
            let base = c * clique;
            for i in 0..clique {
                for j in (i + 1)..clique {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        for c in 0..groups {
            let a = c * clique;
            let b = ((c + 1) % groups) * clique + 1;
            g.add_edge(a, b, 0.05).unwrap();
        }
        let clustering = modularity_clustering(&g, &ModularityConfig::default());
        assert_eq!(clustering.num_clusters(), groups);
        // Every clique is pure.
        for c in 0..groups {
            let base = c * clique;
            for i in 1..clique {
                assert!(clustering.same_cluster(base, base + i));
            }
        }
    }

    #[test]
    fn disconnected_components_stay_separate() {
        let mut g = Graph::empty(6);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        g.add_edge(4, 5, 1.0).unwrap();
        let clustering = modularity_clustering(&g, &ModularityConfig::default());
        assert!(clustering.num_clusters() >= 2);
        assert!(!clustering.same_cluster(0, 3));
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Graph::empty(0);
        assert_eq!(
            modularity_clustering(&empty, &ModularityConfig::default()).num_clusters(),
            0
        );
        let edgeless = Graph::empty(4);
        let c = modularity_clustering(&edgeless, &ModularityConfig::default());
        assert_eq!(c.num_clusters(), 4);
        assert_eq!(modularity_score(&edgeless, &c), 0.0);
        let pair = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let c = modularity_clustering(&pair, &ModularityConfig::default());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn modularity_score_range() {
        let g = two_cliques(4);
        let c = modularity_clustering(&g, &ModularityConfig::default());
        let q = modularity_score(&g, &c);
        assert!(q > -1.0 && q <= 1.0);
    }
}
