//! Adjacency matrix, degree vector and the normalized system matrix.
//!
//! The ranking scores of Manifold Ranking are the solution of
//! `(I − α C^{-1/2} A C^{-1/2}) x = (1 − α) q` (Equation (2) of the paper).
//! This module builds the three ingredients of that system from a [`Graph`]:
//! the adjacency matrix `A`, the degree matrix `C` (as a vector), the
//! symmetric normalization `S = C^{-1/2} A C^{-1/2}`, and `W = I − α S`.

use crate::graph::Graph;
use crate::{GraphError, Result};
use mogul_sparse::CsrMatrix;

/// Degree vector `C_ii = Σ_j A_ij` of an adjacency matrix.
pub fn degree_vector(adjacency: &CsrMatrix) -> Vec<f64> {
    adjacency.row_sums()
}

/// Symmetric normalization `S = C^{-1/2} A C^{-1/2}`.
///
/// Isolated nodes (zero degree) get a zero row/column, matching the paper's
/// convention that such nodes simply never receive score mass.
pub fn symmetric_normalization(adjacency: &CsrMatrix) -> Result<CsrMatrix> {
    if adjacency.nrows() != adjacency.ncols() {
        return Err(GraphError::NotSquare {
            nrows: adjacency.nrows(),
            ncols: adjacency.ncols(),
        });
    }
    let degrees = degree_vector(adjacency);
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    adjacency.scale_rows_cols(&inv_sqrt, &inv_sqrt)
}

/// The ranking system matrix `W = I − α S` with `S = C^{-1/2} A C^{-1/2}`.
///
/// Requires `0 < α < 1` (the paper uses `α = 0.99`); this guarantees `W` is
/// symmetric positive definite, which the Cholesky-style factorizations rely
/// on.
pub fn ranking_system_matrix(adjacency: &CsrMatrix, alpha: f64) -> Result<CsrMatrix> {
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(GraphError::InvalidInput(format!(
            "alpha must lie strictly between 0 and 1, got {alpha}"
        )));
    }
    let s = symmetric_normalization(adjacency)?;
    let identity = CsrMatrix::identity(adjacency.nrows());
    identity.add_scaled(-alpha, &s)
}

/// Convenience: build `A`, `C` and `W` directly from a graph.
pub fn ranking_system_from_graph(
    graph: &Graph,
    alpha: f64,
) -> Result<(CsrMatrix, Vec<f64>, CsrMatrix)> {
    let adjacency = graph.adjacency_matrix();
    let degrees = degree_vector(&adjacency);
    let w = ranking_system_matrix(&adjacency, alpha)?;
    Ok((adjacency, degrees, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogul_sparse::eigen::{lanczos_largest, LinearOperator};

    fn ring_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn degree_vector_matches_row_sums() {
        let g = ring_graph(5);
        let a = g.adjacency_matrix();
        let d = degree_vector(&a);
        assert_eq!(d, vec![2.0; 5]);
    }

    #[test]
    fn normalization_is_symmetric_with_unit_spectral_radius() {
        let g = ring_graph(8);
        let a = g.adjacency_matrix();
        let s = symmetric_normalization(&a).unwrap();
        assert!(s.is_symmetric(1e-12));
        // For a connected graph the largest eigenvalue of S is exactly 1.
        let pairs = lanczos_largest(&s, 1, 8, 3).unwrap();
        assert!((pairs.values[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn isolated_nodes_get_zero_rows() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1, 2.0).unwrap();
        let a = g.adjacency_matrix();
        let s = symmetric_normalization(&a).unwrap();
        assert_eq!(s.row(2).0.len(), 0);
        // Normalized weight between 0 and 1: 2 / sqrt(2*2) = 1.
        assert!((s.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn system_matrix_is_spd_for_valid_alpha() {
        let g = ring_graph(6);
        let a = g.adjacency_matrix();
        let w = ranking_system_matrix(&a, 0.99).unwrap();
        assert!(w.is_symmetric(1e-12));
        assert_eq!(w.get(0, 0), 1.0);
        // Positive definiteness: complete LDLᵀ succeeds with positive pivots.
        let f = mogul_sparse::complete_ldl(&w).unwrap();
        assert!(f.factors.d.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn system_matrix_validates_alpha() {
        let a = ring_graph(4).adjacency_matrix();
        assert!(ranking_system_matrix(&a, 0.0).is_err());
        assert!(ranking_system_matrix(&a, 1.0).is_err());
        assert!(ranking_system_matrix(&a, -0.5).is_err());
        assert!(ranking_system_matrix(&a, 1.5).is_err());
    }

    #[test]
    fn normalization_rejects_rectangular() {
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(symmetric_normalization(&rect).is_err());
    }

    #[test]
    fn convenience_builder_is_consistent() {
        let g = ring_graph(7);
        let (a, c, w) = ranking_system_from_graph(&g, 0.9).unwrap();
        assert_eq!(a.nrows(), 7);
        assert_eq!(c.len(), 7);
        assert_eq!(w.nrows(), 7);
        let w_direct = ranking_system_matrix(&a, 0.9).unwrap();
        assert_eq!(w, w_direct);
        // Verifies the LinearOperator impl is usable on the produced matrix.
        assert_eq!(LinearOperator::dim(&w), 7);
    }
}
