//! k-nearest-neighbour graph construction.
//!
//! Manifold Ranking models the image database as a k-NN graph: every image is
//! a node, and two nodes share an undirected edge when one is among the k
//! nearest neighbours of the other; the edge weight is the heat kernel
//! `A_ij = exp(−d²(u_i, u_j) / 2σ²)` (Section 3 of the paper, k is typically
//! 5–20).
//!
//! Two construction paths are provided:
//!
//! * [`exact_knn_indices`] — threaded brute-force search (exact, `O(n² m)`),
//!   the reference used for small and medium datasets.
//! * [`approximate_knn_indices`] — partition-based approximate search that
//!   only scans a few nearby partitions per query, for the larger synthetic
//!   datasets (the paper's INRIA-scale regime).

use crate::graph::Graph;
use crate::{GraphError, Result};
use std::cmp::Ordering;

/// How edge weights are derived from distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeWeighting {
    /// Heat kernel `exp(−d² / 2σ²)`; `sigma = None` estimates σ as the
    /// standard deviation of all k-NN distances (the paper's convention of
    /// using "the standard variation of the function scores").
    HeatKernel {
        /// Kernel bandwidth; `None` → estimated from the data.
        sigma: Option<f64>,
    },
    /// Every edge gets weight 1.
    Binary,
    /// `1 / (d + ε)` weights.
    InverseDistance,
}

/// Configuration for k-NN graph construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnConfig {
    /// Number of nearest neighbours per node (the paper uses 5).
    pub k: usize,
    /// Edge weighting scheme.
    pub weighting: EdgeWeighting,
    /// Number of worker threads for the brute-force search (0 → all cores).
    pub threads: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            k: 5,
            weighting: EdgeWeighting::HeatKernel { sigma: None },
            threads: 0,
        }
    }
}

impl KnnConfig {
    /// Convenience constructor with the paper's defaults and a given `k`.
    pub fn with_k(k: usize) -> Self {
        KnnConfig {
            k,
            ..KnnConfig::default()
        }
    }
}

fn validate_features(features: &[Vec<f64>]) -> Result<usize> {
    if features.is_empty() {
        return Err(GraphError::InvalidInput(
            "cannot build a k-NN graph over zero points".into(),
        ));
    }
    let dim = features[0].len();
    if dim == 0 {
        return Err(GraphError::InvalidInput(
            "feature vectors must have at least one dimension".into(),
        ));
    }
    for (i, f) in features.iter().enumerate() {
        if f.len() != dim {
            return Err(GraphError::InvalidInput(format!(
                "feature vector {i} has dimension {} but expected {dim}",
                f.len()
            )));
        }
        if !f.iter().all(|v| v.is_finite()) {
            return Err(GraphError::InvalidInput(format!(
                "feature vector {i} contains non-finite values"
            )));
        }
    }
    Ok(dim)
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    distance: f64,
    index: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order on finite distances; ties broken by index.
        self.distance
            .partial_cmp(&other.distance)
            .unwrap_or(Ordering::Equal)
            .then(self.index.cmp(&other.index))
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    mogul_sparse::vector::squared_euclidean_unchecked(a, b)
}

/// k nearest neighbours of a single query among `features`, excluding
/// `exclude` (set to `usize::MAX` to exclude nothing). Returns `(index,
/// distance)` pairs sorted by ascending distance.
pub fn nearest_neighbors(
    features: &[Vec<f64>],
    query: &[f64],
    k: usize,
    exclude: usize,
) -> Vec<(usize, f64)> {
    // Max-heap of the k closest candidates seen so far.
    let mut heap: std::collections::BinaryHeap<Candidate> = std::collections::BinaryHeap::new();
    for (j, f) in features.iter().enumerate() {
        if j == exclude {
            continue;
        }
        let d2 = squared_distance(query, f);
        let cand = Candidate {
            distance: d2,
            index: j,
        };
        if heap.len() < k {
            heap.push(cand);
        } else if let Some(worst) = heap.peek() {
            if cand < *worst {
                heap.pop();
                heap.push(cand);
            }
        }
    }
    let mut out: Vec<(usize, f64)> = heap
        .into_iter()
        .map(|c| (c.index, c.distance.sqrt()))
        .collect();
    out.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    out
}

/// Exact k-NN lists for every point (brute force, threaded with scoped
/// threads). Entry `i` holds the `k` nearest other points of point `i` as
/// `(index, distance)` pairs sorted by ascending distance.
pub fn exact_knn_indices(
    features: &[Vec<f64>],
    k: usize,
    threads: usize,
) -> Result<Vec<Vec<(usize, f64)>>> {
    validate_features(features)?;
    let n = features.len();
    if k == 0 {
        return Err(GraphError::InvalidInput("k must be at least 1".into()));
    }
    let k = k.min(n.saturating_sub(1));
    let worker_count = mogul_sparse::effective_threads(threads).min(n.max(1));

    let mut results: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    if k == 0 {
        return Ok(results);
    }
    let chunk = n.div_ceil(worker_count);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_idx, slot) in results.chunks_mut(chunk).enumerate() {
            let start = chunk_idx * chunk;
            handles.push(scope.spawn(move || {
                for (offset, out) in slot.iter_mut().enumerate() {
                    let i = start + offset;
                    *out = nearest_neighbors(features, &features[i], k, i);
                }
            }));
        }
        for h in handles {
            h.join().expect("knn worker thread panicked");
        }
    });
    Ok(results)
}

/// Approximate k-NN lists using random-center partitioning: points are
/// assigned to the nearest of `num_partitions` randomly chosen centers, and
/// each query only scans its own partition plus the `probes − 1` next-nearest
/// partitions. Falls back to exact search for tiny inputs.
pub fn approximate_knn_indices(
    features: &[Vec<f64>],
    k: usize,
    num_partitions: usize,
    probes: usize,
    seed: u64,
) -> Result<Vec<Vec<(usize, f64)>>> {
    validate_features(features)?;
    let n = features.len();
    if k == 0 {
        return Err(GraphError::InvalidInput("k must be at least 1".into()));
    }
    let num_partitions = num_partitions.clamp(1, n);
    if num_partitions <= 1 || n <= 4 * k {
        return exact_knn_indices(features, k, 0);
    }
    let probes = probes.clamp(1, num_partitions);
    let k = k.min(n - 1);

    // Pick partition centers deterministically from the seed.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut centers: Vec<usize> = Vec::with_capacity(num_partitions);
    while centers.len() < num_partitions {
        let c = (next() % n as u64) as usize;
        if !centers.contains(&c) {
            centers.push(c);
        }
    }

    // Assign every point to its nearest center.
    let mut partition_of = vec![0usize; n];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_partitions];
    for i in 0..n {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (p, &c) in centers.iter().enumerate() {
            let d = squared_distance(&features[i], &features[c]);
            if d < best_d {
                best_d = d;
                best = p;
            }
        }
        partition_of[i] = best;
        members[best].push(i);
    }

    // For each query, scan its own partition plus the nearest few others.
    let mut results: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut center_order: Vec<(usize, f64)> = centers
            .iter()
            .enumerate()
            .map(|(p, &c)| (p, squared_distance(&features[i], &features[c])))
            .collect();
        center_order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
        let mut candidates: Vec<usize> = Vec::new();
        for &(p, _) in center_order.iter().take(probes) {
            candidates.extend(members[p].iter().copied());
        }
        if !candidates.contains(&partition_of[i]) {
            candidates.extend(members[partition_of[i]].iter().copied());
        }
        let mut scored: Vec<(usize, f64)> = candidates
            .into_iter()
            .filter(|&j| j != i)
            .map(|j| (j, squared_distance(&features[i], &features[j]).sqrt()))
            .collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.dedup_by_key(|e| e.0);
        scored.truncate(k);
        results.push(scored);
    }
    Ok(results)
}

/// Estimate the heat-kernel bandwidth σ from the supplied k-NN distances.
///
/// The paper defines σ loosely as "the standard variation of the function
/// scores"; in high-dimensional feature spaces k-NN distances concentrate
/// (mean ≫ standard deviation), and a bandwidth equal to the raw standard
/// deviation would drive every edge weight to zero. The estimator therefore
/// uses the classical choice `σ = mean k-NN distance`, widened to the
/// standard deviation whenever the spread is larger than the mean, and falls
/// back to 1.0 for fully degenerate inputs (e.g. all-duplicate points).
pub fn estimate_sigma(neighbor_lists: &[Vec<(usize, f64)>]) -> f64 {
    let distances: Vec<f64> = neighbor_lists
        .iter()
        .flat_map(|l| l.iter().map(|&(_, d)| d))
        .collect();
    if distances.is_empty() {
        return 1.0;
    }
    let mean = distances.iter().sum::<f64>() / distances.len() as f64;
    let var = distances
        .iter()
        .map(|d| (d - mean) * (d - mean))
        .sum::<f64>()
        / distances.len() as f64;
    let std = var.sqrt();
    let sigma = mean.max(std);
    if sigma > 1e-12 {
        sigma
    } else {
        1.0
    }
}

/// Convert neighbour lists to an undirected weighted graph using the given
/// weighting scheme. An edge is created when either endpoint lists the other
/// (the union rule), matching the paper's "two nodes are connected … if they
/// are k-nearest neighbors".
pub fn graph_from_neighbor_lists(
    neighbor_lists: &[Vec<(usize, f64)>],
    weighting: EdgeWeighting,
) -> Result<Graph> {
    let n = neighbor_lists.len();
    let sigma = match weighting {
        EdgeWeighting::HeatKernel { sigma } => {
            sigma.unwrap_or_else(|| estimate_sigma(neighbor_lists))
        }
        _ => 1.0,
    };
    if sigma <= 0.0 || !sigma.is_finite() {
        return Err(GraphError::InvalidInput(format!(
            "heat-kernel bandwidth must be positive and finite, got {sigma}"
        )));
    }
    let mut graph = Graph::empty(n);
    for (i, list) in neighbor_lists.iter().enumerate() {
        for &(j, d) in list {
            if i == j {
                continue;
            }
            if graph.has_edge(i, j) {
                continue;
            }
            let weight = match weighting {
                EdgeWeighting::HeatKernel { .. } => {
                    let w = (-d * d / (2.0 * sigma * sigma)).exp();
                    // Guard against underflow to zero for far-apart pairs.
                    w.max(1e-300)
                }
                EdgeWeighting::Binary => 1.0,
                EdgeWeighting::InverseDistance => 1.0 / (d + 1e-12),
            };
            graph.add_edge(i, j, weight)?;
        }
    }
    Ok(graph)
}

/// Build the k-NN graph of a feature matrix with exact (brute force) search.
///
/// This is the paper's preprocessing step shared by every ranking method.
pub fn knn_graph(features: &[Vec<f64>], config: KnnConfig) -> Result<Graph> {
    let lists = exact_knn_indices(features, config.k, config.threads)?;
    graph_from_neighbor_lists(&lists, config.weighting)
}

/// Build an approximate k-NN graph (partition-based candidate generation).
pub fn approximate_knn_graph(
    features: &[Vec<f64>],
    config: KnnConfig,
    num_partitions: usize,
    probes: usize,
    seed: u64,
) -> Result<Graph> {
    let lists = approximate_knn_indices(features, config.k, num_partitions, probes, seed)?;
    graph_from_neighbor_lists(&lists, config.weighting)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters() -> Vec<Vec<f64>> {
        // 6 points: two tight clusters far apart.
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ]
    }

    #[test]
    fn exact_knn_finds_cluster_mates() {
        let feats = two_clusters();
        let lists = exact_knn_indices(&feats, 2, 2).unwrap();
        assert_eq!(lists.len(), 6);
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 2);
            for &(j, d) in list {
                assert_ne!(i, j);
                // Neighbours stay within the same cluster of 3 points.
                assert_eq!(i / 3, j / 3, "point {i} matched {j}");
                assert!(d < 1.0);
            }
        }
    }

    #[test]
    fn knn_distances_are_sorted() {
        let feats = two_clusters();
        let lists = exact_knn_indices(&feats, 3, 1).unwrap();
        for list in lists {
            for w in list.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let feats = vec![vec![0.0], vec![1.0], vec![2.0]];
        let lists = exact_knn_indices(&feats, 10, 1).unwrap();
        for list in lists {
            assert_eq!(list.len(), 2);
        }
    }

    #[test]
    fn input_validation() {
        assert!(exact_knn_indices(&[], 3, 1).is_err());
        assert!(exact_knn_indices(&[vec![]], 3, 1).is_err());
        assert!(exact_knn_indices(&[vec![1.0], vec![1.0, 2.0]], 1, 1).is_err());
        assert!(exact_knn_indices(&[vec![f64::NAN], vec![0.0]], 1, 1).is_err());
        assert!(exact_knn_indices(&two_clusters(), 0, 1).is_err());
    }

    #[test]
    fn heat_kernel_graph_weights_are_in_unit_interval() {
        let feats = two_clusters();
        let g = knn_graph(&feats, KnnConfig::with_k(2)).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert!(g.num_edges() >= 6);
        for u in 0..g.num_nodes() {
            for &(_, w) in g.neighbors(u) {
                assert!(w > 0.0 && w <= 1.0);
            }
        }
        // No cross-cluster edges for k=2 on this dataset.
        for u in 0..3 {
            for &(v, _) in g.neighbors(u) {
                assert!(v < 3);
            }
        }
    }

    #[test]
    fn binary_and_inverse_distance_weightings() {
        let feats = two_clusters();
        let lists = exact_knn_indices(&feats, 2, 1).unwrap();
        let binary = graph_from_neighbor_lists(&lists, EdgeWeighting::Binary).unwrap();
        for u in 0..binary.num_nodes() {
            for &(_, w) in binary.neighbors(u) {
                assert_eq!(w, 1.0);
            }
        }
        let inv = graph_from_neighbor_lists(&lists, EdgeWeighting::InverseDistance).unwrap();
        for u in 0..inv.num_nodes() {
            for &(_, w) in inv.neighbors(u) {
                assert!(w > 1.0); // distances are < 1 here
            }
        }
    }

    #[test]
    fn explicit_sigma_is_respected_and_validated() {
        let feats = two_clusters();
        let lists = exact_knn_indices(&feats, 2, 1).unwrap();
        let g = graph_from_neighbor_lists(&lists, EdgeWeighting::HeatKernel { sigma: Some(0.05) })
            .unwrap();
        assert!(g.num_edges() > 0);
        assert!(
            graph_from_neighbor_lists(&lists, EdgeWeighting::HeatKernel { sigma: Some(0.0) })
                .is_err()
        );
    }

    #[test]
    fn sigma_estimation_degenerate_cases() {
        assert_eq!(estimate_sigma(&[]), 1.0);
        assert_eq!(estimate_sigma(&[vec![]]), 1.0);
        // All-equal distances: the mean is used directly.
        let sigma = estimate_sigma(&[vec![(1, 2.0), (2, 2.0)]]);
        assert!((sigma - 2.0).abs() < 1e-12);
        // All-zero distances (duplicate points): falls back to 1.0.
        let sigma = estimate_sigma(&[vec![(1, 0.0), (2, 0.0)]]);
        assert_eq!(sigma, 1.0);
        // Concentrated distances (mean >> std): σ tracks the mean so edge
        // weights stay well away from underflow.
        let sigma = estimate_sigma(&[vec![(1, 10.0), (2, 10.1), (3, 9.9)]]);
        assert!(sigma > 9.0);
    }

    #[test]
    fn duplicate_points_still_build_a_graph() {
        let feats = vec![vec![1.0, 1.0]; 5];
        let g = knn_graph(&feats, KnnConfig::with_k(2)).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn approximate_knn_mostly_agrees_with_exact() {
        // Grid of points: approximate search with several probes should
        // recover the large majority of true neighbours.
        let mut feats = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                feats.push(vec![i as f64, j as f64]);
            }
        }
        let exact = exact_knn_indices(&feats, 4, 0).unwrap();
        let approx = approximate_knn_indices(&feats, 4, 9, 4, 42).unwrap();
        let mut hits = 0usize;
        let mut total = 0usize;
        for (e, a) in exact.iter().zip(approx.iter()) {
            let aset: std::collections::HashSet<usize> = a.iter().map(|&(j, _)| j).collect();
            for &(j, _) in e {
                total += 1;
                if aset.contains(&j) {
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.7, "approximate recall too low: {recall}");
    }

    #[test]
    fn approximate_falls_back_to_exact_for_tiny_inputs() {
        let feats = two_clusters();
        let exact = exact_knn_indices(&feats, 2, 1).unwrap();
        let approx = approximate_knn_indices(&feats, 2, 4, 1, 7).unwrap();
        assert_eq!(exact, approx);
    }

    #[test]
    fn nearest_neighbors_for_external_query() {
        let feats = two_clusters();
        let hits = nearest_neighbors(&feats, &[0.05, 0.05], 3, usize::MAX);
        assert_eq!(hits.len(), 3);
        for &(j, _) in &hits {
            assert!(j < 3);
        }
    }
}
