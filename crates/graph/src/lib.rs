//! # mogul-graph
//!
//! Graph substrate for the Mogul manifold-ranking library: k-NN graph
//! construction, heat-kernel edge weights, graph clustering and the
//! cluster-aware node ordering of Algorithm 1 in the paper.
//!
//! * [`Graph`] — undirected weighted graph in adjacency-list form.
//! * [`knn`] — exact (threaded brute-force) and approximate (partition-based)
//!   k-nearest-neighbour graph construction over feature vectors.
//! * [`adjacency`] — adjacency matrix, degree vector, the symmetric
//!   normalization `C^{-1/2} A C^{-1/2}` and the ranking system matrix
//!   `W = I − α S` used throughout the paper.
//! * [`clustering`] — modularity-based clustering (the role played by
//!   Shiokawa et al. \[17\] in the paper), k-means, and spectral clustering
//!   (used by the FMR baseline).
//! * [`ordering`] — Algorithm 1: the node permutation that makes the
//!   Incomplete Cholesky factor singly bordered block diagonal (Lemma 3).
//! * [`persist`] — bit-exact (de)serialization of graphs and orderings for
//!   the on-disk index format (`mogul-core::persist`).

#![deny(missing_docs)]
// Index-based loops mirror the adjacency/permutation arithmetic of the paper.
#![allow(clippy::needless_range_loop)]

pub mod adjacency;
pub mod clustering;
pub mod graph;
pub mod knn;
pub mod ordering;
pub mod persist;

pub use clustering::labels::Clustering;
pub use graph::Graph;
pub use knn::{knn_graph, KnnConfig};
pub use ordering::{ClusterRange, NodeOrdering};

/// Errors produced by this crate (re-export of the sparse-crate error type —
/// graph construction failures are all dimension/precondition violations of
/// the same kind).
pub use mogul_sparse::error::{Result, SparseError as GraphError};
