//! Undirected weighted graphs in adjacency-list form.
//!
//! The k-NN graph of the paper is undirected, loop-free, and has `O(n)`
//! edges; this type is the in-memory representation every other module
//! (clustering, ordering, adjacency-matrix construction) works from.

use crate::{GraphError, Result};
use mogul_sparse::{CooMatrix, CsrMatrix};

/// An undirected weighted graph without self-loops.
///
/// Neighbour lists are kept sorted by neighbour id; parallel edges are merged
/// at construction time by keeping the last weight supplied.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    adj: Vec<Vec<(usize, f64)>>,
    num_edges: usize,
}

impl Graph {
    /// Create a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Build a graph from undirected weighted edges.
    ///
    /// Self-loops are rejected (the paper's k-NN graphs have none); duplicate
    /// edges keep the last supplied weight; non-finite or non-positive
    /// weights are rejected.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut graph = Graph::empty(n);
        for &(u, v, w) in edges {
            graph.add_edge(u, v, w)?;
        }
        Ok(graph)
    }

    /// Add (or overwrite) an undirected edge.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> Result<()> {
        let n = self.num_nodes();
        if u >= n || v >= n {
            return Err(GraphError::IndexOutOfBounds {
                index: (u, v),
                shape: (n, n),
            });
        }
        if u == v {
            return Err(GraphError::InvalidInput(format!(
                "self-loop at node {u} is not allowed in a k-NN graph"
            )));
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(GraphError::InvalidInput(format!(
                "edge ({u}, {v}) has invalid weight {weight}"
            )));
        }
        let inserted_u = Self::insert_neighbor(&mut self.adj[u], v, weight);
        let inserted_v = Self::insert_neighbor(&mut self.adj[v], u, weight);
        debug_assert_eq!(inserted_u, inserted_v);
        if inserted_u {
            self.num_edges += 1;
        }
        Ok(())
    }

    fn insert_neighbor(list: &mut Vec<(usize, f64)>, target: usize, weight: f64) -> bool {
        match list.binary_search_by_key(&target, |&(id, _)| id) {
            Ok(pos) => {
                list[pos].1 = weight;
                false
            }
            Err(pos) => {
                list.insert(pos, (target, weight));
                true
            }
        }
    }

    /// Append a new isolated node and return its id (incremental ingest:
    /// `mogul-core::update` grows the graph one inserted item at a time).
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbour list of `u` as `(neighbour, weight)` pairs.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Unweighted degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Weighted degree of `u` (sum of incident edge weights).
    pub fn weighted_degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum()
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_weight(&self) -> f64 {
        let twice: f64 = (0..self.num_nodes()).map(|u| self.weighted_degree(u)).sum();
        twice / 2.0
    }

    /// Remove the undirected edge `(u, v)`; returns `true` if it existed.
    ///
    /// Used by the incremental index maintenance in `mogul-core::update`
    /// (item removal disconnects the node, item insertion may retract stale
    /// edges); out-of-range endpoints are rejected like in
    /// [`Graph::add_edge`].
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<bool> {
        let n = self.num_nodes();
        if u >= n || v >= n {
            return Err(GraphError::IndexOutOfBounds {
                index: (u, v),
                shape: (n, n),
            });
        }
        let removed_u = Self::remove_neighbor(&mut self.adj[u], v);
        let removed_v = Self::remove_neighbor(&mut self.adj[v], u);
        debug_assert_eq!(removed_u, removed_v);
        if removed_u {
            self.num_edges -= 1;
        }
        Ok(removed_u)
    }

    fn remove_neighbor(list: &mut Vec<(usize, f64)>, target: usize) -> bool {
        match list.binary_search_by_key(&target, |&(id, _)| id) {
            Ok(pos) => {
                list.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Remove every edge incident to `u`, leaving it isolated; returns the
    /// removed `(neighbour, weight)` pairs (sorted by neighbour id).
    pub fn disconnect_node(&mut self, u: usize) -> Result<Vec<(usize, f64)>> {
        let n = self.num_nodes();
        if u >= n {
            return Err(GraphError::IndexOutOfBounds {
                index: (u, u),
                shape: (n, n),
            });
        }
        let removed = std::mem::take(&mut self.adj[u]);
        for &(v, _) in &removed {
            let dropped = Self::remove_neighbor(&mut self.adj[v], u);
            debug_assert!(dropped);
        }
        self.num_edges -= removed.len();
        Ok(removed)
    }

    /// `true` if the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].binary_search_by_key(&v, |&(id, _)| id).is_ok()
    }

    /// Weight of edge `(u, v)`, or `None` if absent.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.adj[u]
            .binary_search_by_key(&v, |&(id, _)| id)
            .ok()
            .map(|pos| self.adj[u][pos].1)
    }

    /// Symmetric adjacency matrix in CSR form.
    pub fn adjacency_matrix(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let mut coo = CooMatrix::with_capacity(n, n, 2 * self.num_edges);
        for u in 0..n {
            for &(v, w) in &self.adj[u] {
                // Each direction appears once in the adjacency lists.
                coo.push(u, v, w).expect("adjacency indices in range");
            }
        }
        coo.to_csr()
    }

    /// Connected-component label of each node (labels are contiguous from 0,
    /// assigned in order of the smallest node id in each component).
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.num_nodes();
        let mut labels = vec![usize::MAX; n];
        let mut next_label = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if labels[start] != usize::MAX {
                continue;
            }
            labels[start] = next_label;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &(v, _) in &self.adj[u] {
                    if labels[v] == usize::MAX {
                        labels[v] = next_label;
                        stack.push(v);
                    }
                }
            }
            next_label += 1;
        }
        labels
    }

    /// `true` if the graph has a single connected component (or no nodes).
    pub fn is_connected(&self) -> bool {
        let labels = self.connected_components();
        labels.iter().all(|&l| l == 0)
    }

    /// Number of edges between `u` and nodes for which `predicate` holds.
    pub fn count_neighbors_where(
        &self,
        u: usize,
        mut predicate: impl FnMut(usize) -> bool,
    ) -> usize {
        self.adj[u].iter().filter(|&&(v, _)| predicate(v)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolated() -> Graph {
        Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 0.5)]).unwrap()
    }

    #[test]
    fn incremental_mutation() {
        let mut g = triangle_plus_isolated();

        // Edge removal is symmetric and updates the edge count.
        assert!(g.remove_edge(0, 1).unwrap());
        assert!(!g.has_edge(0, 1) && !g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        // Removing a missing edge is a no-op, out-of-range is an error.
        assert!(!g.remove_edge(0, 1).unwrap());
        assert!(g.remove_edge(0, 99).is_err());

        // Disconnecting a node reports its former neighbourhood.
        let removed = g.disconnect_node(2).unwrap();
        assert_eq!(removed, vec![(0, 0.5), (1, 2.0)]);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.disconnect_node(99).is_err());
        assert!(g.disconnect_node(3).unwrap().is_empty());

        // Growing the graph appends isolated nodes that accept edges.
        let new = g.add_node();
        assert_eq!(new, 4);
        assert_eq!(g.num_nodes(), 5);
        g.add_edge(new, 0, 1.25).unwrap();
        assert_eq!(g.edge_weight(0, new), Some(1.25));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn construction_and_queries() {
        let g = triangle_plus_isolated();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(1, 3), None);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert!((g.weighted_degree(0) - 1.5).abs() < 1e-12);
        assert!((g.total_weight() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut g = Graph::empty(3);
        assert!(g.add_edge(0, 0, 1.0).is_err());
        assert!(g.add_edge(0, 5, 1.0).is_err());
        assert!(g.add_edge(0, 1, 0.0).is_err());
        assert!(g.add_edge(0, 1, f64::NAN).is_err());
        assert!(g.add_edge(0, 1, -1.0).is_err());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_edges_overwrite_weight() {
        let mut g = Graph::empty(2);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 0, 3.0).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn adjacency_matrix_is_symmetric() {
        let g = triangle_plus_isolated();
        let a = g.adjacency_matrix();
        assert_eq!(a.nrows(), 4);
        assert!(a.is_symmetric(1e-12));
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(2, 1), 2.0);
        assert_eq!(a.get(3, 3), 0.0);
        assert_eq!(a.nnz(), 6);
    }

    #[test]
    fn connected_components_and_connectivity() {
        let g = triangle_plus_isolated();
        let labels = g.connected_components();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert!(!g.is_connected());

        let connected = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(connected.is_connected());
        assert!(Graph::empty(0).is_connected());
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, &[(2, 4, 1.0), (2, 0, 1.0), (2, 3, 1.0)]).unwrap();
        let ids: Vec<usize> = g.neighbors(2).iter().map(|&(v, _)| v).collect();
        assert_eq!(ids, vec![0, 3, 4]);
        assert_eq!(g.count_neighbors_where(2, |v| v > 2), 2);
    }
}
