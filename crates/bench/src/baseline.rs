//! Shared machinery of the machine-readable performance baseline
//! (`BENCH_query.json`): rendering, parsing, merging and validating the
//! trajectory file, hand-rolled because the workspace deliberately has no
//! third-party dependencies.
//!
//! Two binaries write the file: `perf_baseline` (core search / serving /
//! update scenarios) and `load_gen` (network saturation rows measured over
//! real sockets). Each **merges** its rows into the existing file instead of
//! clobbering the other's, keyed by scenario name.
//!
//! Schema (one trajectory point per run):
//!
//! ```json
//! {
//!   "git_rev": "<short rev or \"unknown\">",
//!   "date": "YYYY-MM-DD",
//!   "smoke": false,
//!   "scenarios": { "<name>": { "p50_us": 1.0, "p95_us": 2.0, "qps": 3.0 } }
//! }
//! ```

use std::cmp::Ordering;

/// One row of the baseline file: per-iteration latency percentiles plus
/// queries-per-second of a named scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Scenario name (the merge key).
    pub name: String,
    /// Median per-iteration latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-iteration latency, microseconds.
    pub p95_us: f64,
    /// Queries (not iterations) answered per second.
    pub qps: f64,
}

/// Percentile (0.0 ..= 1.0) of a latency sample in microseconds. Samples are
/// in seconds; the result is scaled to microseconds.
pub fn percentile_us(latencies: &[f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx] * 1e6
}

/// Render a complete baseline document from rows.
pub fn render_json(rows: &[ScenarioRow], smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"git_rev\": \"{}\",\n", git_rev()));
    out.push_str(&format!("  \"date\": \"{}\",\n", today_utc()));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"scenarios\": {\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{ \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"qps\": {:.1} }}{}\n",
            row.name,
            row.p50_us,
            row.p95_us,
            row.qps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Merge `fresh` rows into `existing`: rows with the same name are replaced
/// in place (preserving the file's row order), new names append at the end.
pub fn merge_rows(existing: &[ScenarioRow], fresh: &[ScenarioRow]) -> Vec<ScenarioRow> {
    let mut merged: Vec<ScenarioRow> = existing.to_vec();
    for row in fresh {
        match merged.iter_mut().find(|r| r.name == row.name) {
            Some(slot) => *slot = row.clone(),
            None => merged.push(row.clone()),
        }
    }
    merged
}

/// Short git revision of the working tree, or `"unknown"`.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// Civil date from the Unix timestamp (Howard Hinnant's days-to-civil
/// algorithm) — no chrono in this workspace.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let days = secs.div_euclid(86_400);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — enough to validate the baseline file and to pull its
// scenario rows back out for merging. Input is machine-generated (by this
// module or a previous version of it), but the reader still fails closed on
// anything malformed.
// ---------------------------------------------------------------------------

/// Assert `input` is one well-formed JSON value (objects, strings, numbers,
/// booleans) with nothing trailing.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

/// Parse the `"scenarios"` object of a baseline document back into rows
/// (file order preserved). Returns an empty list for an empty scenarios
/// object; fails on structural problems.
pub fn parse_scenarios(input: &str) -> Result<Vec<ScenarioRow>, String> {
    validate_json(input)?;
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("baseline document must be an object".into());
    }
    pos += 1;
    let mut rows = Vec::new();
    loop {
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) == Some(&b'}') {
            break;
        }
        let key = parse_string_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos += 1;
        skip_ws(bytes, &mut pos);
        if key == "scenarios" {
            rows = parse_scenario_object(bytes, &mut pos)?;
        } else {
            parse_value(bytes, &mut pos)?;
        }
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        }
    }
    Ok(rows)
}

fn parse_scenario_object(bytes: &[u8], pos: &mut usize) -> Result<Vec<ScenarioRow>, String> {
    if bytes.get(*pos) != Some(&b'{') {
        return Err("\"scenarios\" must be an object".into());
    }
    *pos += 1;
    let mut rows = Vec::new();
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(rows);
        }
        let name = parse_string_value(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' after scenario name at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let row = parse_row_fields(bytes, pos, name)?;
        rows.push(row);
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b',') {
            *pos += 1;
        }
    }
}

fn parse_row_fields(bytes: &[u8], pos: &mut usize, name: String) -> Result<ScenarioRow, String> {
    if bytes.get(*pos) != Some(&b'{') {
        return Err(format!("scenario {name:?} must be an object"));
    }
    *pos += 1;
    let (mut p50_us, mut p95_us, mut qps) = (None, None, None);
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            break;
        }
        let field = parse_string_value(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' in scenario {name:?}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_number_value(bytes, pos)?;
        match field.as_str() {
            "p50_us" => p50_us = Some(value),
            "p95_us" => p95_us = Some(value),
            "qps" => qps = Some(value),
            other => return Err(format!("unknown field {other:?} in scenario {name:?}")),
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b',') {
            *pos += 1;
        }
    }
    match (p50_us, p95_us, qps) {
        (Some(p50_us), Some(p95_us), Some(qps)) => Ok(ScenarioRow {
            name,
            p50_us,
            p95_us,
            qps,
        }),
        _ => Err(format!("scenario {name:?} is missing a required field")),
    }
}

/// A parsed baseline document: the top-level metadata plus every row.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDoc {
    /// Short git revision the rows were measured at (`"unknown"` allowed).
    pub git_rev: String,
    /// Measurement date, `YYYY-MM-DD`.
    pub date: String,
    /// Whether the rows came from a `--smoke` run (unfit as a baseline).
    pub smoke: bool,
    /// The scenario rows, in file order.
    pub rows: Vec<ScenarioRow>,
}

/// Parse and validate a **whole** baseline document against the schema in
/// `docs/PERFORMANCE.md`: exactly the four top-level keys (`git_rev`,
/// `date`, `smoke`, `scenarios`), a well-formed date, unique scenario names,
/// and rows whose three fields are finite, non-negative and satisfy
/// `p50_us ≤ p95_us`. `required` lists scenario names that must be present
/// (pass `&[]` to skip the coverage check). Fails closed with a description
/// of the first violation.
pub fn validate_document(input: &str, required: &[&str]) -> Result<BaselineDoc, String> {
    validate_json(input)?;
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("baseline document must be an object".into());
    }
    pos += 1;
    let (mut git_rev, mut date, mut smoke, mut rows) = (None, None, None, None);
    loop {
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) == Some(&b'}') {
            break;
        }
        let key = parse_string_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos += 1;
        skip_ws(bytes, &mut pos);
        match key.as_str() {
            "git_rev" => git_rev = Some(parse_string_value(bytes, &mut pos)?),
            "date" => date = Some(parse_string_value(bytes, &mut pos)?),
            "smoke" => {
                smoke = Some(match bytes.get(pos) {
                    Some(b't') => {
                        parse_literal(bytes, &mut pos, "true")?;
                        true
                    }
                    _ => {
                        parse_literal(bytes, &mut pos, "false")?;
                        false
                    }
                })
            }
            "scenarios" => rows = Some(parse_scenario_object(bytes, &mut pos)?),
            other => return Err(format!("unknown top-level key {other:?}")),
        }
        skip_ws(bytes, &mut pos);
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        }
    }
    let doc = BaselineDoc {
        git_rev: git_rev.ok_or("missing top-level \"git_rev\"")?,
        date: date.ok_or("missing top-level \"date\"")?,
        smoke: smoke.ok_or("missing top-level \"smoke\"")?,
        rows: rows.ok_or("missing top-level \"scenarios\"")?,
    };
    if doc.git_rev.is_empty() || !doc.git_rev.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Err(format!("malformed git_rev {:?}", doc.git_rev));
    }
    let d = doc.date.as_bytes();
    let date_ok = d.len() == 10
        && d[4] == b'-'
        && d[7] == b'-'
        && d.iter()
            .enumerate()
            .all(|(i, &c)| matches!(i, 4 | 7) || c.is_ascii_digit());
    if !date_ok {
        return Err(format!("malformed date {:?} (want YYYY-MM-DD)", doc.date));
    }
    for (i, row) in doc.rows.iter().enumerate() {
        if row.name.is_empty() {
            return Err(format!("scenario #{i} has an empty name"));
        }
        if doc.rows[..i].iter().any(|r| r.name == row.name) {
            return Err(format!("duplicate scenario {:?}", row.name));
        }
        for (field, value) in [
            ("p50_us", row.p50_us),
            ("p95_us", row.p95_us),
            ("qps", row.qps),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "scenario {:?}: {field} = {value} is invalid",
                    row.name
                ));
            }
        }
        if row.p50_us > row.p95_us {
            return Err(format!(
                "scenario {:?}: p50_us {} exceeds p95_us {}",
                row.name, row.p50_us, row.p95_us
            ));
        }
    }
    for &name in required {
        if !doc.rows.iter().any(|r| r.name == name) {
            return Err(format!("required scenario {name:?} is missing"));
        }
    }
    Ok(doc)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && (bytes[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'"') => parse_string_value(bytes, pos).map(drop),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number_value(bytes, pos).map(drop),
        other => Err(format!("unexpected token {other:?} at byte {pos}")),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string_value(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at byte {pos}")),
        }
    }
}

fn parse_string_value(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let start = *pos;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?
                    .to_string();
                *pos += 1;
                return Ok(s);
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number_value(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while let Some(&c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ScenarioRow> {
        vec![
            ScenarioRow {
                name: "search_scalar".into(),
                p50_us: 10.5,
                p95_us: 20.25,
                qps: 95_000.0,
            },
            ScenarioRow {
                name: "net_closed_c2".into(),
                p50_us: 120.0,
                p95_us: 480.0,
                qps: 16_000.5,
            },
        ]
    }

    #[test]
    fn render_parse_round_trip() {
        let json = render_json(&rows(), true);
        validate_json(&json).unwrap();
        let back = parse_scenarios(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "search_scalar");
        assert!((back[0].p50_us - 10.5).abs() < 1e-9);
        assert!((back[1].qps - 16_000.5).abs() < 1e-6);
    }

    #[test]
    fn merge_replaces_by_name_and_appends_new() {
        let existing = rows();
        let fresh = vec![
            ScenarioRow {
                name: "net_closed_c2".into(),
                p50_us: 99.0,
                p95_us: 300.0,
                qps: 20_000.0,
            },
            ScenarioRow {
                name: "net_open_10x".into(),
                p50_us: 150.0,
                p95_us: 600.0,
                qps: 12_000.0,
            },
        ];
        let merged = merge_rows(&existing, &fresh);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].name, "search_scalar"); // untouched, in place
        assert!((merged[1].p50_us - 99.0).abs() < 1e-9); // replaced in place
        assert_eq!(merged[2].name, "net_open_10x"); // appended
    }

    #[test]
    fn malformed_documents_fail_closed() {
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(parse_scenarios("[]").is_err());
        assert!(parse_scenarios("{\"scenarios\": {\"x\": {\"p50_us\": 1.0}}}").is_err());
        assert!(parse_scenarios(
            "{\"scenarios\": {\"x\": {\"p50_us\": 1.0, \"p95_us\": 2.0, \"qps\": \"fast\"}}}"
        )
        .is_err());
    }

    #[test]
    fn empty_scenarios_parse_to_no_rows() {
        assert!(parse_scenarios("{\"scenarios\": {}}").unwrap().is_empty());
        // A document with no scenarios key at all: no rows, not an error.
        assert!(parse_scenarios("{\"smoke\": false}").unwrap().is_empty());
    }

    #[test]
    fn validate_document_accepts_rendered_output() {
        let json = render_json(&rows(), false);
        let doc = validate_document(&json, &["search_scalar", "net_closed_c2"]).unwrap();
        assert!(!doc.smoke);
        assert_eq!(doc.date, today_utc());
        assert_eq!(doc.rows.len(), 2);
        // Required-row coverage is enforced.
        let err = validate_document(&json, &["search_scalar", "kernel_scale_diag"]).unwrap_err();
        assert!(err.contains("kernel_scale_diag"), "{err}");
    }

    #[test]
    fn validate_document_rejects_schema_violations() {
        let good = render_json(&rows(), false);
        // Missing top-level key.
        let missing = good.replacen("\"smoke\": false,\n", "", 1);
        assert!(validate_document(&missing, &[])
            .unwrap_err()
            .contains("smoke"));
        // Unknown top-level key.
        let unknown = good.replacen("\"smoke\"", "\"smokey\"", 1);
        assert!(validate_document(&unknown, &[])
            .unwrap_err()
            .contains("smokey"));
        // Malformed date.
        let bad_date = good.replacen(&today_utc(), "2026-8-8", 1);
        assert!(validate_document(&bad_date, &[])
            .unwrap_err()
            .contains("date"));
        // p50 above p95.
        let inverted = good.replacen("\"p50_us\": 10.500", "\"p50_us\": 99.000", 1);
        assert!(validate_document(&inverted, &[])
            .unwrap_err()
            .contains("exceeds"));
        // Duplicate scenario name.
        let duplicated = good.replacen("\"net_closed_c2\"", "\"search_scalar\"", 1);
        assert!(validate_document(&duplicated, &[])
            .unwrap_err()
            .contains("duplicate"));
        // Non-finite / negative values never sneak in.
        let negative = good.replacen("\"qps\": 95000.0", "\"qps\": -1.0", 1);
        assert!(validate_document(&negative, &[])
            .unwrap_err()
            .contains("invalid"));
    }

    #[test]
    fn committed_baseline_matches_the_schema() {
        // The repo-root BENCH_query.json must always validate; CI runs the
        // same check via `perf_baseline --validate`.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
        let json = std::fs::read_to_string(path).expect("BENCH_query.json at repo root");
        let doc = validate_document(&json, &["search_scalar", "serve_panel_b32"]).unwrap();
        assert!(
            !doc.smoke,
            "committed baseline must be a full run, not smoke"
        );
    }

    #[test]
    fn date_and_rev_are_well_formed() {
        let date = today_utc();
        assert_eq!(date.len(), 10);
        assert_eq!(&date[4..5], "-");
        let rev = git_rev();
        assert!(rev == "unknown" || rev.chars().all(|c| c.is_ascii_alphanumeric()));
    }
}
