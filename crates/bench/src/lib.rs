//! # mogul-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation section.
//!
//! Two kinds of targets live here:
//!
//! * **Figure/table runners** (`src/bin/fig*.rs`, `src/bin/table2*.rs`,
//!   `src/bin/run_all.rs`): binaries that execute the experiments defined in
//!   `mogul-eval` and print the same rows/series the paper reports. Run them
//!   with `cargo run -p mogul-bench --release --bin <name> [scale]`, where
//!   `scale` is one of `tiny`, `small`, `medium`, `large` (default `small`).
//! * **Criterion benches** (`benches/*.rs`): micro/meso benchmarks of the
//!   individual operations behind each figure, runnable with
//!   `cargo bench -p mogul-bench`.

#![warn(missing_docs)]

pub mod baseline;

use mogul_data::suite::SuiteScale;
use mogul_eval::ScenarioConfig;

/// Parse the dataset scale from the process arguments (first positional
/// argument) or the `MOGUL_SCALE` environment variable. Defaults to `small`.
pub fn scale_from_args() -> SuiteScale {
    let from_arg = std::env::args().nth(1);
    let from_env = std::env::var("MOGUL_SCALE").ok();
    parse_scale(from_arg.or(from_env).as_deref())
}

/// Parse a scale name; unknown names fall back to `Small`.
pub fn parse_scale(name: Option<&str>) -> SuiteScale {
    match name.map(|s| s.to_ascii_lowercase()) {
        Some(ref s) if s == "tiny" => SuiteScale::Tiny,
        Some(ref s) if s == "medium" => SuiteScale::Medium,
        Some(ref s) if s == "large" => SuiteScale::Large,
        _ => SuiteScale::Small,
    }
}

/// The experiment configuration used by every figure runner at a given scale.
pub fn runner_config(scale: SuiteScale) -> ScenarioConfig {
    ScenarioConfig {
        scale,
        num_queries: 10,
        ..ScenarioConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale(Some("tiny")), SuiteScale::Tiny);
        assert_eq!(parse_scale(Some("MEDIUM")), SuiteScale::Medium);
        assert_eq!(parse_scale(Some("large")), SuiteScale::Large);
        assert_eq!(parse_scale(Some("bogus")), SuiteScale::Small);
        assert_eq!(parse_scale(None), SuiteScale::Small);
    }

    #[test]
    fn runner_config_uses_paper_defaults() {
        let config = runner_config(SuiteScale::Tiny);
        assert_eq!(config.alpha, 0.99);
        assert_eq!(config.knn_k, 5);
        assert_eq!(config.num_queries, 10);
    }
}
