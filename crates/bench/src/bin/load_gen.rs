//! Socket-level load generator for the network front door: drives a running
//! `serve_net` (or any `MGW1` server) with closed- and open-loop load and
//! merges the measured saturation rows into `BENCH_query.json`.
//!
//! ```text
//! cargo run --release -p mogul-bench --bin load_gen -- --addr HOST:PORT [options]
//!   --smoke          short run: closed-loop only, asserts zero shed at trivial
//!                    load, writes target/BENCH_query.net.smoke.json
//!   --drain          send a drain request when done (shuts the server down)
//!   --chaos-seed N   also run a chaos loop: route queries through a seeded
//!                    fault-injection proxy (drops, delays, truncations,
//!                    bit-flips) behind a failover client, and assert every
//!                    query still completes (row `net_chaos_c1`)
//! ```
//!
//! Scenarios (rows are merged into the baseline file by name, alongside the
//! in-process rows written by `perf_baseline`):
//!
//! * `net_closed_c{1,2,4}` — closed loop: N connections, each issuing one
//!   in-database query at a time. Measures the latency floor and how it
//!   scales with concurrency; `p50_us`/`p95_us` are per-query round trips.
//! * `net_open_half` — open loop at ~0.5x the closed-loop capacity: the
//!   healthy regime; sheds must be zero.
//! * `net_open_10x` — open loop at ~10x capacity: the overload regime; the
//!   server must keep answering at its capacity and shed the excess with
//!   typed `Overloaded` frames (the row records the *successful* completions;
//!   shed counts go to stderr and are asserted > 0).
//! * `net_chaos_c1` (with `--chaos-seed`) — closed loop through a
//!   corrupting proxy, driven by the failover client: measures the
//!   end-to-end latency of queries that may need retries, and asserts the
//!   resilience contract (every query completes, zero non-typed failures).
//!
//! The generator never panics on a shed — typed `Overloaded`/`Draining`
//! responses are part of the contract being measured.

use mogul_bench::baseline::{
    merge_rows, parse_scenarios, percentile_us, render_json, validate_json, ScenarioRow,
};
use mogul_serve::net::NetClient;
use mogul_serve::resilience::{FaultPlan, FaultProxy, ReplicaSet, ReplicaSetConfig};
use mogul_serve::{QueryRequest, ServeError};
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    smoke: bool,
    drain: bool,
    chaos_seed: Option<u64>,
}

fn parse_args() -> Args {
    let mut addr = None;
    let mut smoke = false;
    let mut drain = false;
    let mut chaos_seed = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                i += 1;
                addr = argv.get(i).cloned();
            }
            "--smoke" => smoke = true,
            "--drain" => drain = true,
            "--chaos-seed" => {
                i += 1;
                chaos_seed = Some(argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--chaos-seed needs an unsigned integer");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let addr = addr.unwrap_or_else(|| {
        eprintln!("usage: load_gen --addr HOST:PORT [--smoke] [--drain] [--chaos-seed N]");
        std::process::exit(2);
    });
    Args {
        addr,
        smoke,
        drain,
        chaos_seed,
    }
}

fn connect(addr: &str) -> NetClient {
    let client = NetClient::connect(addr).unwrap_or_else(|err| {
        eprintln!("cannot connect to {addr}: {err}");
        std::process::exit(1);
    });
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    client
}

/// Closed loop: `conns` connections, each issuing one query at a time for
/// `duration`. Returns (latencies in seconds, completed queries).
fn closed_loop(addr: &str, items: usize, conns: usize, duration: Duration) -> (Vec<f64>, usize) {
    let deadline = Instant::now() + duration;
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = connect(&addr);
                let mut latencies = Vec::new();
                let mut i = c; // interleave the id space across connections
                while Instant::now() < deadline {
                    let request = QueryRequest::in_database(i % items, 10);
                    let start = Instant::now();
                    match client.query(&request) {
                        Ok(response) => {
                            assert_eq!(response.top_k().len(), 10);
                            latencies.push(start.elapsed().as_secs_f64());
                        }
                        Err(err) => panic!("closed-loop query failed: {err}"),
                    }
                    i += 131;
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::new();
    for handle in handles {
        all.extend(handle.join().expect("closed-loop worker panicked"));
    }
    let completed = all.len();
    (all, completed)
}

/// Open loop: send at a fixed rate regardless of completions (one pipelined
/// connection; a reader thread drains responses concurrently). Returns
/// (latencies of successful queries, completed, shed).
fn open_loop(
    addr: &str,
    items: usize,
    rate_qps: f64,
    duration: Duration,
) -> (Vec<f64>, usize, usize) {
    let sender = connect(addr);
    let receiver = sender.try_clone().expect("clone socket");
    let mut sender = sender;
    let total = (rate_qps * duration.as_secs_f64()).max(1.0) as usize;

    // Responses on a pipelined connection may complete out of order (the
    // worker pool races); pair each response with its send time by request
    // id, fed through a channel alongside the sends.
    let (times_tx, times_rx) = std::sync::mpsc::channel::<(u64, Instant)>();
    let reader = std::thread::spawn(move || {
        let mut receiver = receiver;
        let mut pending: std::collections::HashMap<u64, Instant> = std::collections::HashMap::new();
        let mut latencies = Vec::new();
        let mut completed = 0usize;
        let mut shed = 0usize;
        for _ in 0..total {
            let (id, answer) = receiver.recv_answer().expect("open-loop response missing");
            let sent_at = loop {
                if let Some(at) = pending.remove(&id) {
                    break at;
                }
                // The response can only arrive after its send, so the time
                // is either already here or one channel recv away.
                let (got, at) = times_rx.recv().expect("send-time channel closed early");
                pending.insert(got, at);
            };
            match answer {
                Ok(_) => {
                    latencies.push(sent_at.elapsed().as_secs_f64());
                    completed += 1;
                }
                Err(ServeError::Overloaded { .. }) | Err(ServeError::Draining) => shed += 1,
                Err(other) => panic!("unexpected open-loop rejection: {other}"),
            }
        }
        (latencies, completed, shed)
    });

    let interval = Duration::from_secs_f64(1.0 / rate_qps);
    let started = Instant::now();
    for i in 0..total {
        let target = started + interval.mul_f64(i as f64);
        if let Some(wait) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sent_at = Instant::now();
        let id = sender
            .send_query(&QueryRequest::in_database((i * 131) % items, 10))
            .expect("open-loop send failed");
        times_tx.send((id, sent_at)).expect("reader hung up");
    }
    drop(times_tx);
    reader.join().expect("open-loop reader panicked")
}

fn row(name: &str, latencies: &[f64], completed: usize, wall: Duration) -> ScenarioRow {
    ScenarioRow {
        name: name.to_string(),
        p50_us: percentile_us(latencies, 0.50),
        p95_us: percentile_us(latencies, 0.95),
        qps: completed as f64 / wall.as_secs_f64().max(1e-9),
    }
}

fn main() {
    let args = parse_args();

    // The corpus size comes from the server itself.
    let mut control = connect(&args.addr);
    let before = control.stats().unwrap_or_else(|err| {
        eprintln!("stats request failed: {err}");
        std::process::exit(1);
    });
    let items = before.items as usize;
    assert!(items > 0, "server reports an empty corpus");
    eprintln!(
        "load_gen: target {} — {} items, epoch {}, queue bound {}",
        args.addr, items, before.epoch, before.queue_capacity
    );

    let duration = if args.smoke {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(3)
    };
    let mut rows: Vec<ScenarioRow> = Vec::new();

    // -- closed loop -------------------------------------------------------
    let concurrencies: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4] };
    let mut capacity_qps = 0.0f64;
    for &c in concurrencies {
        let started = Instant::now();
        let (latencies, completed) = closed_loop(&args.addr, items, c, duration);
        let wall = started.elapsed();
        let r = row(&format!("net_closed_c{c}"), &latencies, completed, wall);
        eprintln!(
            "  {:<16} p50 {:>9.1} us   p95 {:>9.1} us   {:>9.0} q/s",
            r.name, r.p50_us, r.p95_us, r.qps
        );
        capacity_qps = capacity_qps.max(r.qps);
        rows.push(r);
    }
    assert!(capacity_qps > 0.0, "closed loop completed no queries");

    // -- open loop (full runs only: the smoke gate wants zero shed) --------
    if !args.smoke {
        for (name, factor) in [("net_open_half", 0.5f64), ("net_open_10x", 10.0)] {
            let rate = (capacity_qps * factor).max(10.0);
            let started = Instant::now();
            let (latencies, completed, shed) = open_loop(&args.addr, items, rate, duration);
            let wall = started.elapsed();
            let r = row(name, &latencies, completed, wall);
            eprintln!(
                "  {:<16} p50 {:>9.1} us   p95 {:>9.1} us   {:>9.0} q/s   offered {:>9.0} q/s   shed {}",
                r.name, r.p50_us, r.p95_us, r.qps, rate, shed
            );
            if factor < 1.0 {
                assert_eq!(shed, 0, "the healthy open-loop regime must not shed");
            } else {
                assert!(
                    shed > 0,
                    "a {factor}x overload against a bounded queue must shed"
                );
                assert!(completed > 0, "overload must not starve admitted work");
            }
            rows.push(r);
        }
    }

    // -- chaos loop (with --chaos-seed): the resilience contract under
    //    seeded frame corruption -------------------------------------------
    if let Some(seed) = args.chaos_seed {
        let upstream: std::net::SocketAddr = args
            .addr
            .parse()
            .expect("--chaos-seed needs an explicit HOST:PORT --addr");
        let plan = FaultPlan {
            seed,
            drop_per_mille: 40,
            delay_per_mille: 30,
            delay: Duration::from_millis(10),
            truncate_per_mille: 30,
            bit_flip_per_mille: 50,
        };
        let proxy = FaultProxy::spawn(upstream, plan).expect("spawn fault proxy");
        let config = ReplicaSetConfig::builder()
            .deadline(Duration::from_secs(10))
            .attempt_timeout(Duration::from_millis(500))
            .backoff_base(Duration::from_millis(1))
            .backoff_cap(Duration::from_millis(20))
            .build()
            .expect("chaos replica-set config");
        let mut set = ReplicaSet::new(&[proxy.addr()], config).expect("chaos replica set");
        let total = if args.smoke { 50 } else { 400 };
        let mut latencies = Vec::with_capacity(total);
        let started = Instant::now();
        for i in 0..total {
            let request = QueryRequest::in_database((i * 131) % items, 10);
            let start = Instant::now();
            // The contract under chaos: every query completes — retries and
            // failover absorb the corruption, never the caller.
            let (response, status) = set
                .query(&request)
                .unwrap_or_else(|err| panic!("chaos query {i} failed: {err}"));
            assert!(status.is_complete(), "single healthy replica: no degrades");
            assert_eq!(response.top_k().len(), 10);
            latencies.push(start.elapsed().as_secs_f64());
        }
        let wall = started.elapsed();
        let r = row("net_chaos_c1", &latencies, total, wall);
        eprintln!(
            "  {:<16} p50 {:>9.1} us   p95 {:>9.1} us   {:>9.0} q/s   seed {seed}  ({total} queries, all completed)",
            r.name, r.p50_us, r.p95_us, r.qps
        );
        rows.push(r);
    }

    // -- server-side accounting --------------------------------------------
    let after = control.stats().expect("final stats request failed");
    eprintln!(
        "  server: completed {}  shed_overloaded {}  shed_draining {}  bad_requests {}  queue {}/{}",
        after.completed,
        after.shed_overloaded,
        after.shed_draining,
        after.bad_requests,
        after.queue_depth,
        after.queue_capacity
    );
    assert!(after.completed >= before.completed + rows[0].qps as u64 / 10);
    assert_eq!(
        after.bad_requests, before.bad_requests,
        "load_gen sent only valid requests"
    );
    if args.smoke {
        assert_eq!(
            after.shed_overloaded, before.shed_overloaded,
            "smoke gate: trivial load must not shed"
        );
    }

    // -- write the baseline rows -------------------------------------------
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = if args.smoke {
        let dir = root.join("target");
        std::fs::create_dir_all(&dir).expect("create target dir");
        dir.join("BENCH_query.net.smoke.json")
    } else {
        root.join("BENCH_query.json")
    };
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) => merge_rows(&parse_scenarios(&existing).unwrap_or_default(), &rows),
        Err(_) => rows.clone(),
    };
    let json = render_json(&merged, args.smoke);
    validate_json(&json).expect("load_gen emitted invalid JSON");
    std::fs::write(&path, &json).expect("write baseline file");
    let reread = std::fs::read_to_string(&path).expect("re-read baseline file");
    let landed = parse_scenarios(&reread).expect("baseline file on disk is invalid");
    for r in &rows {
        assert!(
            landed.iter().any(|l| l.name == r.name && l.qps > 0.0),
            "row {} missing from the baseline file",
            r.name
        );
    }
    eprintln!("wrote {}", path.display());

    if args.drain {
        control.drain_server().expect("drain request failed");
        eprintln!("load_gen: server drain acknowledged");
    }
}
