//! Figure 1 runner: search time of every method on the four datasets.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::fig1_search_time::{run, Fig1Options};
use mogul_eval::scenarios::standard_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenarios = standard_scenarios(&config).expect("build scenarios");
    let table = run(&scenarios, &config, &Fig1Options::default()).expect("figure 1");
    println!("{table}");
}
