//! Figure 2 runner: P@k versus the number of EMR anchor points (COIL-like).

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::anchor_sweep::{figure2_table, run_sweep, AnchorSweepOptions};
use mogul_eval::scenarios::limited_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenario = &limited_scenarios(&config, 1).expect("build scenario")[0];
    let points = run_sweep(scenario, &config, &AnchorSweepOptions::default()).expect("sweep");
    println!("{}", figure2_table(&points));
}
