//! Machine-readable performance baseline: run the search / serving / update
//! hot paths at fixed sizes and write `BENCH_query.json` at the repository
//! root, so the perf trajectory is trackable across commits.
//!
//! ```text
//! cargo run --release -p mogul-bench --bin perf_baseline                   # full run, writes BENCH_query.json
//! cargo run --release -p mogul-bench --bin perf_baseline -- --smoke       # tiny sizes, writes target/BENCH_query.smoke.json
//! cargo run --release -p mogul-bench --bin perf_baseline -- --validate    # check the committed BENCH_query.json, run nothing
//! ```
//!
//! Schema (one trajectory point per run):
//!
//! ```json
//! {
//!   "git_rev": "<short rev or \"unknown\">",
//!   "date": "YYYY-MM-DD",
//!   "smoke": false,
//!   "scenarios": { "<name>": { "p50_us": 1.0, "p95_us": 2.0, "qps": 3.0 } }
//! }
//! ```
//!
//! `p50_us`/`p95_us` are per-*iteration* latencies — one query for the
//! scalar scenarios, one whole batch for the `*_batch*` / `serve_*`
//! scenarios — while `qps` is always queries (not batches) per second, so
//! the scalar and batched rows of one hot path are directly comparable.
//!
//! Asserted invariants (the acceptance gate of the batched query engine):
//!
//! * full run — the panel serving path is at least **2×** the scalar
//!   serving path in single-core queries/sec at batch size 32;
//! * smoke run — batched throughput is at least scalar throughput, and the
//!   emitted JSON round-trips through a validator.
//!
//! See `docs/PERFORMANCE.md` for how to read and refresh the file.

use mogul_bench::baseline::{
    merge_rows, parse_scenarios, percentile_us, render_json, validate_document, validate_json,
    ScenarioRow,
};
use mogul_core::persist;
use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy};
use mogul_core::wal::{self, Wal, WalOp, WalSync};
use mogul_core::{
    BatchWorkspace, MogulConfig, MogulIndex, OosWorkspace, OutOfSampleConfig, OutOfSampleIndex,
    SearchMode, SearchWorkspace,
};
use mogul_data::web::{web_like, WebLikeConfig};
use mogul_graph::knn::{knn_graph, KnnConfig};
use mogul_serve::net::NetServer;
use mogul_serve::resilience::{ReplicaSet, ReplicaSetConfig};
use mogul_serve::{
    Dispatch, QueryRequest, QueryServer, ServeError, ServeOptions, ShardFault, ShardedWriter,
};
use std::sync::Arc;
use std::time::Instant;

/// Batch size of the batched scenarios (the acceptance gate measures ≥ 32).
const BATCH: usize = 32;

/// Every row a **full** trajectory point must carry: the rows this binary
/// writes plus the `net_*` rows `load_gen` merges in. `--validate` (and CI)
/// enforces this list against the committed `BENCH_query.json`, so a schema
/// or scenario rename cannot silently drop a row from the trajectory.
const REQUIRED_FULL_ROWS: &[&str] = &[
    "search_scalar",
    "search_batch32",
    "oos_scalar",
    "oos_batch32",
    "serve_scalar_b32",
    "serve_panel_b32",
    "serve_mixed_scalar_b32",
    "serve_mixed_panel_b32",
    "kernel_unit_lower_b8",
    "kernel_unit_upper_b8",
    "kernel_scale_diag",
    "precompute_serial",
    "precompute_parallel",
    "update_insert",
    "cold_start",
    "cold_start_precompute",
    "cold_start_replay",
    "shard_precompute",
    "shard_precompute_serial",
    "shard_query_s1",
    "shard_query_s4",
    "failover_p50",
    "degraded_query",
    "net_closed_c1",
    "net_closed_c2",
    "net_closed_c4",
    "net_open_half",
    "net_open_10x",
];

/// `--validate [path]`: parse and schema-check an existing baseline file
/// (default: the committed `BENCH_query.json`) without running anything.
/// Exits nonzero on any violation; CI runs this against the committed file.
fn run_validate(path_arg: Option<&str>) -> ! {
    let default = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_query.json");
    let path = path_arg.map(std::path::PathBuf::from).unwrap_or(default);
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(err) => {
            eprintln!(
                "perf_baseline --validate: cannot read {}: {err}",
                path.display()
            );
            std::process::exit(1);
        }
    };
    match validate_document(&json, REQUIRED_FULL_ROWS) {
        Ok(doc) if doc.smoke => {
            eprintln!(
                "perf_baseline --validate: {} is a smoke run — the committed baseline \
                 must come from a full run",
                path.display()
            );
            std::process::exit(1);
        }
        Ok(doc) => {
            eprintln!(
                "perf_baseline --validate: {} ok ({} scenarios, rev {}, {})",
                path.display(),
                doc.rows.len(),
                doc.git_rev,
                doc.date
            );
            std::process::exit(0);
        }
        Err(err) => {
            eprintln!(
                "perf_baseline --validate: {} invalid: {err}",
                path.display()
            );
            std::process::exit(1);
        }
    }
}

/// When set, this binary runs as one replica of the failover scenario
/// instead of benchmarking: serve a small sharded index, publish the bound
/// address to the named file, run until killed.
const REPLICA_ADDR_FILE_ENV: &str = "MOGUL_BENCH_REPLICA_ADDR_FILE";

/// The small deterministic 3-shard corpus shared by the replica child
/// processes and the in-process degraded scenario. Every process builds it
/// identically, so replicas are interchangeable.
fn resilience_index() -> mogul_core::ShardedIndex {
    let mut features = Vec::new();
    for c in 0..3 {
        for i in 0..32 {
            features.push(vec![
                100.0 * c as f64 + 0.05 * i as f64,
                10.0 * c as f64 + 0.02 * (i % 7) as f64,
            ]);
        }
    }
    let config = mogul_core::ShardedConfig::with_shards(3)
        .shard_probes(3)
        .builder(IndexBuilder::new().knn_k(4).exact_ranking());
    let (index, _report) =
        mogul_core::ShardedIndex::build(features, config).expect("resilience corpus");
    index
}

/// The replica-child body: bind a sharded front door, publish the address
/// atomically (write + rename), serve until SIGKILLed by the parent.
fn run_replica_child(addr_file: std::path::PathBuf) {
    let (server, _writer) = ShardedWriter::new(resilience_index());
    let options = ServeOptions::builder()
        .workers(2)
        .queue_capacity(64)
        .build()
        .expect("serve options");
    let net = NetServer::bind_sharded("127.0.0.1:0", server, options).expect("bind replica");
    let tmp = addr_file.with_extension("tmp");
    std::fs::write(&tmp, format!("{}\n", net.local_addr())).expect("write addr file");
    std::fs::rename(&tmp, &addr_file).expect("publish addr file");
    let _ = net.run();
}

/// Spawn this binary as a replica child and wait for its published address.
fn spawn_bench_replica(
    dir: &std::path::Path,
    tag: &str,
) -> (std::process::Child, std::net::SocketAddr) {
    let addr_file = dir.join(format!("replica-{tag}.addr"));
    let _ = std::fs::remove_file(&addr_file);
    let exe = std::env::current_exe().expect("current exe");
    let child = std::process::Command::new(&exe)
        .env(REPLICA_ADDR_FILE_ENV, &addr_file)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn replica child");
    let deadline = Instant::now() + std::time::Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "replica child never published its address"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    (child, addr)
}

struct ScenarioResult {
    name: &'static str,
    /// Per-iteration latencies in seconds.
    latencies: Vec<f64>,
    /// Queries answered per iteration.
    queries_per_iter: usize,
}

impl ScenarioResult {
    fn p50_us(&self) -> f64 {
        percentile_us(&self.latencies, 0.50)
    }
    fn p95_us(&self) -> f64 {
        percentile_us(&self.latencies, 0.95)
    }
    fn qps(&self) -> f64 {
        let total: f64 = self.latencies.iter().sum();
        (self.latencies.len() * self.queries_per_iter) as f64 / total.max(1e-12)
    }
    fn row(&self) -> ScenarioRow {
        ScenarioRow {
            name: self.name.to_string(),
            p50_us: self.p50_us(),
            p95_us: self.p95_us(),
            qps: self.qps(),
        }
    }
}

/// Time `rounds` repetitions of `iter`, recording one latency per call.
fn time_rounds(
    rounds: usize,
    queries_per_iter: usize,
    mut iter: impl FnMut(),
) -> (Vec<f64>, usize) {
    let mut latencies = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        iter();
        latencies.push(start.elapsed().as_secs_f64());
    }
    (latencies, queries_per_iter)
}

fn main() {
    // Replica-child mode never benchmarks: it serves until killed.
    if let Some(addr_file) = std::env::var_os(REPLICA_ADDR_FILE_ENV) {
        run_replica_child(std::path::PathBuf::from(addr_file));
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        run_validate(args.get(i + 1).map(String::as_str));
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    // Fixed sizes: large enough that the full run reflects serving reality,
    // small enough that the smoke run finishes in CI seconds.
    let (n, dim, topics, rounds) = if smoke {
        (2_000usize, 16usize, 20usize, 8usize)
    } else {
        (12_000, 32, 60, 40)
    };

    eprintln!("perf_baseline: building the {n}-item scenario (smoke = {smoke}) ...");
    let dataset = web_like(&WebLikeConfig {
        num_points: n,
        num_topics: topics,
        dim,
        background_fraction: 0.2,
        ..Default::default()
    })
    .expect("generate dataset");
    let graph = knn_graph(dataset.features(), KnnConfig::with_k(10)).expect("knn graph");
    let index = MogulIndex::build(&graph, MogulConfig::default()).expect("build index");
    let oos = Arc::new(
        OutOfSampleIndex::new(
            index,
            dataset.features().to_vec(),
            OutOfSampleConfig::default(),
        )
        .expect("attach features"),
    );
    let index = oos.index();
    let nodes = index.num_nodes();

    // Deterministic workloads: in-database ids spread over the collection,
    // out-of-sample probes derived from perturbed database vectors.
    let queries: Vec<usize> = (0..256).map(|i| (i * 131) % nodes).collect();
    let probes: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            let mut f = dataset.features()[(i * 97) % nodes].clone();
            for (d, v) in f.iter_mut().enumerate() {
                *v += 0.01 * ((i + d) % 5) as f64;
            }
            f
        })
        .collect();
    let probe_refs: Vec<&[f64]> = probes.iter().map(|f| f.as_slice()).collect();

    let mut results: Vec<ScenarioResult> = Vec::new();

    // -- core search: scalar vs panel -------------------------------------
    let mut search_ws = SearchWorkspace::new();
    let mut batch_ws = BatchWorkspace::new();
    for &q in &queries[..BATCH] {
        index.search_in(&mut search_ws, q, 10).expect("warm scalar");
    }
    index
        .search_batch_in(&mut batch_ws, &queries[..BATCH], 10, SearchMode::Pruned)
        .expect("warm batch");
    {
        let mut latencies = Vec::new();
        for _ in 0..rounds {
            for &q in &queries {
                let start = Instant::now();
                index.search_in(&mut search_ws, q, 10).expect("search");
                latencies.push(start.elapsed().as_secs_f64());
            }
        }
        results.push(ScenarioResult {
            name: "search_scalar",
            latencies,
            queries_per_iter: 1,
        });
    }
    {
        let mut latencies = Vec::new();
        for _ in 0..rounds {
            for chunk in queries.chunks(BATCH) {
                let start = Instant::now();
                index
                    .search_batch_in(&mut batch_ws, chunk, 10, SearchMode::Pruned)
                    .expect("batch search");
                latencies.push(start.elapsed().as_secs_f64());
            }
        }
        results.push(ScenarioResult {
            name: "search_batch32",
            latencies,
            queries_per_iter: BATCH,
        });
    }

    // -- out-of-sample: scalar vs panel ------------------------------------
    let mut oos_ws = OosWorkspace::new();
    {
        let mut latencies = Vec::new();
        for _ in 0..rounds {
            for feature in &probe_refs {
                let start = Instant::now();
                oos.query_in(&mut oos_ws, feature, 10).expect("oos query");
                latencies.push(start.elapsed().as_secs_f64());
            }
        }
        results.push(ScenarioResult {
            name: "oos_scalar",
            latencies,
            queries_per_iter: 1,
        });
    }
    {
        let mut latencies = Vec::new();
        for _ in 0..rounds {
            for chunk in probe_refs.chunks(BATCH) {
                let start = Instant::now();
                oos.query_batch_in(&mut batch_ws, chunk, 10)
                    .expect("oos batch");
                latencies.push(start.elapsed().as_secs_f64());
            }
        }
        results.push(ScenarioResult {
            name: "oos_batch32",
            latencies,
            queries_per_iter: BATCH,
        });
    }

    // -- serving: scalar dispatch vs panel dispatch, one worker ------------
    // The asserted workload is a batch of 32 in-database requests (the
    // traffic shape the panel engine targets: one kind, one k, full-width
    // panels); a mixed half-in-database / half-out-of-sample batch is
    // measured alongside — its out-of-sample halves spend much of their
    // time in the per-query phase-1 feature scan, which batching cannot
    // share, so its speedup is structurally lower.
    let indb_batch: Vec<QueryRequest> = queries[..BATCH]
        .iter()
        .map(|&q| QueryRequest::in_database(q, 10))
        .collect();
    let mut mixed_batch = Vec::new();
    for &q in &queries[..BATCH / 2] {
        mixed_batch.push(QueryRequest::in_database(q, 10));
    }
    for feature in probes.iter().take(BATCH / 2) {
        mixed_batch.push(QueryRequest::out_of_sample(feature.clone(), 10));
    }
    let scalar_server = QueryServer::new(
        Arc::clone(&oos),
        ServeOptions::builder()
            .workers(1)
            .dispatch(Dispatch::Scalar)
            .build()
            .expect("valid options"),
    );
    let panel_server = QueryServer::new(Arc::clone(&oos), ServeOptions::with_workers(1));
    for server in [&scalar_server, &panel_server] {
        for batch in [&indb_batch, &mixed_batch] {
            for answer in server.serve_batch(batch) {
                answer.expect("warm serve");
            }
        }
    }
    for (name, server, batch) in [
        ("serve_scalar_b32", &scalar_server, &indb_batch),
        ("serve_panel_b32", &panel_server, &indb_batch),
        ("serve_mixed_scalar_b32", &scalar_server, &mixed_batch),
        ("serve_mixed_panel_b32", &panel_server, &mixed_batch),
    ] {
        let (latencies, per_iter) = time_rounds(rounds * 8, batch.len(), || {
            for answer in server.serve_batch(batch) {
                answer.expect("serve");
            }
        });
        results.push(ScenarioResult {
            name,
            latencies,
            queries_per_iter: per_iter,
        });
    }

    // -- lane kernels + wave-parallel precompute ---------------------------
    // `kernel_*` rows time the multi-RHS sweeps behind every panel solve in
    // isolation, under whatever kernel `active_kernel()` dispatches to —
    // scalar by default, AVX2 under `--features simd` on a capable CPU — so
    // the trajectory shows the kernel engine's effect without serving noise.
    // `precompute_{serial,parallel}` time the complete LDL^T factorization
    // of the same matrix with the wave-parallel knob off and on. The matrix
    // is many small rings with sparse chords: nnz/row like the `I - alpha*S`
    // systems the index factorizes, with a shallow elimination tree so the
    // waves are wide enough to engage the parallel path.
    {
        let ring_len = 5usize;
        let rings = n / ring_len;
        let kn = rings * ring_len;
        let mut coo = mogul_sparse::CooMatrix::new(kn, kn);
        let mut degree = vec![0.0f64; kn];
        let push_edge =
            |coo: &mut mogul_sparse::CooMatrix, degree: &mut Vec<f64>, a: usize, b: usize| {
                coo.push_symmetric(a, b, -0.2).expect("bench edge");
                degree[a] += 0.2;
                degree[b] += 0.2;
            };
        for r in 0..rings {
            let base = r * ring_len;
            for i in 0..ring_len {
                push_edge(&mut coo, &mut degree, base + i, base + (i + 1) % ring_len);
            }
            if r + 1 < rings && r % 7 == 0 {
                push_edge(&mut coo, &mut degree, base, base + ring_len);
            }
        }
        for (i, &d) in degree.iter().enumerate() {
            coo.push(i, i, d + 1.0).expect("bench diagonal");
        }
        let matrix = coo.to_csr();

        let serial_start = Instant::now();
        let serial = mogul_sparse::complete_ldl_threaded(&matrix, 1).expect("serial ldl");
        let serial_secs = serial_start.elapsed().as_secs_f64();
        let parallel_start = Instant::now();
        let parallel = mogul_sparse::complete_ldl_threaded(&matrix, 0).expect("parallel ldl");
        let parallel_secs = parallel_start.elapsed().as_secs_f64();
        assert_eq!(
            serial.factors.d, parallel.factors.d,
            "wave-parallel factorization diverged from serial"
        );
        results.push(ScenarioResult {
            name: "precompute_serial",
            latencies: vec![serial_secs],
            queries_per_iter: 1,
        });
        results.push(ScenarioResult {
            name: "precompute_parallel",
            latencies: vec![parallel_secs],
            queries_per_iter: 1,
        });
        eprintln!(
            "  wave-parallel ldl: {:.2}x vs serial ({} cores, kernel {:?})",
            serial_secs / parallel_secs.max(1e-12),
            mogul_sparse::effective_threads(0),
            mogul_sparse::kernel::active_kernel(),
        );

        let factors = &serial.factors;
        let kind = mogul_sparse::kernel::active_kernel();
        let width = 8usize;
        let b: Vec<f64> = (0..kn * width)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let mut x = Vec::new();
        use mogul_sparse::triangular::{
            scale_diag_multi_into_with, solve_unit_lower_multi_into_with,
            solve_unit_upper_multi_into_with,
        };
        solve_unit_lower_multi_into_with(kind, &factors.l, &b, width, &mut x).expect("warm lower");
        let (latencies, per_iter) = time_rounds(rounds * 8, width, || {
            solve_unit_lower_multi_into_with(kind, &factors.l, &b, width, &mut x)
                .expect("kernel lower");
        });
        results.push(ScenarioResult {
            name: "kernel_unit_lower_b8",
            latencies,
            queries_per_iter: per_iter,
        });
        let (latencies, per_iter) = time_rounds(rounds * 8, width, || {
            solve_unit_upper_multi_into_with(kind, &factors.u, &b, width, &mut x)
                .expect("kernel upper");
        });
        results.push(ScenarioResult {
            name: "kernel_unit_upper_b8",
            latencies,
            queries_per_iter: per_iter,
        });
        // The panel is refilled every iteration: repeated in-place scaling
        // would drift the values toward denormals and poison the timings.
        let mut panel = b.clone();
        let (latencies, per_iter) = time_rounds(rounds * 8, width, || {
            panel.copy_from_slice(&b);
            scale_diag_multi_into_with(kind, &factors.d, width, &mut panel).expect("kernel scale");
        });
        results.push(ScenarioResult {
            name: "kernel_scale_diag",
            latencies,
            queries_per_iter: per_iter,
        });
    }

    // -- incremental updates: apply latency --------------------------------
    {
        let m = if smoke { 600 } else { 2_000 };
        let update_features: Vec<Vec<f64>> = dataset.features()[..m].to_vec();
        let mut updatable = IndexBuilder::new()
            .knn_k(5)
            .rebuild_policy(RebuildPolicy::never())
            .build(update_features)
            .expect("updatable index");
        let mut latencies = Vec::new();
        for i in 0..(if smoke { 4 } else { 12 }) {
            let mut delta = IndexDelta::new();
            let mut feature = dataset.features()[(i * 41) % m].clone();
            feature[0] += 0.05;
            delta.insert(feature);
            let start = Instant::now();
            updatable.apply(&delta).expect("apply delta");
            latencies.push(start.elapsed().as_secs_f64());
        }
        results.push(ScenarioResult {
            name: "update_insert",
            latencies,
            queries_per_iter: 1,
        });
    }

    // -- cold start: load a persisted index vs precompute from scratch ------
    // The persistence acceptance gate: restarting from a `MOG1` file must be
    // at least 10x faster than redoing the whole precompute (k-NN graph +
    // clustering/ordering + LDL^T factorization + bounds) at 8k items.
    let cold_speedup;
    let cold_m = if smoke { 2_000 } else { 8_000 };
    let mono_precompute_secs;
    {
        let m = cold_m;
        let cold_features: Vec<Vec<f64>> = dataset.features()[..m].to_vec();
        eprintln!("perf_baseline: cold-start scenario over {m} items ...");
        let pre_start = Instant::now();
        let cold_graph = knn_graph(&cold_features, KnnConfig::with_k(10)).expect("knn graph");
        let cold_index =
            MogulIndex::build(&cold_graph, MogulConfig::default()).expect("build index");
        let cold_oos =
            OutOfSampleIndex::new(cold_index, cold_features, OutOfSampleConfig::default())
                .expect("attach features");
        let precompute_secs = pre_start.elapsed().as_secs_f64();
        mono_precompute_secs = precompute_secs;

        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("target");
        std::fs::create_dir_all(&dir).expect("create target dir");
        let path = dir.join("BENCH_cold_start.mog1");
        persist::save_index(&cold_oos, &path).expect("save index");

        let mut load_latencies = Vec::new();
        for _ in 0..(if smoke { 3 } else { 10 }) {
            let start = Instant::now();
            let loaded = persist::load_index(&path).expect("load index");
            load_latencies.push(start.elapsed().as_secs_f64());
            assert_eq!(loaded.index().num_nodes(), m, "loaded index is wrong");
        }
        // For these two rows "qps" reads as cold starts per second; the
        // p50/p95 columns are the interesting ones.
        results.push(ScenarioResult {
            name: "cold_start",
            latencies: load_latencies,
            queries_per_iter: 1,
        });
        results.push(ScenarioResult {
            name: "cold_start_precompute",
            latencies: vec![precompute_secs],
            queries_per_iter: 1,
        });
        let load_p50_secs = percentile_us(&results[results.len() - 2].latencies, 0.50) / 1e6;
        cold_speedup = precompute_secs / load_p50_secs.max(1e-12);
    }

    // -- sharding: partitioned precompute + scatter-gather queries ----------
    // `shard_precompute` builds an S=4 sharded index (parallel scoped
    // threads) over the same corpus the cold-start scenario precomputes
    // monolithically, so the two rows are directly comparable;
    // `shard_precompute_serial` is the same partitioned build with the
    // parallel knob off, isolating the thread win from the partitioning
    // win. `shard_query_s{1,4}` time the scatter-gather in-database path.
    //
    // Gates: the partitioned build must not be slower than the monolithic
    // one (each shard's k-NN graph and factorization are superlinear in
    // shard size, so partitioning alone pays even on one core); the
    // parallel-vs-serial ratio is asserted only when this container
    // actually has more than one core.
    let shard_ratio;
    {
        let shards = 4usize;
        let shard_features: Vec<Vec<f64>> = dataset.features()[..cold_m].to_vec();
        eprintln!("perf_baseline: sharded scenario over {cold_m} items ({shards} shards) ...");
        let sharded_builder = mogul_core::update::IndexBuilder::new().knn_k(10);
        let config = mogul_core::ShardedConfig::with_shards(shards).builder(sharded_builder);

        let start = Instant::now();
        let (sharded, report) =
            mogul_core::ShardedIndex::build(shard_features.clone(), config.parallel(true))
                .expect("sharded build");
        let parallel_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let (_serial, _) =
            mogul_core::ShardedIndex::build(shard_features.clone(), config.parallel(false))
                .expect("serial sharded build");
        let serial_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let (single, _) = mogul_core::ShardedIndex::build(
            shard_features,
            mogul_core::ShardedConfig::with_shards(1).builder(sharded_builder),
        )
        .expect("single-shard build");
        let s1_secs = start.elapsed().as_secs_f64();

        results.push(ScenarioResult {
            name: "shard_precompute",
            latencies: vec![parallel_secs],
            queries_per_iter: 1,
        });
        results.push(ScenarioResult {
            name: "shard_precompute_serial",
            latencies: vec![serial_secs],
            queries_per_iter: 1,
        });

        shard_ratio = mono_precompute_secs / parallel_secs.max(1e-12);
        let parallel_ratio = serial_secs / parallel_secs.max(1e-12);
        let cores = mogul_sparse::effective_threads(0);
        eprintln!(
            "  sharded precompute: {shard_ratio:.2}x vs monolithic, parallel {parallel_ratio:.2}x \
             vs serial ({cores} cores; s1 build {s1_secs:.2}s)"
        );
        assert!(
            report.parallel || cores == 1,
            "the parallel build must use scoped threads when cores are available"
        );
        if cores > 1 {
            assert!(
                parallel_ratio >= 1.0,
                "gate: the parallel sharded build must not be slower than the serial one \
                 on a {cores}-core container (got {parallel_ratio:.2}x)"
            );
        }

        // Scatter-gather query rows: identical ids against S=1 and S=4.
        let snapshot_s4 = sharded.snapshot();
        let snapshot_s1 = single.snapshot();
        let shard_queries: Vec<usize> = (0..128).map(|i| (i * 131) % cold_m).collect();
        let mut shard_ws = mogul_core::ShardedWorkspace::new();
        for &q in &shard_queries[..8] {
            snapshot_s4
                .query_by_id_in(&mut shard_ws, q, 10)
                .expect("warm sharded query");
        }
        for (name, snapshot) in [
            ("shard_query_s1", &snapshot_s1),
            ("shard_query_s4", &snapshot_s4),
        ] {
            let mut latencies = Vec::new();
            for _ in 0..rounds {
                for &q in &shard_queries {
                    let start = Instant::now();
                    snapshot
                        .query_by_id_in(&mut shard_ws, q, 10)
                        .expect("sharded query");
                    latencies.push(start.elapsed().as_secs_f64());
                }
            }
            results.push(ScenarioResult {
                name,
                latencies,
                queries_per_iter: 1,
            });
        }
    }

    // -- crash recovery: checkpoint + WAL replay ----------------------------
    // `cold_start_replay` measures the full durable restart: load the
    // checkpoint, scan the log, replay every record past the watermark. The
    // smoke gate replays the log and asserts the recovered index answers
    // bit-identically to the writer that never crashed.
    {
        let m = if smoke { 600 } else { 2_000 };
        let k_updates = if smoke { 16usize } else { 64 };
        let wal_features: Vec<Vec<f64>> = dataset.features()[..m].to_vec();
        let mut live = IndexBuilder::new()
            .knn_k(5)
            .rebuild_policy(RebuildPolicy::never())
            .build(wal_features)
            .expect("updatable index");
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("target")
            .join("BENCH_wal");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create wal bench dir");
        let ckpt = dir.join("ckpt.mog1");
        persist::save_updatable(&live, &ckpt).expect("save checkpoint");
        let wal_dir = dir.join("wal");
        let mut log =
            Wal::create(&wal_dir, live.epoch(), WalSync::EveryRecord).expect("create wal");
        eprintln!(
            "perf_baseline: crash-recovery scenario ({m} items, {k_updates} wal records) ..."
        );
        for i in 0..k_updates {
            let mut delta = IndexDelta::new();
            let mut feature = dataset.features()[(i * 17) % m].clone();
            feature[0] += 0.03;
            delta.insert(feature);
            log.append(i as u64 + 1, &WalOp::Delta(delta.clone()))
                .expect("append wal record");
            live.apply(&delta).expect("apply delta");
        }
        drop(log);

        let mut replay_latencies = Vec::new();
        let mut last_recovered = None;
        for _ in 0..(if smoke { 3 } else { 10 }) {
            let start = Instant::now();
            let (recovered, _log, outcome) =
                wal::recover_updatable(&ckpt, &wal_dir, WalSync::EveryRecord).expect("recover");
            replay_latencies.push(start.elapsed().as_secs_f64());
            assert_eq!(outcome.replay.applied, k_updates, "short replay");
            assert_eq!(recovered.epoch(), live.epoch(), "recovery missed epochs");
            last_recovered = Some(recovered);
        }
        // The recovery gate: replayed answers are bit-identical to the
        // writer that never crashed.
        let recovered = last_recovered.expect("at least one recovery").snapshot();
        let live_snap = live.snapshot();
        assert_eq!(live_snap.item_ids(), recovered.item_ids());
        for id in live_snap.item_ids().into_iter().step_by(37) {
            assert_eq!(
                live_snap.query_by_id(id, 10).expect("live query"),
                recovered.query_by_id(id, 10).expect("recovered query"),
                "recovered answers diverged at id {id}"
            );
        }
        results.push(ScenarioResult {
            name: "cold_start_replay",
            latencies: replay_latencies,
            queries_per_iter: 1,
        });
    }

    // -- resilience: failover latency + degraded scatter --------------------
    // `failover_p50` measures the client-visible cost of losing the replica
    // a query was routed to: per round, stand up two real replica
    // processes, SIGKILL the one the replica set's cursor prefers, and
    // time the next query end to end (dead-connection detection + failover
    // + answer). `degraded_query` times the sharded degraded path itself
    // with one of three shards failed — the overhead of answering from the
    // survivors.
    {
        let failover_rounds = if smoke { 3 } else { 8 };
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .join("target")
            .join("BENCH_replicas");
        std::fs::create_dir_all(&dir).expect("create replica dir");
        eprintln!("perf_baseline: failover scenario ({failover_rounds} kill rounds) ...");
        let mut latencies = Vec::new();
        for round in 0..failover_rounds {
            let (mut a, addr_a) = spawn_bench_replica(&dir, &format!("{round}-a"));
            let (mut b, addr_b) = spawn_bench_replica(&dir, &format!("{round}-b"));
            let config = ReplicaSetConfig::builder()
                .deadline(std::time::Duration::from_secs(8))
                .attempt_timeout(std::time::Duration::from_millis(500))
                .backoff_base(std::time::Duration::from_millis(1))
                .backoff_cap(std::time::Duration::from_millis(20))
                .build()
                .expect("replica set config");
            let mut set = ReplicaSet::new(&[addr_a, addr_b], config).expect("replica set");
            let request = QueryRequest::in_database((round * 17) % 96, 10);
            let (_, status) = set.query(&request).expect("warm failover query");
            assert!(status.is_complete());
            // Kill the replica the cursor prefers; time the failover.
            let victim = set.current_replica();
            let (victim_child, survivor_child) = if victim == addr_a {
                (&mut a, &mut b)
            } else {
                (&mut b, &mut a)
            };
            let _ = victim_child.kill();
            let _ = victim_child.wait();
            let start = Instant::now();
            let (_, status) = set.query(&request).expect("failover query");
            latencies.push(start.elapsed().as_secs_f64());
            assert!(status.is_complete(), "the surviving replica is whole");
            let _ = survivor_child.kill();
            let _ = survivor_child.wait();
        }
        // "qps" reads as failovers per second for this row; p50/p95 are the
        // interesting columns.
        results.push(ScenarioResult {
            name: "failover_p50",
            latencies,
            queries_per_iter: 1,
        });

        // Degraded scatter, in process: one of three shards failed.
        let (server, _writer) = ShardedWriter::new(resilience_index());
        server.set_fault_injector(Some(Arc::new(|shard| {
            (shard == 1).then(|| {
                ShardFault::Error(ServeError::Config {
                    reason: "bench fault".into(),
                })
            })
        })));
        let degraded_request = QueryRequest::out_of_sample(vec![0.5, 0.01], 10);
        let (_, status) = server
            .query_degraded(&degraded_request, false)
            .expect("warm degraded query");
        assert!(status.is_degraded(), "the bench fault must degrade");
        let (latencies, per_iter) = time_rounds(rounds * 16, 1, || {
            let (_, status) = server
                .query_degraded(&degraded_request, false)
                .expect("degraded query");
            debug_assert!(status.is_degraded());
        });
        results.push(ScenarioResult {
            name: "degraded_query",
            latencies,
            queries_per_iter: per_iter,
        });
    }

    // -- report, assert, write ---------------------------------------------
    let mut qps = std::collections::BTreeMap::new();
    for result in &results {
        eprintln!(
            "  {:<18} p50 {:>10.1} us   p95 {:>10.1} us   {:>9.0} q/s",
            result.name,
            result.p50_us(),
            result.p95_us(),
            result.qps()
        );
        qps.insert(result.name, result.qps());
    }
    let serve_speedup = qps["serve_panel_b32"] / qps["serve_scalar_b32"];
    let mixed_speedup = qps["serve_mixed_panel_b32"] / qps["serve_mixed_scalar_b32"];
    let search_speedup = qps["search_batch32"] / qps["search_scalar"];
    eprintln!(
        "  panel vs scalar: serve in-db {serve_speedup:.2}x, serve mixed {mixed_speedup:.2}x, \
         core in-db {search_speedup:.2}x (batch {BATCH}, 1 worker)"
    );
    eprintln!("  cold start: load is {cold_speedup:.0}x faster than precompute");
    if smoke {
        assert!(
            serve_speedup >= 1.0,
            "smoke gate: batched serving ({:.0} q/s) must not be slower than scalar ({:.0} q/s)",
            qps["serve_panel_b32"],
            qps["serve_scalar_b32"]
        );
        assert!(
            cold_speedup >= 1.0,
            "smoke gate: loading a saved index must not be slower than precompute \
             (got {cold_speedup:.2}x)"
        );
        assert!(
            shard_ratio >= 0.8,
            "smoke gate: the partitioned S=4 precompute must be at least on par with \
             the monolithic one (got {shard_ratio:.2}x)"
        );
    } else {
        assert!(
            serve_speedup >= 2.0,
            "acceptance gate: panel serving must be >= 2x scalar at batch {BATCH} \
             (got {serve_speedup:.2}x)"
        );
        assert!(
            cold_speedup >= 10.0,
            "acceptance gate: loading a saved 8k-item index must be >= 10x faster than \
             precompute from scratch (got {cold_speedup:.2}x)"
        );
        assert!(
            shard_ratio >= 1.0,
            "acceptance gate: the partitioned S=4 precompute must not be slower than \
             the monolithic one at 8k items (got {shard_ratio:.2}x)"
        );
    }

    let fresh: Vec<ScenarioRow> = results.iter().map(ScenarioResult::row).collect();
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = if smoke {
        let dir = root.join("target");
        std::fs::create_dir_all(&dir).expect("create target dir");
        dir.join("BENCH_query.smoke.json")
    } else {
        root.join("BENCH_query.json")
    };
    // Merge into the existing trajectory point so the net_* rows written by
    // `load_gen` survive a perf_baseline refresh (and vice versa).
    let merged = match std::fs::read_to_string(&path) {
        Ok(existing) => merge_rows(&parse_scenarios(&existing).unwrap_or_default(), &fresh),
        Err(_) => fresh,
    };
    let json = render_json(&merged, smoke);
    validate_json(&json).expect("perf_baseline emitted invalid JSON");
    std::fs::write(&path, &json).expect("write baseline file");
    // Round-trip what actually landed on disk through the full schema
    // validator. Required-row coverage is only enforced for the committed
    // full-run file (via `--validate` / CI): a from-scratch full run is
    // allowed to lack the `net_*` rows until `load_gen` merges them in.
    let reread = std::fs::read_to_string(&path).expect("re-read baseline file");
    let doc = mogul_bench::baseline::validate_document(&reread, &[])
        .expect("baseline file on disk violates the schema");
    assert!(!doc.rows.is_empty(), "baseline file lost its scenario rows");
    eprintln!("wrote {}", path.display());
}
