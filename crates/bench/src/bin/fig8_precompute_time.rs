//! Figure 8 runner: precomputation time of Mogul vs a random node ordering.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::fig8_precompute::{run, Fig8Options};
use mogul_eval::scenarios::standard_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenarios = standard_scenarios(&config).expect("build scenarios");
    let table = run(&scenarios, &config, &Fig8Options::default()).expect("figure 8");
    println!("{table}");
}
