//! Ablation runner: Mogul cost versus database size (O(n) verification).

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::ablations::{run_scaling, ScalingOptions};

fn main() {
    let config = runner_config(scale_from_args());
    let table = run_scaling(&config, &ScalingOptions::default()).expect("scaling ablation");
    println!("{table}");
}
