//! Figure 5 runner: effect of the sparse structure and the pruning estimation.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::fig5_pruning::{run, Fig5Options};
use mogul_eval::scenarios::standard_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenarios = standard_scenarios(&config).expect("build scenarios");
    let table = run(&scenarios, &config, &Fig5Options::default()).expect("figure 5");
    println!("{table}");
}
