//! Figure 9 runner: qualitative retrieval case study on the COIL-like dataset.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::fig9_case_study::{run, Fig9Options};
use mogul_eval::scenarios::limited_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenario = &limited_scenarios(&config, 1).expect("build scenario")[0];
    let table = run(scenario, &config, &Fig9Options::default()).expect("figure 9");
    println!("{table}");
}
