//! Figure 6 runner: non-zero pattern of the factor `L` under Mogul vs random
//! ordering.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::fig6_sparsity::{run, Fig6Options};
use mogul_eval::scenarios::standard_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenarios = standard_scenarios(&config).expect("build scenarios");
    let table = run(&scenarios, &config, &Fig6Options::default()).expect("figure 6");
    println!("{table}");
}
