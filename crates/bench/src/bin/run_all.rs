//! Run every figure/table experiment in sequence and print the full report.
//!
//! `cargo run -p mogul-bench --release --bin run_all [tiny|small|medium|large]`

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::{
    anchor_sweep, fig1_search_time, fig5_pruning, fig6_sparsity, fig7_out_of_sample,
    fig8_precompute, fig9_case_study,
};
use mogul_eval::scenarios::{limited_scenarios, standard_scenarios};

fn main() {
    let scale = scale_from_args();
    let config = runner_config(scale);
    println!("# Mogul evaluation suite (scale: {scale:?})\n");

    let scenarios = standard_scenarios(&config).expect("build scenarios");
    for s in &scenarios {
        println!(
            "dataset {:<14} n = {:>6}  edges = {:>7}  classes = {}",
            s.name(),
            s.len(),
            s.graph.num_edges(),
            s.spec.dataset.num_classes()
        );
    }
    println!();

    let fig1 = fig1_search_time::run(
        &scenarios,
        &config,
        &fig1_search_time::Fig1Options::default(),
    )
    .expect("figure 1");
    println!("{fig1}");

    let coil = &limited_scenarios(&config, 1).expect("coil scenario")[0];
    let points =
        anchor_sweep::run_sweep(coil, &config, &anchor_sweep::AnchorSweepOptions::default())
            .expect("anchor sweep");
    println!("{}", anchor_sweep::figure2_table(&points));
    println!("{}", anchor_sweep::figure3_table(&points));
    println!("{}", anchor_sweep::figure4_table(&points));

    let fig5 = fig5_pruning::run(&scenarios, &config, &fig5_pruning::Fig5Options::default())
        .expect("figure 5");
    println!("{fig5}");

    let fig6 = fig6_sparsity::run(&scenarios, &config, &fig6_sparsity::Fig6Options::default())
        .expect("figure 6");
    println!("{fig6}");

    let oos = fig7_out_of_sample::measure(
        &scenarios,
        &config,
        &fig7_out_of_sample::Fig7Options::default(),
    )
    .expect("figure 7 / table 2");
    println!("{}", fig7_out_of_sample::figure7_table(&oos));
    println!("{}", fig7_out_of_sample::table2(&oos));

    let fig8 = fig8_precompute::run(
        &scenarios,
        &config,
        &fig8_precompute::Fig8Options::default(),
    )
    .expect("figure 8");
    println!("{fig8}");

    let fig9 = fig9_case_study::run(coil, &config, &fig9_case_study::Fig9Options::default())
        .expect("figure 9");
    println!("{fig9}");
}
