//! Figure 7 runner: out-of-sample search time of Mogul vs EMR.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::fig7_out_of_sample::{figure7_table, measure, Fig7Options};
use mogul_eval::scenarios::standard_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenarios = standard_scenarios(&config).expect("build scenarios");
    let measurements = measure(&scenarios, &config, &Fig7Options::default()).expect("figure 7");
    println!("{}", figure7_table(&measurements));
}
