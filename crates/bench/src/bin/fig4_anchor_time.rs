//! Figure 4 runner: search time versus the number of EMR anchor points.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::anchor_sweep::{figure4_table, run_sweep, AnchorSweepOptions};
use mogul_eval::scenarios::limited_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenario = &limited_scenarios(&config, 1).expect("build scenario")[0];
    let points = run_sweep(scenario, &config, &AnchorSweepOptions::default()).expect("sweep");
    println!("{}", figure4_table(&points));
}
