//! Stand-alone network query server: build (or load) an index and serve it
//! over the `MGW1` wire protocol until drained.
//!
//! ```text
//! cargo run --release -p mogul-bench --bin serve_net -- [options]
//!   --addr HOST:PORT      bind address            (default 127.0.0.1:0)
//!   --items N             synthetic corpus size   (default 2000)
//!   --dim D               feature dimension       (default 16)
//!   --workers W           worker threads, 0=auto  (default 0)
//!   --queue-capacity Q    admission queue bound   (default 1024)
//!   --max-inflight M      per-connection cap      (default 64)
//!   --index PATH          serve a MOG1 index file instead of synthesizing
//! ```
//!
//! Prints exactly one `listening on <addr>` line to stdout once the socket
//! is bound (scripts wait for it), then serves until a drain request
//! ([`mogul_serve::net::FrameKind::Drain`] on the wire, e.g. from
//! `load_gen --drain`) completes. Exits 0 after a clean drain.

use mogul_core::{MogulConfig, MogulIndex, OutOfSampleConfig, OutOfSampleIndex};
use mogul_data::web::{web_like, WebLikeConfig};
use mogul_graph::knn::{knn_graph, KnnConfig};
use mogul_serve::net::NetServer;
use mogul_serve::{QueryServer, ServeOptions};
use std::io::Write;
use std::sync::Arc;

struct Args {
    addr: String,
    items: usize,
    dim: usize,
    workers: usize,
    queue_capacity: usize,
    max_inflight: usize,
    index: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        items: 2_000,
        dim: 16,
        workers: 0,
        queue_capacity: 1024,
        max_inflight: 64,
        index: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i),
            "--items" => args.items = value(&mut i).parse().expect("--items"),
            "--dim" => args.dim = value(&mut i).parse().expect("--dim"),
            "--workers" => args.workers = value(&mut i).parse().expect("--workers"),
            "--queue-capacity" => {
                args.queue_capacity = value(&mut i).parse().expect("--queue-capacity")
            }
            "--max-inflight" => args.max_inflight = value(&mut i).parse().expect("--max-inflight"),
            "--index" => args.index = Some(value(&mut i)),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let options = ServeOptions::builder()
        .workers(args.workers)
        .queue_capacity(args.queue_capacity)
        .max_inflight_per_conn(args.max_inflight)
        .build()
        .unwrap_or_else(|err| {
            eprintln!("invalid configuration: {err}");
            std::process::exit(2);
        });

    let server = match &args.index {
        Some(path) => {
            eprintln!("serve_net: warm-starting from {path} ...");
            Arc::new(
                QueryServer::warm_start(path, options).unwrap_or_else(|err| {
                    eprintln!("failed to load {path}: {err}");
                    std::process::exit(1);
                }),
            )
        }
        None => {
            eprintln!(
                "serve_net: synthesizing a {}-item, {}-dim web-like corpus ...",
                args.items, args.dim
            );
            let dataset = web_like(&WebLikeConfig {
                num_points: args.items,
                num_topics: (args.items / 100).clamp(4, 64),
                dim: args.dim,
                background_fraction: 0.2,
                ..Default::default()
            })
            .expect("generate dataset");
            let graph = knn_graph(dataset.features(), KnnConfig::with_k(10)).expect("knn graph");
            let index = MogulIndex::build(&graph, MogulConfig::default()).expect("build index");
            let oos = OutOfSampleIndex::new(
                index,
                dataset.features().to_vec(),
                OutOfSampleConfig::default(),
            )
            .expect("attach features");
            Arc::new(QueryServer::new(Arc::new(oos), options))
        }
    };

    let net = NetServer::bind(&args.addr, server, options).unwrap_or_else(|err| {
        eprintln!("failed to bind {}: {err}", args.addr);
        std::process::exit(1);
    });
    // The contract with scripts: exactly one `listening on` line on stdout,
    // flushed before serving begins.
    println!("listening on {}", net.local_addr());
    std::io::stdout().flush().expect("flush stdout");
    match net.run() {
        Ok(()) => eprintln!("serve_net: drained, exiting"),
        Err(err) => {
            eprintln!("serve_net: server failed: {err}");
            std::process::exit(1);
        }
    }
}
