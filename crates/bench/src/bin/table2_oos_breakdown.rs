//! Table 2 runner: breakdown of out-of-sample search time.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::fig7_out_of_sample::{measure, table2, Fig7Options};
use mogul_eval::scenarios::standard_scenarios;

fn main() {
    let config = runner_config(scale_from_args());
    let scenarios = standard_scenarios(&config).expect("build scenarios");
    let measurements = measure(&scenarios, &config, &Fig7Options::default()).expect("table 2");
    println!("{}", table2(&measurements));
}
