//! Ablation runner: α and k-NN degree sweep on the COIL-like dataset.

use mogul_bench::{runner_config, scale_from_args};
use mogul_eval::experiments::ablations::{run_parameters, ParameterOptions};

fn main() {
    let config = runner_config(scale_from_args());
    let table = run_parameters(&config, &ParameterOptions::default()).expect("parameter ablation");
    println!("{table}");
}
