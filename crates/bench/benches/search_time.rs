//! Criterion version of Figure 1: per-query search time of every method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mogul_core::{
    EmrConfig, EmrSolver, InverseSolver, IterativeConfig, IterativeSolver, MogulConfig, MogulIndex,
    MrParams, Ranker,
};
use mogul_data::suite::SuiteScale;
use mogul_eval::scenarios::{limited_scenarios, ScenarioConfig};
use std::time::Duration;

fn config() -> ScenarioConfig {
    ScenarioConfig {
        scale: SuiteScale::Small,
        num_queries: 5,
        ..ScenarioConfig::default()
    }
}

fn bench_search_time(c: &mut Criterion) {
    let cfg = config();
    let scenario = &limited_scenarios(&cfg, 1).expect("scenario")[0];
    let params = MrParams::default();
    let queries = scenario.queries.clone();

    let mogul = MogulIndex::build(
        &scenario.graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .expect("mogul index");
    let emr = EmrSolver::new(
        scenario.spec.dataset.features(),
        params,
        EmrConfig::with_anchors(10),
    )
    .expect("emr");
    let iterative = IterativeSolver::new(&scenario.graph, params, IterativeConfig::default())
        .expect("iterative");
    let inverse = InverseSolver::new(&scenario.graph, params).expect("inverse");

    let mut group = c.benchmark_group("fig1_search_time");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for k in [5usize, 20] {
        group.bench_with_input(BenchmarkId::new("Mogul", k), &k, |b, &k| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(mogul.search(q, k).unwrap());
                }
            })
        });
    }
    group.bench_function("EMR(d=10)", |b| {
        b.iter(|| {
            for &q in &queries {
                std::hint::black_box(emr.top_k(q, 5).unwrap());
            }
        })
    });
    group.bench_function("Iterative", |b| {
        b.iter(|| {
            for &q in &queries {
                std::hint::black_box(iterative.top_k(q, 5).unwrap());
            }
        })
    });
    group.bench_function("Inverse(per-query)", |b| {
        b.iter(|| {
            for &q in &queries {
                std::hint::black_box(inverse.top_k(q, 5).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search_time);
criterion_main!(benches);
