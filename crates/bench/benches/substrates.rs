//! Micro-benchmarks of the substrates every figure depends on: k-NN graph
//! construction, modularity clustering, the node ordering, and the two
//! `L D Lᵀ` factorizations.

use criterion::{criterion_group, criterion_main, Criterion};
use mogul_data::suite::SuiteScale;
use mogul_eval::scenarios::{limited_scenarios, ScenarioConfig};
use mogul_graph::adjacency::ranking_system_matrix;
use mogul_graph::clustering::modularity::{modularity_clustering, ModularityConfig};
use mogul_graph::knn::{knn_graph, KnnConfig};
use mogul_graph::ordering::mogul_ordering_from_graph;
use mogul_sparse::{complete_ldl, incomplete_ldl};
use std::time::Duration;

fn bench_substrates(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        scale: SuiteScale::Small,
        num_queries: 1,
        ..ScenarioConfig::default()
    };
    let scenario = &limited_scenarios(&cfg, 1).expect("scenario")[0];
    let features = scenario.spec.dataset.features();
    let graph = &scenario.graph;
    let adjacency = graph.adjacency_matrix();
    let w = ranking_system_matrix(&adjacency, 0.99).expect("system matrix");

    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("knn_graph_k5", |b| {
        b.iter(|| std::hint::black_box(knn_graph(features, KnnConfig::with_k(5)).unwrap()))
    });
    group.bench_function("modularity_clustering", |b| {
        b.iter(|| std::hint::black_box(modularity_clustering(graph, &ModularityConfig::default())))
    });
    group.bench_function("algorithm1_ordering", |b| {
        b.iter(|| {
            std::hint::black_box(
                mogul_ordering_from_graph(graph, &ModularityConfig::default()).unwrap(),
            )
        })
    });
    group.bench_function("incomplete_ldl", |b| {
        b.iter(|| std::hint::black_box(incomplete_ldl(&w).unwrap()))
    });
    group.bench_function("complete_ldl", |b| {
        b.iter(|| std::hint::black_box(complete_ldl(&w).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
