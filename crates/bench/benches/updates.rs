//! Incremental-update throughput: applying an [`IndexDelta`] vs. paying for
//! a full precompute, plus the per-query cost of accumulated rebuild debt.
//!
//! The acceptance number this bench demonstrates: **inserting 1% of the
//! corpus incrementally is ≥ 10× faster than a full precompute** of the
//! grown corpus. The printed table reports both times and the speedup; the
//! criterion group tracks delta-apply latency by batch size and corrected
//! query latency by correction rank.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy, UpdatableIndex};
use mogul_data::sift::{sift_like, SiftLikeConfig};
use std::time::{Duration, Instant};

/// Corpus size of the headline comparison (1% = 80 inserts).
const CORPUS: usize = 8_000;
/// Dimensionality of the SIFT-like descriptors.
const DIM: usize = 32;

fn descriptors(count: usize) -> Vec<Vec<f64>> {
    let dataset = sift_like(&SiftLikeConfig {
        num_points: count,
        num_words: 64,
        dim: DIM,
        ..Default::default()
    })
    .expect("generate descriptors");
    dataset.features().to_vec()
}

fn build_index(features: Vec<Vec<f64>>) -> UpdatableIndex {
    IndexBuilder::new()
        .knn_k(5)
        .rebuild_policy(RebuildPolicy::never())
        .build(features)
        .expect("build updatable index")
}

fn bench_updates(c: &mut Criterion) {
    let grown = descriptors(CORPUS + CORPUS / 100);
    let (base, inserts) = grown.split_at(CORPUS);

    // Headline comparison: incremental insert of 1% of the corpus vs. the
    // full precompute an immutable index would need for the same growth.
    let mut index = build_index(base.to_vec());
    let mut delta = IndexDelta::new();
    for feature in inserts {
        delta.insert(feature.clone());
    }
    let incremental_start = Instant::now();
    let report = index.apply(&delta).expect("apply delta");
    let incremental_secs = incremental_start.elapsed().as_secs_f64();

    let full_start = Instant::now();
    let rebuilt = build_index(grown.clone());
    let full_secs = full_start.elapsed().as_secs_f64();
    black_box(&rebuilt);

    let speedup = full_secs / incremental_secs;
    println!(
        "\nincremental insert of 1% of a {CORPUS}-item corpus ({} inserts):",
        inserts.len()
    );
    println!("  full precompute : {full_secs:>8.3} s");
    println!(
        "  delta apply     : {incremental_secs:>8.3} s  (support {}, correction rank {})",
        report.debt.support, report.debt.correction_rank
    );
    println!("  speedup         : {speedup:>8.1}x  (acceptance floor: 10x)");
    assert!(
        speedup >= 10.0,
        "incremental insert must be >= 10x faster than full precompute, got {speedup:.1}x"
    );

    // Criterion group on a smaller corpus so each measurement stays short.
    let small = descriptors(1_200);
    let mut group = c.benchmark_group("updates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // Delta-apply latency vs. batch size (fresh index per iteration batch
    // would dominate, so each iteration re-applies onto a pre-built base by
    // rebuilding only when debt accumulates too far).
    for batch in [1usize, 8, 24] {
        group.bench_with_input(
            BenchmarkId::new("apply_insert", batch),
            &batch,
            |b, &batch| {
                let mut index = build_index(small.clone());
                b.iter(|| {
                    let mut delta = IndexDelta::new();
                    for i in 0..batch {
                        delta.insert(small[i * 7 % small.len()].clone());
                    }
                    let report = index.apply(&delta).expect("apply");
                    // Keep the correction from growing without bound across
                    // iterations (rebuild time is excluded from other samples'
                    // iterations only statistically, like any amortized cost).
                    if report.debt.support > 256 {
                        index.rebuild().expect("rebuild");
                    }
                    black_box(report.epoch)
                })
            },
        );
    }

    // Corrected-query latency vs. accumulated correction rank.
    for inserts in [0usize, 8, 32] {
        let mut index = build_index(small.clone());
        if inserts > 0 {
            let mut delta = IndexDelta::new();
            for i in 0..inserts {
                delta.insert(small[i * 11 % small.len()].clone());
            }
            index.apply(&delta).expect("apply");
        }
        let snapshot = index.snapshot();
        let rank = snapshot.correction_rank();
        let mut ws = mogul_core::update::SnapshotWorkspace::new();
        group.bench_with_input(BenchmarkId::new("query_at_rank", rank), &rank, |b, _| {
            let mut q = 0usize;
            b.iter(|| {
                q = (q + 13) % 600;
                black_box(snapshot.query_by_id_in(&mut ws, q, 10).expect("query"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
