//! Serving-layer throughput: queries/sec as a function of worker count and
//! batch size over one shared, immutable index (the `mogul-serve` crate).
//!
//! This is the scaling story the ROADMAP's north star cares about: per-query
//! work is `O(n)` substitution + pruning over read-only state, so throughput
//! should grow near-linearly with workers until the machine runs out of
//! cores. Besides the criterion timings, the bench prints an explicit
//! queries/sec table (with the speedup over one worker) because that is the
//! number the acceptance criteria and CHANGES.md track.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mogul_core::{OutOfSampleIndex, RetrievalEngine};
use mogul_data::sift::{sift_like, SiftLikeConfig};
use mogul_serve::{Dispatch, QueryRequest, QueryServer, ServeOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The large synthetic scenario: a SIFT-like descriptor collection with a
/// held-out out-of-sample workload, indexed once and shared by every server.
fn build_scenario() -> (Arc<OutOfSampleIndex>, Vec<QueryRequest>) {
    let dataset = sift_like(&SiftLikeConfig {
        num_points: 12_000,
        num_words: 80,
        dim: 32,
        ..Default::default()
    })
    .expect("generate descriptors");
    let (db, held_out) = dataset.split_out_queries(80, 11).expect("split queries");
    let engine = RetrievalEngine::builder()
        .knn_k(5)
        .approximate_graph(110, 4)
        .build(db.features().to_vec())
        .expect("build retrieval engine");

    let mut requests = Vec::new();
    for (i, (feature, _)) in held_out.iter().enumerate() {
        requests.push(QueryRequest::in_database(i * 31 % db.len(), 10));
        requests.push(QueryRequest::out_of_sample(feature.clone(), 10));
    }
    (Arc::new(engine.into_out_of_sample()), requests)
}

fn bench_serving(c: &mut Criterion) {
    let (index, requests) = build_scenario();

    // Explicit throughput table: queries/sec per worker count.
    println!(
        "\nserving throughput ({} mixed requests/batch)",
        requests.len()
    );
    let rounds = 3usize;
    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let server = QueryServer::new(Arc::clone(&index), ServeOptions::with_workers(workers));
        server.serve_batch(&requests); // warm the workspace pool
        let start = Instant::now();
        for _ in 0..rounds {
            for answer in server.serve_batch(&requests) {
                answer.expect("query failed");
            }
        }
        let qps = (rounds * requests.len()) as f64 / start.elapsed().as_secs_f64();
        let speedup = qps / *baseline.get_or_insert(qps);
        println!("  {workers} worker(s): {qps:>9.0} queries/sec  ({speedup:.2}x vs 1 worker)");
    }

    let mut group = c.benchmark_group("serving");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // Per-batch latency vs. worker count (full mixed batch).
    for workers in [1usize, 2, 4, 8] {
        let server = QueryServer::new(Arc::clone(&index), ServeOptions::with_workers(workers));
        server.serve_batch(&requests);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| server.serve_batch(&requests))
        });
    }

    // Per-batch latency vs. batch size (fixed 4 workers).
    let server = QueryServer::new(Arc::clone(&index), ServeOptions::with_workers(4));
    server.serve_batch(&requests);
    for batch_size in [1usize, 16, 64, requests.len()] {
        let slice = &requests[..batch_size.min(requests.len())];
        group.bench_with_input(
            BenchmarkId::new("batch_size", slice.len()),
            &batch_size,
            |b, _| b.iter(|| server.serve_batch(slice)),
        );
    }

    // Panel vs scalar dispatch on one core over homogeneous in-database
    // batches — the acceptance metric of the batched query engine. The
    // human-readable throughput table lives in `examples/serving.rs`, the
    // machine-readable trajectory in BENCH_query.json (perf_baseline bin).
    let n = index.index().num_nodes();
    let homogeneous: Vec<QueryRequest> = (0..32)
        .map(|i| QueryRequest::in_database((i * 131) % n, 10))
        .collect();
    for (label, options) in [
        (
            "dispatch_scalar_b32",
            ServeOptions::builder()
                .workers(1)
                .dispatch(Dispatch::Scalar)
                .build()
                .expect("valid options"),
        ),
        ("dispatch_panel_b32", ServeOptions::with_workers(1)),
    ] {
        let server = QueryServer::new(Arc::clone(&index), options);
        server.serve_batch(&homogeneous);
        group.bench_with_input(BenchmarkId::new(label, 32), &32usize, |b, _| {
            b.iter(|| server.serve_batch(&homogeneous))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
