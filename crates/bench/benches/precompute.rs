//! Criterion version of Figure 8: index precomputation under the Mogul
//! ordering vs a random ordering, plus the MogulE (complete) factorization.

use criterion::{criterion_group, criterion_main, Criterion};
use mogul_core::{MogulConfig, MogulIndex, MrParams};
use mogul_data::suite::SuiteScale;
use mogul_eval::scenarios::{limited_scenarios, ScenarioConfig};
use mogul_graph::ordering::random_ordering;
use std::time::Duration;

fn bench_precompute(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        scale: SuiteScale::Small,
        num_queries: 1,
        ..ScenarioConfig::default()
    };
    let scenario = &limited_scenarios(&cfg, 1).expect("scenario")[0];
    let n = scenario.graph.num_nodes();
    let config = MogulConfig {
        params: MrParams::default(),
        ..MogulConfig::default()
    };

    let mut group = c.benchmark_group("fig8_precompute");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("Mogul_ordering", |b| {
        b.iter(|| std::hint::black_box(MogulIndex::build(&scenario.graph, config).unwrap()))
    });
    group.bench_function("Random_ordering", |b| {
        b.iter(|| {
            std::hint::black_box(
                MogulIndex::build_with_ordering(&scenario.graph, config, random_ordering(n, 7))
                    .unwrap(),
            )
        })
    });
    group.bench_function("MogulE_complete_factorization", |b| {
        b.iter(|| {
            std::hint::black_box(
                MogulIndex::build(
                    &scenario.graph,
                    MogulConfig {
                        params: MrParams::default(),
                        ..MogulConfig::exact()
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_precompute);
criterion_main!(benches);
