//! Criterion version of Figure 5: pruned vs unpruned vs plain incomplete-
//! Cholesky search.

use criterion::{criterion_group, criterion_main, Criterion};
use mogul_core::{MogulConfig, MogulIndex, MrParams, SearchMode};
use mogul_data::suite::SuiteScale;
use mogul_eval::scenarios::{limited_scenarios, ScenarioConfig};
use std::time::Duration;

fn bench_pruning(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        scale: SuiteScale::Small,
        num_queries: 5,
        ..ScenarioConfig::default()
    };
    let scenario = &limited_scenarios(&cfg, 2).expect("scenario")[1];
    let index = MogulIndex::build(
        &scenario.graph,
        MogulConfig {
            params: MrParams::default(),
            ..MogulConfig::default()
        },
    )
    .expect("mogul index");
    let queries = scenario.queries.clone();

    let mut group = c.benchmark_group("fig5_pruning");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (name, mode) in [
        ("Mogul", SearchMode::Pruned),
        ("WithoutEstimation", SearchMode::NoPruning),
        ("IncompleteCholesky", SearchMode::FullSubstitution),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(index.search_with_stats(q, 5, mode).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
