//! Criterion version of Figure 4: EMR query time as a function of the number
//! of anchors, with Mogul as the anchor-free reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mogul_core::{EmrConfig, EmrSolver, MogulConfig, MogulIndex, MrParams, Ranker};
use mogul_data::suite::SuiteScale;
use mogul_eval::scenarios::{limited_scenarios, ScenarioConfig};
use std::time::Duration;

fn bench_anchor_sweep(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        scale: SuiteScale::Small,
        num_queries: 5,
        ..ScenarioConfig::default()
    };
    let scenario = &limited_scenarios(&cfg, 1).expect("scenario")[0];
    let params = MrParams::default();
    let queries = scenario.queries.clone();

    let mogul = MogulIndex::build(
        &scenario.graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .expect("mogul index");

    let mut group = c.benchmark_group("fig4_anchor_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    group.bench_function("Mogul", |b| {
        b.iter(|| {
            for &q in &queries {
                std::hint::black_box(mogul.search(q, 5).unwrap());
            }
        })
    });
    for anchors in [10usize, 50, 200] {
        let emr = EmrSolver::new(
            scenario.spec.dataset.features(),
            params,
            EmrConfig::with_anchors(anchors),
        )
        .expect("emr");
        group.bench_with_input(BenchmarkId::new("EMR", anchors), &anchors, |b, _| {
            b.iter(|| {
                for &q in &queries {
                    std::hint::black_box(emr.top_k(q, 5).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_anchor_sweep);
criterion_main!(benches);
