//! Criterion version of Figure 7 / Table 2: out-of-sample query time of
//! Mogul vs EMR.

use criterion::{criterion_group, criterion_main, Criterion};
use mogul_core::{
    out_of_sample::OutOfSampleConfig, EmrConfig, EmrSolver, MogulConfig, MogulIndex, MrParams,
    OutOfSampleIndex,
};
use mogul_data::suite::SuiteScale;
use mogul_eval::scenarios::{limited_scenarios, ScenarioConfig};
use mogul_graph::knn::{knn_graph, KnnConfig};
use std::time::Duration;

fn bench_out_of_sample(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        scale: SuiteScale::Small,
        num_queries: 5,
        ..ScenarioConfig::default()
    };
    let scenario = &limited_scenarios(&cfg, 1).expect("scenario")[0];
    let (db, queries) = scenario
        .spec
        .dataset
        .split_out_queries(5, 7)
        .expect("holdout");
    let graph = knn_graph(db.features(), KnnConfig::with_k(5)).expect("knn graph");
    let params = MrParams::default();
    let index = MogulIndex::build(
        &graph,
        MogulConfig {
            params,
            ..MogulConfig::default()
        },
    )
    .expect("mogul index");
    let oos = OutOfSampleIndex::new(index, db.features().to_vec(), OutOfSampleConfig::default())
        .expect("oos index");
    let emr = EmrSolver::new(db.features(), params, EmrConfig::with_anchors(10)).expect("emr");

    let mut group = c.benchmark_group("fig7_out_of_sample");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    group.bench_function("Mogul", |b| {
        b.iter(|| {
            for (feature, _) in &queries {
                std::hint::black_box(oos.query(feature, 5).unwrap());
            }
        })
    });
    group.bench_function("EMR", |b| {
        b.iter(|| {
            for (feature, _) in &queries {
                std::hint::black_box(emr.top_k_for_feature(feature, 5).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_out_of_sample);
criterion_main!(benches);
