//! Serving over a [`ShardedIndex`]: scatter-gather queries against an
//! epoch-versioned [`ShardedSnapshot`], with a single-writer handle that
//! routes updates to their owning shards and rebuilds shards independently.
//!
//! The concurrency model mirrors [`QueryServer`](crate::QueryServer) /
//! [`IndexWriter`](crate::IndexWriter): readers clone an `Arc` out of an
//! [`RwLock`] (one uncontended read-lock per dispatch), the writer owns the
//! mutable [`ShardedIndex`] behind a [`Mutex`] and publishes each new
//! sharded snapshot atomically. A [`ShardedSnapshot`] is assembled from
//! per-shard `Arc`s **once**, under the writer lock — so every batch
//! observes each shard at exactly one epoch, even while another thread
//! rebuilds shards one at a time: a rebuild of shard 2 never tears into a
//! batch that started before it was published.
//!
//! What sharding buys the serving layer (see `docs/SHARDING.md`):
//!
//! * **per-shard rebuild debt** — an insert routed to shard 0 leaves the
//!   other shards' factorizations untouched, so background refactorization
//!   is per-shard and proportionally cheaper;
//! * **shard skipping** — in-database queries touch exactly one shard
//!   (the block-diagonal union graph makes every other shard's scores
//!   identically zero), and out-of-sample queries probe only the
//!   [`shard_probes`](mogul_core::ShardedConfig::shard_probes) nearest
//!   shards — the [`ShardScatterStats`] on the stats entry points report
//!   how many shards each query skipped.

use crate::error::{ServeError, ServeResult};
use crate::request::{QueryRequest, QueryResponse, ResponseStatus, UpdateRequest};
use mogul_core::shard::ShardedUpdateReport;
use mogul_core::update::{IndexDelta, RebuildDebt};
use mogul_core::{
    OutOfSampleResult, PersistError, ShardScatterStats, ShardedIndex, ShardedSnapshot,
    ShardedWorkspace, TopKResult,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Recycles [`ShardedWorkspace`]s across batches (same policy as the
/// monolithic server's pool: retain at most `cap`, drop the surplus).
#[derive(Debug)]
struct ShardedWorkspacePool {
    stack: Mutex<Vec<ShardedWorkspace>>,
    cap: usize,
}

impl ShardedWorkspacePool {
    fn with_capacity(cap: usize) -> Self {
        ShardedWorkspacePool {
            stack: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn checkout(&self) -> ShardedWorkspace {
        self.stack
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn checkin(&self, ws: ShardedWorkspace) {
        let mut stack = self.stack.lock().unwrap_or_else(PoisonError::into_inner);
        if stack.len() < self.cap {
            stack.push(ws);
        }
    }
}

/// One fault injected into a scatter leg by a
/// [`ShardedServer::set_fault_injector`] hook — the deterministic
/// fault-injection surface the degraded-mode tests and benchmarks drive.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardFault {
    /// The shard answers with this typed error instead of a result.
    Error(ServeError),
    /// The shard's solve panics; the degraded scatter loop contains the
    /// panic (and discards the possibly-poisoned workspace).
    Panic,
    /// The shard stalls for this long before answering — long enough, and
    /// the [`DegradedPolicy::scatter_deadline`] fails the leg.
    Stall(Duration),
}

/// Signature of a fault injector: called with the shard index about to be
/// probed; `None` means the shard is healthy.
pub type ShardFaultFn = dyn Fn(usize) -> Option<ShardFault> + Send + Sync;

/// Policy knobs of [`ShardedServer::query_degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradedPolicy {
    /// Wall-clock budget for one whole scatter: once a query has been
    /// scattering longer than this, every not-yet-probed leg is treated as
    /// failed (the answer degrades to the legs already gathered). `None`
    /// (the default) disables the deadline.
    pub scatter_deadline: Option<Duration>,
}

/// A thread-safe query server over an epoch-versioned, `Arc`-shared
/// [`ShardedSnapshot`] — the sharded counterpart of
/// [`QueryServer`](crate::QueryServer), speaking the same
/// [`QueryRequest`]/[`QueryResponse`] vocabulary and the same typed
/// [`ServeError`] contract.
///
/// ```
/// use mogul_core::update::IndexBuilder;
/// use mogul_core::{ShardedConfig, ShardedIndex};
/// use mogul_serve::{QueryRequest, ShardedServer};
///
/// let features: Vec<Vec<f64>> = (0..24)
///     .map(|i| vec![i as f64 + if i % 2 == 0 { 0.0 } else { 100.0 }, 0.0])
///     .collect();
/// let config = ShardedConfig::with_shards(2).builder(IndexBuilder::new().knn_k(3));
/// let (index, _) = ShardedIndex::build(features, config)?;
/// let server = ShardedServer::from_snapshot(index.snapshot());
///
/// let answers = server.serve_batch(&[
///     QueryRequest::in_database(0, 3),
///     QueryRequest::out_of_sample(vec![50.0, 0.0], 3),
/// ]);
/// for answer in &answers {
///     assert_eq!(answer.as_ref().unwrap().top_k().len(), 3);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShardedServer {
    state: RwLock<Arc<ShardedSnapshot>>,
    pool: ShardedWorkspacePool,
    degraded: RwLock<DegradedPolicy>,
    injector: RwLock<Option<Arc<ShardFaultFn>>>,
}

impl std::fmt::Debug for ShardedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("epoch", &self.epoch())
            .field(
                "degraded",
                &*self.degraded.read().unwrap_or_else(PoisonError::into_inner),
            )
            .field(
                "fault_injector",
                &self
                    .injector
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some(),
            )
            .finish()
    }
}

impl ShardedServer {
    /// Build a server over an existing sharded snapshot.
    pub fn from_snapshot(snapshot: Arc<ShardedSnapshot>) -> Self {
        ShardedServer {
            state: RwLock::new(snapshot),
            // A handful of retained workspaces covers the steady state of
            // concurrent batch callers; spikes allocate extras and drop them.
            pool: ShardedWorkspacePool::with_capacity(4),
            degraded: RwLock::new(DegradedPolicy::default()),
            injector: RwLock::new(None),
        }
    }

    /// Warm-start a server from a sharded checkpoint directory written by
    /// [`mogul_core::shard::save_sharded`] — every shard is reconstructed
    /// with no precompute (in parallel, when the manifest says the index
    /// was built parallel) and answers are bit-identical to a server over
    /// the index that was saved.
    pub fn warm_start(dir: impl AsRef<Path>) -> std::result::Result<Self, PersistError> {
        Ok(ShardedServer::from_snapshot(
            mogul_core::load_sharded(dir)?.snapshot(),
        ))
    }

    /// The snapshot new queries are answered from (cheap `Arc` clone; stays
    /// valid and queryable after later swaps).
    pub fn snapshot(&self) -> Arc<ShardedSnapshot> {
        Arc::clone(&self.state.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Sharded epoch of the currently installed snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Atomically publish a new sharded snapshot and return the previous
    /// one. In-flight batches finish on the snapshot they started with.
    pub fn install_snapshot(&self, next: Arc<ShardedSnapshot>) -> Arc<ShardedSnapshot> {
        let mut slot = self.state.write().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, next)
    }

    /// Number of live items in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// `true` when the current snapshot holds zero items (never constructed
    /// so).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answer one request of either kind — validated at admission
    /// ([`QueryRequest::validate_sharded`]), routed/scattered by the
    /// snapshot.
    pub fn query(&self, request: &QueryRequest) -> ServeResult<QueryResponse> {
        let snapshot = self.snapshot();
        request.validate_sharded(&snapshot)?;
        let mut ws = self.pool.checkout();
        let result = Self::answer(&snapshot, &mut ws, request);
        self.pool.checkin(ws);
        result
    }

    /// Top-k for a database item by global stable id.
    pub fn query_by_id(&self, item: usize, k: usize) -> ServeResult<TopKResult> {
        match self.query(&QueryRequest::in_database(item, k))? {
            QueryResponse::InDatabase(top_k) => Ok(top_k),
            QueryResponse::OutOfSample(_) => unreachable!("in-database request"),
        }
    }

    /// Top-k for an arbitrary feature vector (scatter-gather over the
    /// probed shards).
    pub fn query_by_feature(&self, feature: &[f64], k: usize) -> ServeResult<OutOfSampleResult> {
        match self.query(&QueryRequest::out_of_sample(feature.to_vec(), k))? {
            QueryResponse::OutOfSample(result) => Ok(*result),
            QueryResponse::InDatabase(_) => unreachable!("out-of-sample request"),
        }
    }

    /// [`ShardedServer::query`] plus the query's [`ShardScatterStats`]:
    /// how many shards the scatter probed and how many it skipped, with the
    /// Algorithm-2 pruning counters summed across the probed shards.
    pub fn query_with_stats(
        &self,
        request: &QueryRequest,
    ) -> ServeResult<(QueryResponse, ShardScatterStats)> {
        let snapshot = self.snapshot();
        request.validate_sharded(&snapshot)?;
        let mut ws = self.pool.checkout();
        let result = (|| match request {
            QueryRequest::InDatabase { node, k } => {
                let (top, stats) = snapshot.query_by_id_with_stats_in(&mut ws, *node, *k)?;
                Ok((QueryResponse::InDatabase(top), stats))
            }
            QueryRequest::OutOfSample { feature, k } => {
                let (res, stats) = snapshot.query_by_feature_with_stats_in(&mut ws, feature, *k)?;
                Ok((QueryResponse::OutOfSample(Box::new(res)), stats))
            }
        })();
        self.pool.checkin(ws);
        result
    }

    /// The active [`DegradedPolicy`].
    pub fn degraded_policy(&self) -> DegradedPolicy {
        *self.degraded.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Install a [`DegradedPolicy`] (applies to queries starting after the
    /// call).
    pub fn set_degraded_policy(&self, policy: DegradedPolicy) {
        *self
            .degraded
            .write()
            .unwrap_or_else(PoisonError::into_inner) = policy;
    }

    /// Install (or clear) the deterministic fault injector consulted once
    /// per scatter leg by [`ShardedServer::query_degraded`]. Production
    /// servers leave this `None`; the fault-injection harness and the
    /// chaos benchmarks use it to fail, stall or panic specific shards on
    /// a seeded schedule.
    pub fn set_fault_injector(&self, injector: Option<Arc<ShardFaultFn>>) {
        *self
            .injector
            .write()
            .unwrap_or_else(PoisonError::into_inner) = injector;
    }

    /// Answer one request with **degraded-mode scatter-gather**: a probed
    /// shard that fails — typed error, contained panic, injected fault, or
    /// the [`DegradedPolicy::scatter_deadline`] — is dropped from the
    /// gather instead of failing the whole query, and the merged answer of
    /// the surviving legs is tagged [`ResponseStatus::Degraded`]. The
    /// merge reuses the exact gather semantics of the healthy path
    /// ([`ShardedSnapshot::merge_scatter`]), so:
    ///
    /// * when every probed shard answers, the response is **bit-identical**
    ///   to [`ShardedServer::query`] and tagged
    ///   [`ResponseStatus::Complete`];
    /// * when a subset answers, the response is a true sub-merge of the
    ///   healthy shards' answers.
    ///
    /// `require_complete` demands completeness: a query that would degrade
    /// fails typed with [`ServeError::Incomplete`] instead (retryable —
    /// another replica may hold every shard healthy). A query no probed
    /// shard could answer fails the same way regardless of the flag. An
    /// in-database query has exactly one owning shard, so it either
    /// answers complete or fails `Incomplete { 0, 1 }`.
    pub fn query_degraded(
        &self,
        request: &QueryRequest,
        require_complete: bool,
    ) -> ServeResult<(QueryResponse, ResponseStatus)> {
        let snapshot = self.snapshot();
        request.validate_sharded(&snapshot)?;
        let policy = self.degraded_policy();
        let injector = self
            .injector
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let started = Instant::now();
        let over_deadline = |started: &Instant| {
            policy
                .scatter_deadline
                .is_some_and(|d| started.elapsed() > d)
        };

        match request {
            QueryRequest::InDatabase { node, k } => {
                let shard = snapshot.shard_of(*node).expect("validated id is live");
                let failed = || ServeError::Incomplete {
                    shards_answered: 0,
                    shards_total: 1,
                };
                let fault = injector.as_ref().and_then(|f| f(shard));
                if let Some(ShardFault::Stall(pause)) = &fault {
                    std::thread::sleep(*pause);
                }
                if matches!(fault, Some(ShardFault::Error(_))) || over_deadline(&started) {
                    return Err(failed());
                }
                let inject_panic = matches!(fault, Some(ShardFault::Panic));
                let mut ws = self.pool.checkout();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if inject_panic {
                        panic!("injected shard fault: panic in shard {shard}");
                    }
                    snapshot.query_by_id_in(&mut ws, *node, *k)
                }));
                match outcome {
                    Ok(Ok(top)) => {
                        self.pool.checkin(ws);
                        Ok((QueryResponse::InDatabase(top), ResponseStatus::Complete))
                    }
                    // Typed shard failure or contained panic (the workspace
                    // may be mid-mutation after a panic; it is dropped, not
                    // pooled).
                    _ => Err(failed()),
                }
            }
            QueryRequest::OutOfSample { feature, k } => {
                let order = snapshot.probe_order(feature)?;
                let probes = &order[..snapshot.shard_probes().min(order.len())];
                let mut ws = self.pool.checkout();
                let mut legs: Vec<OutOfSampleResult> = Vec::with_capacity(probes.len());
                for &shard in probes {
                    // Over budget: every remaining leg fails (degrading the
                    // answer to the legs already gathered).
                    if over_deadline(&started) {
                        continue;
                    }
                    let fault = injector.as_ref().and_then(|f| f(shard));
                    match &fault {
                        Some(ShardFault::Error(_)) => continue,
                        Some(ShardFault::Stall(pause)) => {
                            std::thread::sleep(*pause);
                            if over_deadline(&started) {
                                continue;
                            }
                        }
                        _ => {}
                    }
                    let inject_panic = matches!(fault, Some(ShardFault::Panic));
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if inject_panic {
                            panic!("injected shard fault: panic in shard {shard}");
                        }
                        snapshot.query_shard_by_feature_in(&mut ws, shard, feature, *k)
                    }));
                    match outcome {
                        Ok(Ok(leg)) => legs.push(leg),
                        Ok(Err(_)) => {}
                        Err(_) => {
                            // A panicking leg may leave the workspace
                            // mid-mutation; replace it rather than reuse it.
                            ws = ShardedWorkspace::new();
                        }
                    }
                }
                self.pool.checkin(ws);
                let (shards_answered, shards_total) = (legs.len(), probes.len());
                if shards_answered == 0 || (shards_answered < shards_total && require_complete) {
                    return Err(ServeError::Incomplete {
                        shards_answered,
                        shards_total,
                    });
                }
                let status = if shards_answered == shards_total {
                    ResponseStatus::Complete
                } else {
                    ResponseStatus::Degraded {
                        shards_answered,
                        shards_total,
                    }
                };
                let merged = ShardedSnapshot::merge_scatter(*k, &legs);
                Ok((QueryResponse::OutOfSample(Box::new(merged)), status))
            }
        }
    }

    /// Answer a batch of (possibly mixed) requests, preserving order.
    ///
    /// The snapshot is read **once** per batch, so all answers of one batch
    /// observe every shard at one consistent epoch even if a writer swaps
    /// or rebuilds shards mid-batch. Failures are per-request: each request
    /// is validated at admission and answered independently; one malformed
    /// request never poisons the rest.
    ///
    /// Homogeneous runs are not panel-blocked here — the sharded snapshot's
    /// own batch entry points already group by owning shard; this server
    /// groups **in-database requests by `k`** and feeds each group through
    /// [`ShardedSnapshot::query_batch_by_id_in`], falling back to scalar
    /// answers if a group fails so error reporting stays per-request.
    pub fn serve_batch(&self, requests: &[QueryRequest]) -> Vec<ServeResult<QueryResponse>> {
        let snapshot = self.snapshot();
        let mut answers: Vec<Option<ServeResult<QueryResponse>>> =
            (0..requests.len()).map(|_| None).collect();

        // Admission + grouping: valid in-database requests group by k for
        // the batched path; everything else answers scalar below.
        let mut id_groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            if let Err(err) = request.validate_sharded(&snapshot) {
                answers[i] = Some(Err(err));
                continue;
            }
            if let QueryRequest::InDatabase { k, .. } = request {
                match id_groups.iter_mut().find(|(gk, _)| gk == k) {
                    Some((_, members)) => members.push(i),
                    None => id_groups.push((*k, vec![i])),
                }
            }
        }

        let mut ws = self.pool.checkout();
        for (k, members) in &id_groups {
            let ids: Vec<usize> = members
                .iter()
                .map(|&i| match &requests[i] {
                    QueryRequest::InDatabase { node, .. } => *node,
                    QueryRequest::OutOfSample { .. } => unreachable!("in-database group"),
                })
                .collect();
            match snapshot.query_batch_by_id_in(&mut ws, &ids, *k) {
                Ok(results) => {
                    for (&i, top) in members.iter().zip(results) {
                        answers[i] = Some(Ok(QueryResponse::InDatabase(top)));
                    }
                }
                // Admission already vetted each id; an execution fault
                // fails the whole batched call, so re-run individually for
                // precise per-request errors.
                Err(_) => {
                    for &i in members {
                        answers[i] = Some(Self::answer(&snapshot, &mut ws, &requests[i]));
                    }
                }
            }
        }
        for (i, request) in requests.iter().enumerate() {
            if answers[i].is_none() {
                answers[i] = Some(Self::answer(&snapshot, &mut ws, request));
            }
        }
        self.pool.checkin(ws);

        answers
            .into_iter()
            .map(|a| a.expect("every request is answered exactly once"))
            .collect()
    }

    /// Dispatch one request onto the right sharded-snapshot entry point.
    fn answer(
        snapshot: &ShardedSnapshot,
        ws: &mut ShardedWorkspace,
        request: &QueryRequest,
    ) -> ServeResult<QueryResponse> {
        match request {
            QueryRequest::InDatabase { node, k } => Ok(QueryResponse::InDatabase(
                snapshot.query_by_id_in(ws, *node, *k)?,
            )),
            QueryRequest::OutOfSample { feature, k } => Ok(QueryResponse::OutOfSample(Box::new(
                snapshot.query_by_feature_in(ws, feature, *k)?,
            ))),
        }
    }
}

/// The single-writer handle pairing a [`ShardedIndex`] with the
/// [`ShardedServer`] that serves its snapshots — the sharded counterpart of
/// [`IndexWriter`](crate::IndexWriter).
///
/// Updates route to their owning shards ([`ShardedIndex::apply`]) and only
/// the touched shards accrue rebuild debt; [`ShardedWriter::rebuild_shard`]
/// refactorizes one shard while queries keep answering from the previous
/// sharded snapshot, and every mutation publishes exactly one new snapshot
/// (each batch therefore observes each shard at exactly one epoch).
#[derive(Debug)]
pub struct ShardedWriter {
    server: Arc<ShardedServer>,
    inner: Mutex<ShardedIndex>,
}

impl ShardedWriter {
    /// Take ownership of a sharded index and stand up a server on its
    /// current snapshot.
    pub fn new(index: ShardedIndex) -> (Arc<ShardedServer>, ShardedWriter) {
        let server = Arc::new(ShardedServer::from_snapshot(index.snapshot()));
        let writer = ShardedWriter {
            server: Arc::clone(&server),
            inner: Mutex::new(index),
        };
        (server, writer)
    }

    /// Warm-start from a sharded checkpoint directory written by
    /// [`ShardedWriter::save_to`] (or [`mogul_core::save_sharded`]).
    pub fn warm_start(
        dir: impl AsRef<Path>,
    ) -> std::result::Result<(Arc<ShardedServer>, ShardedWriter), PersistError> {
        Ok(ShardedWriter::new(mogul_core::load_sharded(dir)?))
    }

    /// The server this writer publishes to.
    pub fn server(&self) -> Arc<ShardedServer> {
        Arc::clone(&self.server)
    }

    /// Apply a batch of update requests as one atomic delta — inserts route
    /// to the shard with the nearest base-cluster centroid, removals route
    /// through the shard router — and publish the resulting sharded epoch.
    /// Global insert ids are reported in request order. Rejections surface
    /// as [`ServeError::Index`] with no shard mutated.
    pub fn apply(&self, updates: &[UpdateRequest]) -> ServeResult<ShardedUpdateReport> {
        let mut delta = IndexDelta::new();
        for update in updates {
            match update {
                UpdateRequest::Insert { feature } => {
                    delta.insert(feature.clone());
                }
                UpdateRequest::Remove { id } => {
                    delta.remove(*id);
                }
            }
        }
        self.apply_delta(&delta)
    }

    /// Apply an already-staged [`IndexDelta`] with global routing semantics
    /// and publish the resulting sharded snapshot.
    pub fn apply_delta(&self, delta: &IndexDelta) -> ServeResult<ShardedUpdateReport> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let report = inner.apply(delta).map_err(ServeError::from)?;
        self.server.install_snapshot(inner.snapshot());
        Ok(report)
    }

    /// Refactorize **one shard** (its debt back to zero) and publish the
    /// result. The other shards' factorizations — and all in-flight
    /// queries — are untouched: this is the per-shard background rebuild
    /// that makes maintenance cost proportional to the dirty shard, not the
    /// whole collection.
    pub fn rebuild_shard(&self, shard: usize) -> ServeResult<()> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.rebuild_shard(shard).map_err(ServeError::from)?;
        self.server.install_snapshot(inner.snapshot());
        Ok(())
    }

    /// Rebuild every shard that is not on a clean epoch and publish the
    /// result; returns the shards that were rebuilt. After this the state
    /// is checkpointable with [`ShardedWriter::save_to`].
    pub fn checkpoint_clean(&self) -> ServeResult<Vec<usize>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let rebuilt = inner.checkpoint_clean().map_err(ServeError::from)?;
        if !rebuilt.is_empty() {
            self.server.install_snapshot(inner.snapshot());
        }
        Ok(rebuilt)
    }

    /// Save the sharded index as a checkpoint directory (one `MOG1` file
    /// per shard plus a checksummed manifest, written atomically, manifest
    /// last). Every shard must be clean — call
    /// [`ShardedWriter::checkpoint_clean`] first after updates.
    pub fn save_to(&self, dir: impl AsRef<Path>) -> std::result::Result<(), PersistError> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        mogul_core::save_sharded(&inner, dir).map(|_| ())
    }

    /// Current rebuild debt, per shard.
    pub fn shard_debts(&self) -> Vec<RebuildDebt> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shard_debts()
    }

    /// Per-shard snapshot epochs, shard order.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shard_epochs()
    }
}
