//! Validated serving configuration: [`ServeOptions`] and its builder.
//!
//! `ServeOptions` is constructed through [`ServeOptions::builder`], which
//! **rejects invalid configurations with a typed
//! [`ServeError::Config`](crate::ServeError::Config) instead of silently
//! clamping them**. One options value configures both the in-process
//! [`QueryServer`](crate::QueryServer) (worker count, dispatch strategy) and
//! the network front door of [`crate::net`] (admission-queue capacity,
//! per-connection in-flight cap).

use crate::error::{ServeError, ServeResult};
use std::time::Duration;

/// Upper bound on an explicit worker count — far above any real machine, but
/// it turns a garbage value (e.g. a mis-parsed CLI flag) into a typed
/// configuration error instead of a thread-spawn storm.
pub const MAX_WORKERS: usize = 4096;

/// Upper bound on the admission-queue capacity. The queue is the server's
/// memory bound under overload; a capacity past this is a configuration
/// mistake, not a bigger server.
pub const MAX_QUEUE_CAPACITY: usize = 1 << 20;

/// How [`QueryServer::serve_batch`](crate::QueryServer::serve_batch) executes
/// a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Blocked multi-RHS panels: contiguous runs of compatible requests
    /// (same kind, same `k`) are answered through the batched substitution
    /// engine, up to [`mogul_core::PANEL_WIDTH`] per panel. Bit-identical to
    /// scalar dispatch, ~2-3x the single-core throughput at batch 32.
    #[default]
    Panel,
    /// One request at a time — the baseline the serving benchmarks compare
    /// against.
    Scalar,
}

/// Configuration of a [`QueryServer`](crate::QueryServer) and of the network
/// front door ([`crate::net::NetServer`]).
///
/// Build one with [`ServeOptions::builder`]; the fields are private because
/// every constructed value is guaranteed valid. [`ServeOptions::default`] is
/// the validated default configuration (auto worker count, panel dispatch,
/// 1024-deep admission queue, 64 in-flight requests per connection).
///
/// ```
/// use mogul_serve::{Dispatch, ServeOptions};
///
/// let options = ServeOptions::builder()
///     .workers(2)
///     .dispatch(Dispatch::Panel)
///     .queue_capacity(256)
///     .max_inflight_per_conn(32)
///     .build()?;
/// assert_eq!(options.workers(), 2);
///
/// // Invalid configurations are rejected, not clamped.
/// assert!(ServeOptions::builder().queue_capacity(0).build().is_err());
/// # Ok::<(), mogul_serve::ServeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    workers: usize,
    dispatch: Dispatch,
    queue_capacity: usize,
    max_inflight_per_conn: usize,
    queue_deadline: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptionsBuilder::default()
            .build()
            .expect("default ServeOptions are valid")
    }
}

impl ServeOptions {
    /// Start building an options value (every field starts at its default).
    pub fn builder() -> ServeOptionsBuilder {
        ServeOptionsBuilder::default()
    }

    /// Convenience: the default configuration with an explicit worker count
    /// (`0` = auto-detect). Panics only if `workers` exceeds [`MAX_WORKERS`];
    /// use the builder to handle that case as a typed error.
    pub fn with_workers(workers: usize) -> Self {
        ServeOptions::builder()
            .workers(workers)
            .build()
            .expect("worker count exceeds MAX_WORKERS")
    }

    /// Configured worker count (`0` = auto-detect at server construction).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configured batch-dispatch strategy.
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// Bound of the network admission queue: requests arriving while
    /// `queue_capacity` requests are already waiting are shed with a typed
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded).
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Per-connection cap on requests in flight (queued or executing): a
    /// connection pipelining past this is shed before it can monopolize the
    /// shared admission queue.
    pub fn max_inflight_per_conn(&self) -> usize {
        self.max_inflight_per_conn
    }

    /// Maximum time an admitted request may wait in the queue before a
    /// worker picks it up. A request past the deadline is shed with a typed
    /// [`ServeError::Overloaded`](crate::ServeError::Overloaded) instead of
    /// being executed — its client has usually timed out already, so
    /// executing it would only burn capacity the queued-behind requests
    /// need. Counted separately in
    /// [`ServerStatsReport::shed_deadline`](crate::net::ServerStatsReport::shed_deadline).
    /// `None` (the default) disables the deadline.
    pub fn queue_deadline(&self) -> Option<Duration> {
        self.queue_deadline
    }

    /// The effective worker count after auto-detection (the workspace-wide
    /// policy of [`mogul_sparse::effective_threads`]).
    pub(crate) fn resolve_workers(&self) -> usize {
        mogul_sparse::effective_threads(self.workers)
    }
}

/// Builder for [`ServeOptions`]; see [`ServeOptions::builder`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptionsBuilder {
    workers: usize,
    dispatch: Dispatch,
    queue_capacity: usize,
    max_inflight_per_conn: usize,
    queue_deadline: Option<Duration>,
}

impl Default for ServeOptionsBuilder {
    fn default() -> Self {
        ServeOptionsBuilder {
            workers: 0,
            dispatch: Dispatch::Panel,
            queue_capacity: 1024,
            max_inflight_per_conn: 64,
            queue_deadline: None,
        }
    }
}

impl ServeOptionsBuilder {
    /// Worker threads per batch dispatch / per network server. `0` (the
    /// default) auto-detects one worker per core
    /// (via [`mogul_sparse::effective_threads`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Batch-dispatch strategy (default [`Dispatch::Panel`]).
    pub fn dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Admission-queue bound of the network front door (default 1024).
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Per-connection in-flight request cap (default 64).
    pub fn max_inflight_per_conn(mut self, max_inflight_per_conn: usize) -> Self {
        self.max_inflight_per_conn = max_inflight_per_conn;
        self
    }

    /// Queue-wait deadline after which an admitted request is shed instead
    /// of executed (default: no deadline). Must be non-zero.
    pub fn queue_deadline(mut self, queue_deadline: Duration) -> Self {
        self.queue_deadline = Some(queue_deadline);
        self
    }

    /// Validate and construct the options.
    ///
    /// Rejected (with [`ServeError::Config`](crate::ServeError::Config),
    /// never clamped): an explicit worker count above [`MAX_WORKERS`], a
    /// zero or over-[`MAX_QUEUE_CAPACITY`] queue capacity, a zero
    /// per-connection cap, or a per-connection cap above the queue capacity
    /// (one connection could then never be shed by its own cap — the shared
    /// queue would always overflow first, making the setting dead).
    pub fn build(self) -> ServeResult<ServeOptions> {
        if self.workers > MAX_WORKERS {
            return Err(ServeError::config(format!(
                "workers must be at most {MAX_WORKERS} (0 = auto), got {}",
                self.workers
            )));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::config(
                "queue_capacity must be at least 1 (a zero-capacity queue sheds everything)",
            ));
        }
        if self.queue_capacity > MAX_QUEUE_CAPACITY {
            return Err(ServeError::config(format!(
                "queue_capacity must be at most {MAX_QUEUE_CAPACITY}, got {}",
                self.queue_capacity
            )));
        }
        if self.max_inflight_per_conn == 0 {
            return Err(ServeError::config(
                "max_inflight_per_conn must be at least 1",
            ));
        }
        if self.max_inflight_per_conn > self.queue_capacity {
            return Err(ServeError::config(format!(
                "max_inflight_per_conn ({}) must not exceed queue_capacity ({})",
                self.max_inflight_per_conn, self.queue_capacity
            )));
        }
        if self.queue_deadline == Some(Duration::ZERO) {
            return Err(ServeError::config(
                "queue_deadline must be non-zero (a zero deadline sheds every request; \
                 omit it to disable the deadline)",
            ));
        }
        Ok(ServeOptions {
            workers: self.workers,
            dispatch: self.dispatch,
            queue_capacity: self.queue_capacity,
            max_inflight_per_conn: self.max_inflight_per_conn,
            queue_deadline: self.queue_deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_panel_dispatched() {
        let options = ServeOptions::default();
        assert_eq!(options.workers(), 0);
        assert_eq!(options.dispatch(), Dispatch::Panel);
        assert!(options.queue_capacity() >= 1);
        assert!(options.max_inflight_per_conn() <= options.queue_capacity());
        assert!(options.resolve_workers() >= 1);
    }

    #[test]
    fn invalid_configurations_are_rejected_not_clamped() {
        assert!(matches!(
            ServeOptions::builder().workers(MAX_WORKERS + 1).build(),
            Err(ServeError::Config { .. })
        ));
        assert!(matches!(
            ServeOptions::builder().queue_capacity(0).build(),
            Err(ServeError::Config { .. })
        ));
        assert!(matches!(
            ServeOptions::builder()
                .queue_capacity(MAX_QUEUE_CAPACITY + 1)
                .build(),
            Err(ServeError::Config { .. })
        ));
        assert!(matches!(
            ServeOptions::builder().max_inflight_per_conn(0).build(),
            Err(ServeError::Config { .. })
        ));
        assert!(matches!(
            ServeOptions::builder()
                .queue_capacity(8)
                .max_inflight_per_conn(9)
                .build(),
            Err(ServeError::Config { .. })
        ));
        assert!(matches!(
            ServeOptions::builder()
                .queue_deadline(Duration::ZERO)
                .build(),
            Err(ServeError::Config { .. })
        ));
    }

    #[test]
    fn queue_deadline_defaults_off_and_round_trips() {
        assert_eq!(ServeOptions::default().queue_deadline(), None);
        let options = ServeOptions::builder()
            .queue_deadline(Duration::from_millis(250))
            .build()
            .unwrap();
        assert_eq!(options.queue_deadline(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn boundary_configurations_are_accepted() {
        let options = ServeOptions::builder()
            .workers(MAX_WORKERS)
            .queue_capacity(1)
            .max_inflight_per_conn(1)
            .build()
            .unwrap();
        assert_eq!(options.workers(), MAX_WORKERS);
        assert_eq!(options.queue_capacity(), 1);
        let options = ServeOptions::builder()
            .queue_capacity(MAX_QUEUE_CAPACITY)
            .max_inflight_per_conn(MAX_QUEUE_CAPACITY)
            .build()
            .unwrap();
        assert_eq!(options.max_inflight_per_conn(), MAX_QUEUE_CAPACITY);
    }

    #[test]
    fn with_workers_is_a_valid_shorthand() {
        let options = ServeOptions::with_workers(3);
        assert_eq!(options.workers(), 3);
        assert_eq!(options.dispatch(), Dispatch::Panel);
    }
}
