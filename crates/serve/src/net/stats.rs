//! Serving statistics: lock-cheap counters plus a latency ring, snapshotted
//! into the wire-visible [`ServerStatsReport`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Number of completed-query latency samples the sliding window retains.
/// p50/p95/qps are computed over this window, so they track the *recent*
/// regime rather than the lifetime average.
const LATENCY_WINDOW: usize = 4096;

/// One point-in-time statistics snapshot of a running
/// [`NetServer`](crate::net::NetServer), as served by a
/// [`FrameKind::Stats`](crate::net::FrameKind::Stats) request.
///
/// Counters are monotone over the server lifetime; `queue_depth`,
/// `inflight` and `connections` are instantaneous gauges; the latency and
/// throughput figures are computed over a sliding window of the most recent
/// completed queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStatsReport {
    /// Epoch of the snapshot currently serving queries.
    pub epoch: u64,
    /// Live items in the serving snapshot.
    pub items: u64,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Connections currently open.
    pub connections: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: u64,
    /// Configured admission-queue bound.
    pub queue_capacity: u64,
    /// Requests admitted but not yet answered (queued or executing).
    pub inflight: u64,
    /// Queries answered successfully.
    pub completed: u64,
    /// Requests shed with `Overloaded` (queue full or per-connection cap).
    pub shed_overloaded: u64,
    /// Requests shed with `Draining`.
    pub shed_draining: u64,
    /// Requests rejected at admission with `BadRequest`.
    pub bad_requests: u64,
    /// Admitted queries that failed inside the index.
    pub index_errors: u64,
    /// Median latency of recently completed queries, in microseconds
    /// (admission to answer; `0` until something completes).
    pub p50_us: f64,
    /// 95th-percentile latency of recently completed queries, microseconds.
    pub p95_us: f64,
    /// Completed-query throughput over the latency window, queries/second.
    pub qps: f64,
    /// Rebuild debt (correction support) of the attached writer, `0` when no
    /// writer is attached.
    pub rebuild_support: u64,
    /// Rebuild debt as a fraction of the rebuild threshold (`0.0` when no
    /// writer is attached).
    pub rebuild_fraction: f64,
    /// `true` once the server has begun draining.
    pub draining: bool,
    /// Requests shed with `Overloaded` because they sat in the admission
    /// queue past [`ServeOptions::queue_deadline`](crate::ServeOptions::queue_deadline)
    /// — the `deadline_exceeded` shed
    /// cause, distinguishable from queue-full sheds (`shed_overloaded`
    /// counts both). Additive wire field: reports from servers predating it
    /// decode with `0`.
    pub shed_deadline: u64,
}

/// Sample ring: completion timestamp (seconds since server start) and
/// latency (seconds), for the most recent `LATENCY_WINDOW` completions.
struct LatencyWindow {
    samples: Vec<(f64, f64)>,
    next: usize,
}

/// Shared mutable statistics of one running network server.
pub(crate) struct NetStats {
    started: Instant,
    pub(crate) connections: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) shed_overloaded: AtomicU64,
    pub(crate) shed_draining: AtomicU64,
    pub(crate) shed_deadline: AtomicU64,
    pub(crate) bad_requests: AtomicU64,
    pub(crate) index_errors: AtomicU64,
    pub(crate) inflight: AtomicU64,
    window: Mutex<LatencyWindow>,
}

impl NetStats {
    pub(crate) fn new() -> Self {
        NetStats {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_overloaded: AtomicU64::new(0),
            shed_draining: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            index_errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            window: Mutex::new(LatencyWindow {
                samples: Vec::with_capacity(LATENCY_WINDOW),
                next: 0,
            }),
        }
    }

    pub(crate) fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Record one successful completion: `admitted` is when the request was
    /// read off the socket.
    pub(crate) fn record_completion(&self, admitted: Instant) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let at = now.duration_since(self.started).as_secs_f64();
        let latency = now.duration_since(admitted).as_secs_f64();
        let mut window = self.window.lock().unwrap_or_else(PoisonError::into_inner);
        if window.samples.len() < LATENCY_WINDOW {
            window.samples.push((at, latency));
        } else {
            let slot = window.next;
            window.samples[slot] = (at, latency);
            window.next = (slot + 1) % LATENCY_WINDOW;
        }
    }

    /// p50/p95 latency (microseconds) and throughput (queries/second) over
    /// the current window.
    pub(crate) fn latency_summary(&self) -> (f64, f64, f64) {
        let window = self.window.lock().unwrap_or_else(PoisonError::into_inner);
        if window.samples.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut latencies: Vec<f64> = window.samples.iter().map(|&(_, l)| l).collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |q: f64| -> f64 {
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx] * 1e6
        };
        let qps = if window.samples.len() >= 2 {
            let newest = window
                .samples
                .iter()
                .map(|&(at, _)| at)
                .fold(f64::MIN, f64::max);
            let oldest = window
                .samples
                .iter()
                .map(|&(at, _)| at)
                .fold(f64::MAX, f64::min);
            if newest > oldest {
                (window.samples.len() - 1) as f64 / (newest - oldest)
            } else {
                0.0
            }
        } else {
            0.0
        };
        (pick(0.50), pick(0.95), qps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_window_reports_zeros() {
        let stats = NetStats::new();
        assert_eq!(stats.latency_summary(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn completions_populate_the_window() {
        let stats = NetStats::new();
        let admitted = Instant::now() - Duration::from_millis(2);
        for _ in 0..10 {
            stats.record_completion(admitted);
        }
        assert_eq!(stats.completed.load(Ordering::Relaxed), 10);
        let (p50, p95, _qps) = stats.latency_summary();
        assert!(p50 >= 2_000.0, "p50 {p50}us should cover the 2ms sleep");
        assert!(p95 >= p50);
    }

    #[test]
    fn ring_overwrites_oldest_past_capacity() {
        let stats = NetStats::new();
        let admitted = Instant::now();
        for _ in 0..(LATENCY_WINDOW + 17) {
            stats.record_completion(admitted);
        }
        let window = stats.window.lock().unwrap();
        assert_eq!(window.samples.len(), LATENCY_WINDOW);
        assert_eq!(window.next, 17);
    }
}
