//! The network front door: `MGW1` wire protocol, TCP server with admission
//! control and load-shedding, and a blocking client.
//!
//! Everything here is plain `std` — `TcpListener`/`TcpStream`, threads,
//! mutexes and condvars; no async runtime, no framing library. The wire
//! format reuses the bounds-checked, checksummed codec discipline of the
//! `MOG1` index files ([`mogul_sparse::persist`]), and both sides of the
//! socket speak the crate's canonical
//! [`QueryRequest`](crate::QueryRequest)/[`QueryResponse`](crate::QueryResponse)
//! vocabulary with the typed [`ServeError`](crate::ServeError) contract —
//! answers over the socket are **bit-identical** to in-process answers.
//!
//! * [`wire`] — the frame codec: layout, versioning, typed decode errors.
//! * [`server`] — [`NetServer`]: accept/reader/worker threading, bounded
//!   admission queue with typed `Overloaded`/`Draining` shedding, graceful
//!   drain, and the stats endpoint.
//! * [`backend`] — [`ServeBackend`], the answering engine behind the front
//!   door (single-index [`QueryServer`](crate::QueryServer) or sharded
//!   scatter-gather with degraded-mode answers).
//! * [`client`] — [`NetClient`]: synchronous and pipelined request forms.
//! * [`stats`] — [`ServerStatsReport`], the wire-visible operational
//!   snapshot (p50/p95/qps, queue depth, shed counts, epoch, rebuild debt).
//!
//! See `docs/NETWORKING.md` for the operator-facing walkthrough, and
//! [`crate::resilience`] for the fault-tolerant client side (replica
//! failover, retry/backoff, fault injection).

pub mod backend;
pub mod client;
pub mod server;
pub mod stats;
pub mod wire;

pub use backend::ServeBackend;
pub use client::{NetClient, NetError};
pub use server::{NetHandle, NetServer};
pub use stats::ServerStatsReport;
pub use wire::{Frame, FrameKind, WireError, MAX_FRAME_PAYLOAD, WIRE_MAGIC, WIRE_VERSION};
