//! [`ServeBackend`]: the answering engine behind a
//! [`NetServer`](crate::net::NetServer).
//!
//! The front door does admission control, framing and statistics; *what*
//! answers an admitted query is this trait. Two engines implement it:
//!
//! * [`QueryServer`] — the single-index server. Always answers
//!   [`ResponseStatus::Complete`]; there is no shard to lose.
//! * [`ShardedServer`] — the sharded scatter-gather server, answering
//!   through [`ShardedServer::query_degraded`]: a probed shard that fails
//!   (injected fault, panic, per-scatter deadline) is dropped from the
//!   merge and the answer is tagged [`ResponseStatus::Degraded`] — unless
//!   the request demanded completeness, in which case it fails typed with
//!   [`ServeError::Incomplete`](crate::ServeError::Incomplete).

use crate::error::ServeResult;
use crate::request::{QueryRequest, QueryResponse, ResponseStatus};
use crate::server::QueryServer;
use crate::sharded::ShardedServer;

/// The answering engine behind a network front door. Object-safe so one
/// [`NetServer`](crate::net::NetServer) implementation serves both engine
/// shapes.
pub trait ServeBackend: Send + Sync + 'static {
    /// Admission-time validation against the engine's current snapshot
    /// (never touches the solve path; see [`QueryRequest::validate`]).
    fn validate(&self, request: &QueryRequest) -> ServeResult<()>;

    /// Answer one admitted request. `require_complete` is the wire strict
    /// flag: an engine that cannot answer completely must fail typed
    /// instead of degrading.
    fn answer(
        &self,
        request: &QueryRequest,
        require_complete: bool,
    ) -> ServeResult<(QueryResponse, ResponseStatus)>;

    /// Epoch of the snapshot currently answering queries (for the stats
    /// endpoint).
    fn epoch(&self) -> u64;

    /// Live items in the serving snapshot (for the stats endpoint).
    fn items(&self) -> u64;
}

impl ServeBackend for QueryServer {
    fn validate(&self, request: &QueryRequest) -> ServeResult<()> {
        request.validate(&self.snapshot())
    }

    fn answer(
        &self,
        request: &QueryRequest,
        _require_complete: bool,
    ) -> ServeResult<(QueryResponse, ResponseStatus)> {
        // A single index has no shards to lose: every answer is complete,
        // and `require_complete` is trivially satisfied.
        self.query(request)
            .map(|response| (response, ResponseStatus::Complete))
    }

    fn epoch(&self) -> u64 {
        QueryServer::epoch(self)
    }

    fn items(&self) -> u64 {
        self.len() as u64
    }
}

impl ServeBackend for ShardedServer {
    fn validate(&self, request: &QueryRequest) -> ServeResult<()> {
        request.validate_sharded(&self.snapshot())
    }

    fn answer(
        &self,
        request: &QueryRequest,
        require_complete: bool,
    ) -> ServeResult<(QueryResponse, ResponseStatus)> {
        self.query_degraded(request, require_complete)
    }

    fn epoch(&self) -> u64 {
        ShardedServer::epoch(self)
    }

    fn items(&self) -> u64 {
        self.len() as u64
    }
}
