//! The `MGW1` wire protocol: length-prefixed, checksummed, versioned frames.
//!
//! Every message on a serving connection is one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "MGW1"
//! 4       2     version (u16, little-endian; this codec speaks version 1)
//! 6       1     frame kind (see [`FrameKind`])
//! 7       8     request id (u64, echoed verbatim in the response frame)
//! 15      4     payload length (u32; bounded by [`MAX_FRAME_PAYLOAD`])
//! 19      n     payload (kind-specific codec, see below)
//! 19+n    8     FNV-1a-64 checksum of bytes 0..19+n
//! ```
//!
//! The codec follows the `MOG1` persistence rules of
//! [`mogul_sparse::persist`] — whose primitives it reuses directly:
//!
//! * **Never panic.** Every read is bounds-checked; malformed input returns
//!   a typed [`WireError`].
//! * **Never trust a length.** The payload length is validated against
//!   [`MAX_FRAME_PAYLOAD`] *before* any allocation, so a hostile header
//!   cannot trigger a huge allocation.
//! * **Fail closed.** A frame whose checksum does not match is rejected;
//!   framing is then unrecoverable and the connection must be closed.
//!
//! Payloads encode `f64` values as raw IEEE-754 bits, so query answers
//! travel **bit-identically**: a score decoded from the wire equals the
//! in-process score exactly.

use crate::error::ServeError;
use crate::net::stats::ServerStatsReport;
use crate::request::{QueryRequest, QueryResponse, ResponseStatus};
use mogul_core::{CoreError, OutOfSampleResult, RankedNode, SearchStats, TopKResult};
use mogul_sparse::persist::{checksum64, put_f64, put_u64, put_usize, ByteReader};
use std::io::Read;

/// First four bytes of every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"MGW1";

/// Protocol version this codec speaks. Frames declaring a higher version are
/// rejected with [`WireError::UnsupportedVersion`] — never half-parsed.
pub const WIRE_VERSION: u16 = 1;

/// Upper bound on a frame payload (16 MiB). A declared length past this is
/// rejected before allocation; it comfortably fits any real request or
/// response (a 16 MiB payload is a two-million-component feature vector).
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// Fixed byte length of the frame header (magic through payload length).
pub const FRAME_HEADER_LEN: usize = 19;

/// Frame kinds of protocol version 1. Requests flow client → server
/// (`0x0_`), responses server → client (`0x8_`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A [`QueryRequest`] payload; answered by [`FrameKind::Answer`] or
    /// [`FrameKind::Error`] carrying the same request id.
    Query,
    /// Empty payload; answered by [`FrameKind::StatsReport`].
    Stats,
    /// Empty payload; asks the server to drain gracefully. Acknowledged
    /// immediately with [`FrameKind::DrainStarted`]; admitted requests still
    /// complete.
    Drain,
    /// A [`QueryResponse`] payload.
    Answer,
    /// A [`ServerStatsReport`] payload.
    StatsReport,
    /// A [`ServeError`] payload (typed: `Overloaded`, `Draining`,
    /// `BadRequest`, …).
    Error,
    /// Empty payload acknowledging a [`FrameKind::Drain`].
    DrainStarted,
}

impl FrameKind {
    /// Wire code of this kind.
    pub fn code(self) -> u8 {
        match self {
            FrameKind::Query => 0x01,
            FrameKind::Stats => 0x02,
            FrameKind::Drain => 0x03,
            FrameKind::Answer => 0x81,
            FrameKind::StatsReport => 0x82,
            FrameKind::Error => 0x83,
            FrameKind::DrainStarted => 0x84,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            0x01 => FrameKind::Query,
            0x02 => FrameKind::Stats,
            0x03 => FrameKind::Drain,
            0x81 => FrameKind::Answer,
            0x82 => FrameKind::StatsReport,
            0x83 => FrameKind::Error,
            0x84 => FrameKind::DrainStarted,
            got => return Err(WireError::UnknownKind { got }),
        })
    }
}

/// One decoded frame (header fields + raw payload bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind.
    pub kind: FrameKind,
    /// Request id (echoed from request to response).
    pub request_id: u64,
    /// Raw payload bytes (decode with the kind-specific codec).
    pub payload: Vec<u8>,
}

/// Typed decode failures of the wire codec.
///
/// [`WireError::Payload`] leaves the connection usable (the frame itself was
/// intact); every other variant means framing is lost or the peer speaks a
/// different protocol, and the connection must be closed.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes actually read.
        got: [u8; 4],
    },
    /// The frame declares a protocol version this codec does not speak.
    UnsupportedVersion {
        /// Declared version.
        got: u16,
    },
    /// The frame kind byte is not a known [`FrameKind`].
    UnknownKind {
        /// The byte actually read.
        got: u8,
    },
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`] (rejected
    /// before allocation).
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The trailing checksum does not match the received bytes.
    ChecksumMismatch {
        /// Checksum declared by the frame.
        expected: u64,
        /// Checksum of the bytes actually received.
        actual: u64,
    },
    /// The stream ended mid-frame.
    Truncated {
        /// Which part of the frame was being read.
        context: &'static str,
    },
    /// The frame was intact but its payload failed the kind-specific codec.
    Payload(String),
    /// A socket read or write exceeded its configured timeout (see
    /// [`NetClient::set_read_timeout`](crate::net::NetClient::set_read_timeout)).
    /// The connection state is indeterminate mid-frame, so the connection
    /// must be abandoned — but the failure is transient, and the request is
    /// safe to retry against another replica.
    TimedOut {
        /// Human-readable detail from the underlying I/O error.
        detail: String,
    },
    /// An I/O failure while reading or writing the stream.
    Io {
        /// The kind of I/O error.
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad frame magic {got:?} (want \"MGW1\")"),
            WireError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (this codec speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownKind { got } => write!(f, "unknown frame kind 0x{got:02x}"),
            WireError::FrameTooLarge { declared, max } => {
                write!(
                    f,
                    "frame payload of {declared} bytes exceeds the {max}-byte bound"
                )
            }
            WireError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: declared {expected:#018x}, computed {actual:#018x}"
            ),
            WireError::Truncated { context } => write!(f, "stream ended while reading {context}"),
            WireError::Payload(msg) => write!(f, "malformed frame payload: {msg}"),
            WireError::TimedOut { detail } => write!(f, "i/o timeout: {detail}"),
            WireError::Io { kind, detail } => write!(f, "i/o error ({kind:?}): {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> Self {
        match err.kind() {
            // `set_read_timeout` surfaces an expired deadline as either
            // `WouldBlock` (unix) or `TimedOut` (windows); both mean the
            // peer stalled, not that it answered wrongly.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::TimedOut {
                detail: err.to_string(),
            },
            kind => WireError::Io {
                kind,
                detail: err.to_string(),
            },
        }
    }
}

/// Map a [`ByteReader`] failure onto [`WireError::Payload`].
fn payload_err(err: mogul_sparse::SparseError) -> WireError {
    WireError::Payload(err.to_string())
}

// ---------------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------------

/// Encode one complete frame (header + payload + checksum) into a buffer
/// ready for a single `write_all`.
pub fn encode_frame(
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
) -> Result<Vec<u8>, WireError> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            declared: payload.len(),
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(kind.code());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    Ok(out)
}

/// Fill `buf` from the reader, distinguishing a clean end-of-stream before
/// the first byte (`Ok(false)`) from a mid-read truncation.
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<bool, WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(WireError::Truncated { context });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// Read one frame from a stream.
///
/// Returns `Ok(None)` when the stream is cleanly closed at a frame boundary
/// (the normal end of a connection). Header fields are validated — and the
/// payload length bounded — *before* the payload is allocated or read; the
/// trailing checksum is verified over everything received.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    if !read_exact_or_eof(r, &mut header, "frame header")? {
        return Ok(None);
    }
    if header[..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic {
            got: [header[0], header[1], header[2], header[3]],
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    let kind = FrameKind::from_code(header[6])?;
    let request_id = u64::from_le_bytes(header[7..15].try_into().expect("8-byte slice"));
    let declared = u32::from_le_bytes(header[15..19].try_into().expect("4-byte slice")) as usize;
    if declared > MAX_FRAME_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            declared,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let mut payload = vec![0u8; declared];
    if !payload.is_empty() && !read_exact_or_eof(r, &mut payload, "frame payload")? {
        return Err(WireError::Truncated {
            context: "frame payload",
        });
    }
    let mut trailer = [0u8; 8];
    if !read_exact_or_eof(r, &mut trailer, "frame checksum")? {
        return Err(WireError::Truncated {
            context: "frame checksum",
        });
    }
    let expected = u64::from_le_bytes(trailer);
    let mut actual = checksum64(&header);
    // FNV-1a composes over concatenation only by re-feeding; checksum the
    // header and payload as one logical stream without concatenating them.
    for &b in &payload {
        actual ^= b as u64;
        actual = actual.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if expected != actual {
        return Err(WireError::ChecksumMismatch { expected, actual });
    }
    Ok(Some(Frame {
        kind,
        request_id,
        payload,
    }))
}

// ---------------------------------------------------------------------------
// String helpers (length-prefixed UTF-8)
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn take_str(reader: &mut ByteReader<'_>, what: &str) -> Result<String, WireError> {
    let len = reader.take_len(1, what).map_err(payload_err)?;
    let bytes = reader.take_bytes(len, what).map_err(payload_err)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| WireError::Payload(format!("{what}: invalid UTF-8")))
}

// ---------------------------------------------------------------------------
// QueryRequest payload
// ---------------------------------------------------------------------------

const REQ_IN_DATABASE: u8 = 0;
const REQ_OUT_OF_SAMPLE: u8 = 1;
// Strict variants: identical body, but the request demands a complete
// answer — a degraded scatter-gather must fail typed
// ([`ServeError::Incomplete`]) instead of answering with a shard subset.
// New tags (rather than a trailing flag byte) keep the common case
// byte-identical to protocol v1 day one: a non-strict request encoded by
// this codec decodes on a pre-resilience server, and a pre-resilience
// server rejects a strict request typed (unknown tag → `Payload` error on
// a still-usable connection) instead of silently dropping the flag.
const REQ_IN_DATABASE_STRICT: u8 = 2;
const REQ_OUT_OF_SAMPLE_STRICT: u8 = 3;

/// Encode a [`QueryRequest`] payload.
pub fn encode_query_request(request: &QueryRequest, out: &mut Vec<u8>) {
    encode_query_request_opts(request, false, out);
}

/// Encode a [`QueryRequest`] payload, optionally flagged `require_complete`
/// (the strict tags). A non-strict encoding is byte-identical to
/// [`encode_query_request`].
pub fn encode_query_request_opts(
    request: &QueryRequest,
    require_complete: bool,
    out: &mut Vec<u8>,
) {
    match request {
        QueryRequest::InDatabase { node, k } => {
            out.push(if require_complete {
                REQ_IN_DATABASE_STRICT
            } else {
                REQ_IN_DATABASE
            });
            put_usize(out, *node);
            put_usize(out, *k);
        }
        QueryRequest::OutOfSample { feature, k } => {
            out.push(if require_complete {
                REQ_OUT_OF_SAMPLE_STRICT
            } else {
                REQ_OUT_OF_SAMPLE
            });
            put_usize(out, *k);
            put_usize(out, feature.len());
            for &v in feature {
                put_f64(out, v);
            }
        }
    }
}

/// Decode a [`QueryRequest`] payload (must consume the payload exactly),
/// discarding the `require_complete` flag.
pub fn decode_query_request(payload: &[u8]) -> Result<QueryRequest, WireError> {
    decode_query_request_opts(payload).map(|(request, _)| request)
}

/// Decode a [`QueryRequest`] payload (must consume the payload exactly),
/// returning the request and its `require_complete` flag.
pub fn decode_query_request_opts(payload: &[u8]) -> Result<(QueryRequest, bool), WireError> {
    let mut reader = ByteReader::new(payload);
    let tag = reader.take_bytes(1, "request tag").map_err(payload_err)?[0];
    let require_complete = matches!(tag, REQ_IN_DATABASE_STRICT | REQ_OUT_OF_SAMPLE_STRICT);
    let request = match tag {
        REQ_IN_DATABASE | REQ_IN_DATABASE_STRICT => {
            let node = reader.take_usize("request node").map_err(payload_err)?;
            let k = reader.take_usize("request k").map_err(payload_err)?;
            QueryRequest::InDatabase { node, k }
        }
        REQ_OUT_OF_SAMPLE | REQ_OUT_OF_SAMPLE_STRICT => {
            let k = reader.take_usize("request k").map_err(payload_err)?;
            let len = reader.take_len(8, "request feature").map_err(payload_err)?;
            let mut feature = Vec::with_capacity(len);
            for _ in 0..len {
                feature.push(reader.take_f64("request feature").map_err(payload_err)?);
            }
            QueryRequest::OutOfSample { feature, k }
        }
        other => {
            return Err(WireError::Payload(format!(
                "unknown query-request tag {other}"
            )))
        }
    };
    reader.finish("query request").map_err(payload_err)?;
    Ok((request, require_complete))
}

// ---------------------------------------------------------------------------
// QueryResponse payload
// ---------------------------------------------------------------------------

fn encode_top_k(top_k: &TopKResult, out: &mut Vec<u8>) {
    put_usize(out, top_k.len());
    for item in top_k.items() {
        put_usize(out, item.node);
        put_f64(out, item.score);
    }
}

fn decode_top_k(reader: &mut ByteReader<'_>) -> Result<TopKResult, WireError> {
    let len = reader.take_len(16, "top-k items").map_err(payload_err)?;
    let mut items = Vec::with_capacity(len);
    for _ in 0..len {
        let node = reader.take_usize("top-k node").map_err(payload_err)?;
        let score = reader.take_f64("top-k score").map_err(payload_err)?;
        items.push(RankedNode { node, score });
    }
    // `TopKResult::new` re-sorts with the same (score desc, node asc)
    // comparator every constructor uses, so the decoded ordering is
    // bit-identical to the encoded one.
    Ok(TopKResult::new(items))
}

fn encode_search_stats(stats: &SearchStats, out: &mut Vec<u8>) {
    put_usize(out, stats.clusters_considered);
    put_usize(out, stats.clusters_pruned);
    put_usize(out, stats.nodes_scored);
    put_usize(out, stats.bound_evaluations);
}

fn decode_search_stats(reader: &mut ByteReader<'_>) -> Result<SearchStats, WireError> {
    Ok(SearchStats {
        clusters_considered: reader
            .take_usize("stats clusters_considered")
            .map_err(payload_err)?,
        clusters_pruned: reader
            .take_usize("stats clusters_pruned")
            .map_err(payload_err)?,
        nodes_scored: reader
            .take_usize("stats nodes_scored")
            .map_err(payload_err)?,
        bound_evaluations: reader
            .take_usize("stats bound_evaluations")
            .map_err(payload_err)?,
    })
}

const RESP_IN_DATABASE: u8 = 0;
const RESP_OUT_OF_SAMPLE: u8 = 1;
// Degraded variants: same body, prefixed with the `shards_answered /
// shards_total` completeness field. Complete answers keep tags 0/1
// byte-for-byte, so every answer an old client can *receive* (it cannot
// send the strict flag that tolerates degradation) still decodes.
const RESP_IN_DATABASE_DEGRADED: u8 = 2;
const RESP_OUT_OF_SAMPLE_DEGRADED: u8 = 3;

/// Encode a [`QueryResponse`] payload (scores as raw IEEE-754 bits —
/// bit-identical on decode).
pub fn encode_query_response(response: &QueryResponse, out: &mut Vec<u8>) {
    encode_query_response_status(response, ResponseStatus::Complete, out);
}

/// Encode a [`QueryResponse`] payload together with its completeness
/// status. A [`ResponseStatus::Complete`] encoding is byte-identical to
/// [`encode_query_response`]; a degraded one uses the degraded tags and
/// prefixes the body with the shard counts.
pub fn encode_query_response_status(
    response: &QueryResponse,
    status: ResponseStatus,
    out: &mut Vec<u8>,
) {
    let degraded = |base: u8| -> u8 {
        match status {
            ResponseStatus::Complete => base,
            ResponseStatus::Degraded { .. } => base + 2,
        }
    };
    let put_status = |out: &mut Vec<u8>| {
        if let ResponseStatus::Degraded {
            shards_answered,
            shards_total,
        } = status
        {
            put_usize(out, shards_answered);
            put_usize(out, shards_total);
        }
    };
    match response {
        QueryResponse::InDatabase(top_k) => {
            out.push(degraded(RESP_IN_DATABASE));
            put_status(out);
            encode_top_k(top_k, out);
        }
        QueryResponse::OutOfSample(result) => {
            out.push(degraded(RESP_OUT_OF_SAMPLE));
            put_status(out);
            encode_top_k(&result.top_k, out);
            put_usize(out, result.neighbors.len());
            for &n in &result.neighbors {
                put_usize(out, n);
            }
            put_f64(out, result.nearest_neighbor_secs);
            put_f64(out, result.top_k_secs);
            encode_search_stats(&result.stats, out);
        }
    }
}

/// Decode a [`QueryResponse`] payload (must consume the payload exactly),
/// discarding the completeness status.
pub fn decode_query_response(payload: &[u8]) -> Result<QueryResponse, WireError> {
    decode_query_response_status(payload).map(|(response, _)| response)
}

/// Decode a [`QueryResponse`] payload (must consume the payload exactly),
/// returning the response and its [`ResponseStatus`].
pub fn decode_query_response_status(
    payload: &[u8],
) -> Result<(QueryResponse, ResponseStatus), WireError> {
    let mut reader = ByteReader::new(payload);
    let tag = reader.take_bytes(1, "response tag").map_err(payload_err)?[0];
    let status = match tag {
        RESP_IN_DATABASE | RESP_OUT_OF_SAMPLE => ResponseStatus::Complete,
        RESP_IN_DATABASE_DEGRADED | RESP_OUT_OF_SAMPLE_DEGRADED => {
            let shards_answered = reader
                .take_usize("response shards answered")
                .map_err(payload_err)?;
            let shards_total = reader
                .take_usize("response shards total")
                .map_err(payload_err)?;
            ResponseStatus::Degraded {
                shards_answered,
                shards_total,
            }
        }
        other => {
            return Err(WireError::Payload(format!(
                "unknown query-response tag {other}"
            )))
        }
    };
    let response = match tag {
        RESP_IN_DATABASE | RESP_IN_DATABASE_DEGRADED => {
            QueryResponse::InDatabase(decode_top_k(&mut reader)?)
        }
        _ => {
            let top_k = decode_top_k(&mut reader)?;
            let neighbors = reader
                .take_usize_vec("response neighbors")
                .map_err(payload_err)?;
            let nearest_neighbor_secs = reader
                .take_f64("response nn seconds")
                .map_err(payload_err)?;
            let top_k_secs = reader
                .take_f64("response top-k seconds")
                .map_err(payload_err)?;
            let stats = decode_search_stats(&mut reader)?;
            QueryResponse::OutOfSample(Box::new(OutOfSampleResult {
                top_k,
                neighbors,
                nearest_neighbor_secs,
                top_k_secs,
                stats,
            }))
        }
    };
    reader.finish("query response").map_err(payload_err)?;
    Ok((response, status))
}

// ---------------------------------------------------------------------------
// ServeError payload
// ---------------------------------------------------------------------------

const ERR_OVERLOADED: u8 = 1;
const ERR_DRAINING: u8 = 2;
const ERR_BAD_REQUEST: u8 = 3;
const ERR_INDEX: u8 = 4;
const ERR_CONFIG: u8 = 5;
const ERR_DURABILITY: u8 = 6;
const ERR_INCOMPLETE: u8 = 7;

/// Encode a [`ServeError`] payload.
///
/// [`ServeError::Index`] travels as its display string (the inner
/// [`CoreError`] structure is not a wire contract); it decodes as
/// `Index(InvalidInput(message))`, preserving the variant and the message.
pub fn encode_serve_error(error: &ServeError, out: &mut Vec<u8>) {
    match error {
        ServeError::Overloaded {
            queue_depth,
            queue_capacity,
        } => {
            out.push(ERR_OVERLOADED);
            put_usize(out, *queue_depth);
            put_usize(out, *queue_capacity);
        }
        ServeError::Draining => out.push(ERR_DRAINING),
        ServeError::BadRequest { reason } => {
            out.push(ERR_BAD_REQUEST);
            put_str(out, reason);
        }
        ServeError::Index(err) => {
            out.push(ERR_INDEX);
            put_str(out, &err.to_string());
        }
        ServeError::Config { reason } => {
            out.push(ERR_CONFIG);
            put_str(out, reason);
        }
        ServeError::Durability { reason } => {
            out.push(ERR_DURABILITY);
            put_str(out, reason);
        }
        ServeError::Incomplete {
            shards_answered,
            shards_total,
        } => {
            out.push(ERR_INCOMPLETE);
            put_usize(out, *shards_answered);
            put_usize(out, *shards_total);
        }
    }
}

/// Decode a [`ServeError`] payload (must consume the payload exactly).
pub fn decode_serve_error(payload: &[u8]) -> Result<ServeError, WireError> {
    let mut reader = ByteReader::new(payload);
    let tag = reader.take_bytes(1, "error tag").map_err(payload_err)?[0];
    let error = match tag {
        ERR_OVERLOADED => ServeError::Overloaded {
            queue_depth: reader
                .take_usize("error queue depth")
                .map_err(payload_err)?,
            queue_capacity: reader
                .take_usize("error queue capacity")
                .map_err(payload_err)?,
        },
        ERR_DRAINING => ServeError::Draining,
        ERR_BAD_REQUEST => ServeError::BadRequest {
            reason: take_str(&mut reader, "error reason")?,
        },
        ERR_INDEX => ServeError::Index(CoreError::InvalidInput(take_str(
            &mut reader,
            "error detail",
        )?)),
        ERR_CONFIG => ServeError::Config {
            reason: take_str(&mut reader, "error reason")?,
        },
        ERR_DURABILITY => ServeError::Durability {
            reason: take_str(&mut reader, "error reason")?,
        },
        ERR_INCOMPLETE => ServeError::Incomplete {
            shards_answered: reader
                .take_usize("error shards answered")
                .map_err(payload_err)?,
            shards_total: reader
                .take_usize("error shards total")
                .map_err(payload_err)?,
        },
        other => return Err(WireError::Payload(format!("unknown error tag {other}"))),
    };
    reader.finish("serve error").map_err(payload_err)?;
    Ok(error)
}

// ---------------------------------------------------------------------------
// ServerStatsReport payload
// ---------------------------------------------------------------------------

/// Encode a [`ServerStatsReport`] payload.
pub fn encode_stats_report(report: &ServerStatsReport, out: &mut Vec<u8>) {
    put_u64(out, report.epoch);
    put_u64(out, report.items);
    put_f64(out, report.uptime_secs);
    put_u64(out, report.connections);
    put_u64(out, report.queue_depth);
    put_u64(out, report.queue_capacity);
    put_u64(out, report.inflight);
    put_u64(out, report.completed);
    put_u64(out, report.shed_overloaded);
    put_u64(out, report.shed_draining);
    put_u64(out, report.bad_requests);
    put_u64(out, report.index_errors);
    put_f64(out, report.p50_us);
    put_f64(out, report.p95_us);
    put_f64(out, report.qps);
    put_u64(out, report.rebuild_support);
    put_f64(out, report.rebuild_fraction);
    out.push(report.draining as u8);
    // Additive trailing field (see the decoder): keep appending new fields
    // here, never reorder the ones above.
    put_u64(out, report.shed_deadline);
}

/// Decode a [`ServerStatsReport`] payload (must consume the payload
/// exactly).
pub fn decode_stats_report(payload: &[u8]) -> Result<ServerStatsReport, WireError> {
    let mut reader = ByteReader::new(payload);
    let u = |what: &str, reader: &mut ByteReader<'_>| -> Result<u64, WireError> {
        reader.take_u64(what).map_err(payload_err)
    };
    let report = ServerStatsReport {
        epoch: u("stats epoch", &mut reader)?,
        items: u("stats items", &mut reader)?,
        uptime_secs: reader.take_f64("stats uptime").map_err(payload_err)?,
        connections: u("stats connections", &mut reader)?,
        queue_depth: u("stats queue depth", &mut reader)?,
        queue_capacity: u("stats queue capacity", &mut reader)?,
        inflight: u("stats inflight", &mut reader)?,
        completed: u("stats completed", &mut reader)?,
        shed_overloaded: u("stats shed overloaded", &mut reader)?,
        shed_draining: u("stats shed draining", &mut reader)?,
        bad_requests: u("stats bad requests", &mut reader)?,
        index_errors: u("stats index errors", &mut reader)?,
        p50_us: reader.take_f64("stats p50").map_err(payload_err)?,
        p95_us: reader.take_f64("stats p95").map_err(payload_err)?,
        qps: reader.take_f64("stats qps").map_err(payload_err)?,
        rebuild_support: u("stats rebuild support", &mut reader)?,
        rebuild_fraction: reader
            .take_f64("stats rebuild fraction")
            .map_err(payload_err)?,
        draining: reader
            .take_bytes(1, "stats draining")
            .map_err(payload_err)?[0]
            != 0,
        // Additive trailing field: a payload from a pre-resilience server
        // simply ends here, and the counter defaults to zero. New fields
        // must follow the same pattern (append + default-if-absent) so old
        // payloads keep decoding.
        shed_deadline: if reader.remaining() > 0 {
            u("stats shed deadline", &mut reader)?
        } else {
            0
        },
    };
    reader.finish("stats report").map_err(payload_err)?;
    Ok(report)
}
