//! [`NetClient`]: a blocking `MGW1` client for tests, tools and the load
//! harness.
//!
//! The client is deliberately simple — one socket, blocking reads, explicit
//! request-id bookkeeping. [`NetClient::query`] is the synchronous
//! round-trip; [`NetClient::send_query`] / [`NetClient::recv_answer`] expose
//! the pipelined form (many requests in flight, responses correlated by id)
//! that the load generator uses to produce closed- and open-loop load.

use crate::error::ServeError;
use crate::net::stats::ServerStatsReport;
use crate::net::wire::{
    decode_query_response_status, decode_serve_error, decode_stats_report, encode_frame,
    encode_query_request_opts, read_frame, Frame, FrameKind, WireError,
};
use crate::request::{QueryRequest, QueryResponse, ResponseStatus};
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One pipelined answer as returned by [`NetClient::recv_answer_status`]:
/// the echoed request id paired with the server's verdict — a response
/// tagged with its [`ResponseStatus`], or a typed [`ServeError`].
pub type AnswerStatus = (u64, Result<(QueryResponse, ResponseStatus), ServeError>);

/// Client-side failures: transport/codec trouble, a typed server-side
/// rejection, or a protocol-order violation.
#[derive(Debug)]
pub enum NetError {
    /// The wire codec or the socket failed.
    Wire(WireError),
    /// The server answered with a typed [`ServeError`] frame (`Overloaded`,
    /// `Draining`, `BadRequest`, …).
    Serve(ServeError),
    /// The peer broke the protocol (unexpected frame kind or request id).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Wire(err) => write!(f, "wire error: {err}"),
            NetError::Serve(err) => write!(f, "server rejected the request: {err}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Wire(err) => Some(err),
            NetError::Serve(err) => Some(err),
            NetError::Protocol(_) => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(err: WireError) -> Self {
        NetError::Wire(err)
    }
}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> Self {
        NetError::Wire(err.into())
    }
}

impl NetError {
    /// Whether a failover client may retry this failure against another
    /// replica. Only a typed, non-retryable server rejection is final:
    /// transport trouble (timeouts, resets, truncated or corrupted frames)
    /// and protocol violations say nothing about the request itself, and
    /// queries are idempotent reads — retrying them elsewhere is always
    /// safe. Delegates to [`ServeError::is_retryable`] for typed
    /// rejections.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Serve(err) => err.is_retryable(),
            NetError::Wire(_) | NetError::Protocol(_) => true,
        }
    }
}

/// A blocking connection to a [`NetServer`](crate::net::NetServer).
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
}

impl NetClient {
    /// Connect to a serving address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient { stream, next_id: 1 })
    }

    /// Connect to a serving address, bounding the TCP handshake itself.
    /// A replica that is down-but-not-refusing (dropped SYNs, a dead NAT
    /// entry) fails within `timeout` instead of the OS connect timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient { stream, next_id: 1 })
    }

    /// Bound every subsequent read. A read past the deadline surfaces as
    /// [`WireError::TimedOut`] (retryable), so a stalled server fails the
    /// request instead of hanging the caller. `None` (the initial state)
    /// blocks without bound.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Bound every subsequent write — the mirror of
    /// [`NetClient::set_read_timeout`] for a peer that stops reading while
    /// the socket's send buffer is full.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_write_timeout(timeout)
    }

    /// Clone the underlying socket into a second handle — the pipelined
    /// pattern: one thread `send_query`s on the original while another
    /// `recv_answer`s on the clone.
    pub fn try_clone(&self) -> std::io::Result<NetClient> {
        Ok(NetClient {
            stream: self.stream.try_clone()?,
            next_id: self.next_id,
        })
    }

    fn send_frame(&mut self, kind: FrameKind, payload: &[u8]) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_frame(kind, id, payload)?;
        self.stream.write_all(&frame).map_err(WireError::from)?;
        Ok(id)
    }

    /// Send one query without waiting; returns the request id its answer
    /// will carry.
    pub fn send_query(&mut self, request: &QueryRequest) -> Result<u64, NetError> {
        self.send_query_opts(request, false)
    }

    /// [`NetClient::send_query`] with the `require_complete` flag: a server
    /// that would answer degraded (shards missing from the scatter-gather)
    /// must instead reject the request with a typed
    /// [`ServeError::Incomplete`].
    pub fn send_query_opts(
        &mut self,
        request: &QueryRequest,
        require_complete: bool,
    ) -> Result<u64, NetError> {
        let mut payload = Vec::new();
        encode_query_request_opts(request, require_complete, &mut payload);
        self.send_frame(FrameKind::Query, &payload)
    }

    /// Read the next response frame: `(request id, answer-or-typed-error)`.
    ///
    /// Only `Answer` and `Error` frames are expected here; anything else is
    /// a [`NetError::Protocol`]. A cleanly closed stream surfaces as
    /// [`WireError::Truncated`]-flavored `Protocol` ("server closed").
    pub fn recv_answer(&mut self) -> Result<(u64, Result<QueryResponse, ServeError>), NetError> {
        self.recv_answer_status()
            .map(|(id, answer)| (id, answer.map(|(response, _)| response)))
    }

    /// [`NetClient::recv_answer`], keeping the [`ResponseStatus`] that tags
    /// degraded scatter-gather answers.
    pub fn recv_answer_status(&mut self) -> Result<AnswerStatus, NetError> {
        let frame = self.read_some_frame()?;
        match frame.kind {
            FrameKind::Answer => {
                let decoded = decode_query_response_status(&frame.payload)?;
                Ok((frame.request_id, Ok(decoded)))
            }
            FrameKind::Error => {
                let error = decode_serve_error(&frame.payload)?;
                Ok((frame.request_id, Err(error)))
            }
            other => Err(NetError::Protocol(format!(
                "expected an answer or error frame, got {other:?}"
            ))),
        }
    }

    fn read_some_frame(&mut self) -> Result<Frame, NetError> {
        match read_frame(&mut self.stream)? {
            Some(frame) => Ok(frame),
            None => Err(NetError::Protocol(
                "server closed the connection before answering".into(),
            )),
        }
    }

    /// Synchronous round-trip: send one query, wait for its answer. A typed
    /// server-side rejection becomes [`NetError::Serve`].
    pub fn query(&mut self, request: &QueryRequest) -> Result<QueryResponse, NetError> {
        self.query_status(request, false)
            .map(|(response, _)| response)
    }

    /// Synchronous round-trip keeping the [`ResponseStatus`]: the degraded
    /// tag of a partial scatter-gather answer, and the `require_complete`
    /// flag demanding the server fail typed instead of degrading.
    pub fn query_status(
        &mut self,
        request: &QueryRequest,
        require_complete: bool,
    ) -> Result<(QueryResponse, ResponseStatus), NetError> {
        let sent = self.send_query_opts(request, require_complete)?;
        let (got, answer) = self.recv_answer_status()?;
        if got != sent {
            return Err(NetError::Protocol(format!(
                "answer carries request id {got}, expected {sent} \
                 (mixing `query` with pipelined sends on one connection?)"
            )));
        }
        answer.map_err(NetError::Serve)
    }

    /// Fetch the server's statistics snapshot.
    pub fn stats(&mut self) -> Result<ServerStatsReport, NetError> {
        let sent = self.send_frame(FrameKind::Stats, &[])?;
        let frame = self.read_some_frame()?;
        match frame.kind {
            FrameKind::StatsReport if frame.request_id == sent => {
                Ok(decode_stats_report(&frame.payload)?)
            }
            FrameKind::Error => {
                let error = decode_serve_error(&frame.payload)?;
                Err(NetError::Serve(error))
            }
            other => Err(NetError::Protocol(format!(
                "expected a stats report, got {other:?}"
            ))),
        }
    }

    /// Ask the server to drain gracefully; returns once the drain is
    /// acknowledged (admitted work still completes server-side after this).
    pub fn drain_server(&mut self) -> Result<(), NetError> {
        let sent = self.send_frame(FrameKind::Drain, &[])?;
        let frame = self.read_some_frame()?;
        match frame.kind {
            FrameKind::DrainStarted if frame.request_id == sent => Ok(()),
            FrameKind::Error => {
                let error = decode_serve_error(&frame.payload)?;
                Err(NetError::Serve(error))
            }
            other => Err(NetError::Protocol(format!(
                "expected a drain acknowledgement, got {other:?}"
            ))),
        }
    }
}
