//! The [`NetServer`]: a TCP front door over a [`QueryServer`], with
//! admission control and graceful drain.
//!
//! # Threading model
//!
//! One accept thread (the caller of [`NetServer::run`]), one reader thread
//! per connection, and a fixed pool of worker threads
//! ([`ServeOptions::workers`], auto-detected when `0`). Readers **admit**
//! requests — decode, validate against the current snapshot, and either
//! enqueue them or shed them with a typed error frame — and workers
//! **execute** them, writing the answer frame back under the connection's
//! write lock (responses may interleave across requests of one connection;
//! the request id correlates them).
//!
//! # Admission control
//!
//! The queue between readers and workers is **bounded**
//! ([`ServeOptions::queue_capacity`]). When it is full, the request is
//! answered immediately with
//! [`ServeError::Overloaded`] — carrying the
//! observed depth and the configured bound — instead of being buffered
//! without limit: under a sustained overload the server keeps answering at
//! its capacity and sheds the excess, so memory stays bounded and latency of
//! admitted requests stays flat. A single connection pipelining more than
//! [`ServeOptions::max_inflight_per_conn`] requests is shed the same way
//! before it can monopolize the shared queue. Malformed-but-framed requests
//! are rejected with `BadRequest` *before* they occupy a queue slot.
//!
//! # Drain
//!
//! [`NetHandle::drain`] (or a [`FrameKind::Drain`] frame) flips the server
//! into draining: new requests are answered with
//! [`ServeError::Draining`], already-admitted
//! requests run to completion and their answers are delivered, then sockets
//! shut down and [`NetServer::run`] returns. A snapshot swap needs no drain
//! at all — in-flight queries hold their epoch's `Arc` — so drain exists for
//! process shutdown, not for index updates.

use crate::error::ServeError;
use crate::net::backend::ServeBackend;
use crate::net::stats::{NetStats, ServerStatsReport};
use crate::net::wire::{
    encode_frame, encode_query_response_status, encode_serve_error, encode_stats_report,
    read_frame, Frame, FrameKind, WireError,
};
use crate::options::ServeOptions;
use crate::request::QueryRequest;
use crate::server::QueryServer;
use crate::sharded::ShardedServer;
use crate::updater::IndexWriter;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Per-connection state shared between its reader thread, the workers
/// answering its requests, and the drain path.
struct Conn {
    /// Write half (the reader thread owns its own clone of the stream).
    /// Workers lock this to write one complete frame at a time.
    writer: Mutex<TcpStream>,
    /// Requests admitted from this connection and not yet answered.
    inflight: AtomicUsize,
    /// Connection id (key into the live-connection registry).
    id: u64,
}

impl Conn {
    /// Serialize one frame onto this connection. Write failures are
    /// swallowed: the client is gone, and its reader thread will notice.
    fn send(&self, kind: FrameKind, request_id: u64, payload: &[u8]) {
        if let Ok(frame) = encode_frame(kind, request_id, payload) {
            let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writer.write_all(&frame);
        }
    }

    fn send_error(&self, request_id: u64, error: &ServeError) {
        let mut payload = Vec::new();
        encode_serve_error(error, &mut payload);
        self.send(FrameKind::Error, request_id, &payload);
    }
}

/// One admitted query waiting for (or undergoing) execution.
struct Work {
    conn: Arc<Conn>,
    request_id: u64,
    request: QueryRequest,
    require_complete: bool,
    admitted: Instant,
}

/// State shared by the accept thread, readers, workers and [`NetHandle`]s.
struct Shared {
    backend: Arc<dyn ServeBackend>,
    writer: Option<Arc<IndexWriter>>,
    options: ServeOptions,
    stats: NetStats,
    local_addr: SocketAddr,
    queue: Mutex<VecDeque<Work>>,
    /// Signaled when work is enqueued or drain begins (workers wait here).
    queue_cv: Condvar,
    /// Signaled when the last in-flight request completes (drain waits here).
    idle_cv: Condvar,
    draining: AtomicBool,
    /// Live connections, keyed by connection id (for socket shutdown on
    /// drain).
    conns: Mutex<Vec<Arc<Conn>>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the workers (so idle ones can observe the flag) and the
        // accept loop (which blocks in `accept`; a throwaway local
        // connection gets it to re-check the flag).
        self.queue_cv.notify_all();
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Total requests admitted and not yet answered (queued + executing).
    fn inflight_total(&self) -> u64 {
        self.stats.inflight.load(Ordering::SeqCst)
    }

    fn stats_report(&self) -> ServerStatsReport {
        let queue_depth = self
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len() as u64;
        let (p50_us, p95_us, qps) = self.stats.latency_summary();
        let (rebuild_support, rebuild_fraction) = match &self.writer {
            Some(writer) => {
                let debt = writer.debt();
                (debt.support as u64, debt.support_fraction())
            }
            None => (0, 0.0),
        };
        ServerStatsReport {
            epoch: self.backend.epoch(),
            items: self.backend.items(),
            uptime_secs: self.stats.uptime_secs(),
            connections: self.stats.connections.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity: self.options.queue_capacity() as u64,
            inflight: self.inflight_total(),
            completed: self.stats.completed.load(Ordering::Relaxed),
            shed_overloaded: self.stats.shed_overloaded.load(Ordering::Relaxed),
            shed_draining: self.stats.shed_draining.load(Ordering::Relaxed),
            bad_requests: self.stats.bad_requests.load(Ordering::Relaxed),
            index_errors: self.stats.index_errors.load(Ordering::Relaxed),
            p50_us,
            p95_us,
            qps,
            rebuild_support,
            rebuild_fraction,
            draining: self.draining.load(Ordering::SeqCst),
            shed_deadline: self.stats.shed_deadline.load(Ordering::Relaxed),
        }
    }

    /// Admit or shed one decoded query request (reader thread).
    fn admit(
        &self,
        conn: &Arc<Conn>,
        request_id: u64,
        request: QueryRequest,
        require_complete: bool,
    ) {
        if self.draining.load(Ordering::SeqCst) {
            self.stats.shed_draining.fetch_add(1, Ordering::Relaxed);
            conn.send_error(request_id, &ServeError::Draining);
            return;
        }
        // Validation before queueing: a malformed request must not occupy an
        // admission slot (and is answered even under full queue).
        if let Err(err) = self.backend.validate(&request) {
            self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            conn.send_error(request_id, &err);
            return;
        }
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let queue_depth = queue.len();
        if queue_depth >= self.options.queue_capacity()
            || conn.inflight.load(Ordering::SeqCst) >= self.options.max_inflight_per_conn()
        {
            drop(queue);
            self.stats.shed_overloaded.fetch_add(1, Ordering::Relaxed);
            conn.send_error(
                request_id,
                &ServeError::Overloaded {
                    queue_depth,
                    queue_capacity: self.options.queue_capacity(),
                },
            );
            return;
        }
        conn.inflight.fetch_add(1, Ordering::SeqCst);
        self.stats.inflight.fetch_add(1, Ordering::SeqCst);
        queue.push_back(Work {
            conn: Arc::clone(conn),
            request_id,
            request,
            require_complete,
            admitted: Instant::now(),
        });
        drop(queue);
        self.queue_cv.notify_one();
    }

    /// Worker loop: pop admitted work until drain empties the queue.
    fn worker_loop(&self) {
        loop {
            let work = {
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(work) = queue.pop_front() {
                        break work;
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self
                        .queue_cv
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            self.execute(work);
        }
    }

    fn execute(&self, work: Work) {
        self.execute_inner(&work);
        work.conn.inflight.fetch_sub(1, Ordering::SeqCst);
        if self.stats.inflight.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.idle_cv.notify_all();
        }
    }

    fn execute_inner(&self, work: &Work) {
        // Queue-wait deadline: a request that sat past it is shed instead
        // of executed — its client has almost certainly timed out and
        // retried elsewhere, so executing it would only delay the requests
        // queued behind it. Same typed `Overloaded` answer as a queue-full
        // shed; the stats distinguish the cause via `shed_deadline`.
        if let Some(deadline) = self.options.queue_deadline() {
            if work.admitted.elapsed() > deadline {
                self.stats.shed_overloaded.fetch_add(1, Ordering::Relaxed);
                self.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
                let queue_depth = self
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len();
                work.conn.send_error(
                    work.request_id,
                    &ServeError::Overloaded {
                        queue_depth,
                        queue_capacity: self.options.queue_capacity(),
                    },
                );
                return;
            }
        }
        match self.backend.answer(&work.request, work.require_complete) {
            Ok((response, status)) => {
                let mut payload = Vec::new();
                encode_query_response_status(&response, status, &mut payload);
                // Count before sending: a client that has seen N answers
                // must never read a stats report claiming fewer than N.
                self.stats.record_completion(work.admitted);
                work.conn.send(FrameKind::Answer, work.request_id, &payload);
            }
            Err(err) => {
                if matches!(err, ServeError::Index(_) | ServeError::Incomplete { .. }) {
                    self.stats.index_errors.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Admission re-validates against the *current* snapshot;
                    // a request admitted just before a swap can turn bad.
                    self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                }
                work.conn.send_error(work.request_id, &err);
            }
        }
    }

    /// Reader thread: frames off one connection until EOF, error, or drain
    /// shuts the socket down.
    fn reader_loop(&self, shared: &Arc<Shared>, conn: &Arc<Conn>, stream: &mut TcpStream) {
        loop {
            match read_frame(stream) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    if !self.handle_frame(shared, conn, frame) {
                        break;
                    }
                }
                Err(WireError::Io { .. }) | Err(WireError::TimedOut { .. }) => break,
                Err(WireError::Payload(reason)) => {
                    // The frame itself was intact; reject it and keep the
                    // connection (framing is still synchronized).
                    self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                    conn.send_error(0, &ServeError::bad_request(reason));
                }
                Err(err) => {
                    // Framing is lost (bad magic, truncation, checksum,
                    // version): answer once with a typed error, then close.
                    self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                    conn.send_error(0, &ServeError::bad_request(err.to_string()));
                    break;
                }
            }
        }
    }

    /// Dispatch one intact frame. Returns `false` to close the connection.
    fn handle_frame(&self, shared: &Arc<Shared>, conn: &Arc<Conn>, frame: Frame) -> bool {
        match frame.kind {
            FrameKind::Query => match crate::net::wire::decode_query_request_opts(&frame.payload) {
                Ok((request, require_complete)) => {
                    self.admit(conn, frame.request_id, request, require_complete)
                }
                Err(err) => {
                    self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                    conn.send_error(frame.request_id, &ServeError::bad_request(err.to_string()));
                }
            },
            FrameKind::Stats => {
                let mut payload = Vec::new();
                encode_stats_report(&self.stats_report(), &mut payload);
                conn.send(FrameKind::StatsReport, frame.request_id, &payload);
            }
            FrameKind::Drain => {
                // Flip into draining BEFORE acking: the ack is the client's
                // license to assume no new work is admitted, so it must not
                // be observable while the flag is still clear.
                shared.begin_drain();
                conn.send(FrameKind::DrainStarted, frame.request_id, &[]);
            }
            FrameKind::Answer
            | FrameKind::StatsReport
            | FrameKind::Error
            | FrameKind::DrainStarted => {
                self.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                conn.send_error(
                    frame.request_id,
                    &ServeError::bad_request("response frame kinds are not valid requests"),
                );
            }
        }
        true
    }
}

/// A TCP server speaking the `MGW1` wire protocol over a [`QueryServer`].
///
/// Construct with [`NetServer::bind`], optionally attach the
/// [`IndexWriter`] whose rebuild debt the stats endpoint should report
/// ([`NetServer::with_writer`]), grab a [`NetHandle`] for out-of-band
/// control, then hand the thread to [`NetServer::run`].
///
/// ```no_run
/// use std::sync::Arc;
/// use mogul_core::RetrievalEngine;
/// use mogul_serve::net::NetServer;
/// use mogul_serve::{QueryServer, ServeOptions};
///
/// let features: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64, 0.0]).collect();
/// let engine = RetrievalEngine::builder().knn_k(4).build(features)?;
/// let server = Arc::new(QueryServer::from_engine(engine, ServeOptions::default()));
/// let net = NetServer::bind("127.0.0.1:0", server, ServeOptions::default())?;
/// let handle = net.handle();
/// println!("listening on {}", handle.local_addr());
/// std::thread::spawn(move || net.run());
/// // ... later: graceful shutdown.
/// handle.drain();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct NetServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl NetServer {
    /// Bind a listener and assemble the server state. `addr` may be
    /// `"127.0.0.1:0"` to let the OS pick a free port (read it back with
    /// [`NetServer::local_addr`]). The same [`ServeOptions`] value that
    /// configured the `QueryServer` usually configures the front door too —
    /// here it contributes the worker count, queue capacity and
    /// per-connection cap.
    pub fn bind(
        addr: impl ToSocketAddrs,
        query: Arc<QueryServer>,
        options: ServeOptions,
    ) -> std::io::Result<NetServer> {
        NetServer::bind_backend(addr, query, options)
    }

    /// [`NetServer::bind`] over a sharded scatter-gather engine. Admitted
    /// queries are answered through
    /// [`ShardedServer::query_degraded`], so a probed shard that fails
    /// yields a degraded (tagged-partial) answer instead of failing the
    /// whole query — unless the request set the `require_complete` flag.
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        sharded: Arc<ShardedServer>,
        options: ServeOptions,
    ) -> std::io::Result<NetServer> {
        NetServer::bind_backend(addr, sharded, options)
    }

    /// [`NetServer::bind`] over any [`ServeBackend`] implementation.
    pub fn bind_backend(
        addr: impl ToSocketAddrs,
        backend: Arc<impl ServeBackend>,
        options: ServeOptions,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(NetServer {
            listener,
            shared: Arc::new(Shared {
                backend,
                writer: None,
                options,
                stats: NetStats::new(),
                local_addr,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                idle_cv: Condvar::new(),
                draining: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                next_conn_id: AtomicU64::new(0),
            }),
        })
    }

    /// Attach the writer whose rebuild debt the stats endpoint reports.
    /// (The writer must publish to the same `QueryServer` this front door
    /// serves — nothing checks this, the stats would simply be misleading.)
    pub fn with_writer(mut self, writer: Arc<IndexWriter>) -> Self {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("with_writer must be called before run()/handle() share the state");
        shared.writer = Some(writer);
        self
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// An out-of-band control handle (cloneable, usable from any thread
    /// while [`NetServer::run`] occupies the accept thread).
    pub fn handle(&self) -> NetHandle {
        NetHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Run the server on the calling thread until drained.
    ///
    /// Spawns the worker pool, then accepts connections until
    /// [`NetHandle::drain`] (or a wire [`FrameKind::Drain`]) fires. Drain
    /// then: stops admitting, waits for every admitted request to be
    /// answered, shuts down all connection sockets (unblocking their reader
    /// threads), joins readers and workers, and returns.
    pub fn run(self) -> std::io::Result<()> {
        let workers = self.shared.options.resolve_workers();
        let worker_handles: Vec<_> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();

        let mut reader_handles = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.draining.load(Ordering::SeqCst) {
                break; // the drain wake-up connection lands here
            }
            let mut stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let _ = stream.set_nodelay(true);
            // A worker blocked on a stalled client's full socket buffer
            // would hold up drain forever; bound response writes instead.
            let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
            let writer_half = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => continue,
            };
            let conn = Arc::new(Conn {
                writer: Mutex::new(writer_half),
                inflight: AtomicUsize::new(0),
                id: self.shared.next_conn_id.fetch_add(1, Ordering::Relaxed),
            });
            self.shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&conn));
            self.shared
                .stats
                .connections
                .fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            reader_handles.push(std::thread::spawn(move || {
                shared.reader_loop(&shared, &conn, &mut stream);
                let _ = stream.shutdown(Shutdown::Both);
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .retain(|c| c.id != conn.id);
                shared.stats.connections.fetch_sub(1, Ordering::Relaxed);
            }));
        }

        // Draining: the flag is set, so readers shed every new arrival;
        // wait until everything already admitted (queued or executing) has
        // been answered. The short timeout re-checks the predicate, covering
        // the unsynchronized gap between a worker's final decrement and its
        // notify.
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            while !queue.is_empty() || self.shared.inflight_total() > 0 {
                let (guard, _timeout) = self
                    .shared
                    .idle_cv
                    .wait_timeout(queue, Duration::from_millis(10))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }

        // Requests a pipelining client wrote before the drain may still sit
        // unread in a connection's kernel buffer while its reader thread is
        // between reads; shutting the socket down now would turn them into a
        // silent EOF instead of the typed `Draining` answer the protocol
        // promises. A short receive timeout lets each reader pull and shed
        // whatever is already buffered, then exit on its own the moment its
        // buffer runs dry (`read_frame` surfaces the timeout and the loop
        // breaks). The clone shares the socket, so the option reaches the
        // reader's handle too.
        for conn in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let writer = conn.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writer.set_read_timeout(Some(Duration::from_millis(20)));
        }
        // Readers deregister themselves from `conns` as they exit; poll for
        // that instead of joining, which has no timeout.
        let grace_deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < grace_deadline {
            if self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Backstop: a reader that entered its blocking read before the
        // timeout landed never observes it — but such a read means its
        // buffer was empty, so closing the socket under it loses nothing.
        // This also bounds drain against a client trickling partial frames.
        for conn in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let writer = conn.writer.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writer.shutdown(Shutdown::Both);
        }
        for handle in reader_handles {
            let _ = handle.join();
        }
        // Workers see draining + empty queue and exit.
        self.shared.queue_cv.notify_all();
        for handle in worker_handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.shared.local_addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish()
    }
}

/// Cloneable out-of-band control handle of a running [`NetServer`].
#[derive(Clone)]
pub struct NetHandle {
    shared: Arc<Shared>,
}

impl NetHandle {
    /// The server's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Begin a graceful drain (idempotent): stop admitting, finish admitted
    /// work, then make [`NetServer::run`] return.
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// `true` once draining has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// A point-in-time statistics snapshot (same data the wire
    /// [`FrameKind::Stats`] endpoint serves).
    pub fn stats_report(&self) -> ServerStatsReport {
        self.shared.stats_report()
    }
}

impl std::fmt::Debug for NetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetHandle")
            .field("local_addr", &self.shared.local_addr)
            .finish()
    }
}
