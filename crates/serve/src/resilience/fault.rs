//! [`FaultProxy`]: a deterministic fault-injection TCP proxy for the chaos
//! battery.
//!
//! The proxy sits between a client and one replica. Client→server bytes
//! pass through untouched (requests must arrive, or "exactly one outcome
//! per request" is unprovable); server→client traffic is re-framed at
//! `MGW1` boundaries, and each response frame rolls against a seeded
//! [`FaultPlan`]:
//!
//! * **drop** — the frame vanishes and both directions are torn down (the
//!   client sees a reset mid-response, the classic failed replica);
//! * **delay** — the frame is held for a fixed pause, then forwarded (the
//!   slow replica, for exercising deadlines);
//! * **truncate** — half the frame is written, then the connection is torn
//!   down (the crash mid-write, a torn frame);
//! * **bit-flip** — one random bit inside the payload/checksum region is
//!   flipped and the frame forwarded (corruption the checksum must catch;
//!   framing stays aligned, so the client gets a typed decode error on a
//!   connection that stays up).
//!
//! Every roll comes from a per-connection PRNG derived from the plan seed
//! and the connection index, so a given seed replays the same schedule —
//! the harness can assert exact outcomes, not probabilistic ones.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::net::wire::{FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};

use super::backoff::XorShift64;

/// What the proxy decided to do with one server→client frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass the frame through untouched.
    Forward,
    /// Discard the frame and tear the connection down.
    Drop,
    /// Hold the frame for [`FaultPlan::delay`], then forward it.
    Delay,
    /// Forward only the first half of the frame, then tear down.
    Truncate,
    /// Flip one random bit in the payload/checksum region and forward.
    BitFlip,
}

/// A seeded schedule of frame faults, expressed in per-mille odds. The
/// rates are evaluated in order (drop, delay, truncate, bit-flip) against
/// one roll in `0..1000`; the remainder forwards cleanly. Rates summing
/// past 1000 saturate (later faults never fire).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the per-connection PRNGs.
    pub seed: u64,
    /// Per-mille odds a response frame is dropped (with connection
    /// teardown).
    pub drop_per_mille: u32,
    /// Per-mille odds a response frame is delayed by [`FaultPlan::delay`].
    pub delay_per_mille: u32,
    /// The pause applied to delayed frames.
    pub delay: Duration,
    /// Per-mille odds a response frame is truncated mid-write (with
    /// connection teardown).
    pub truncate_per_mille: u32,
    /// Per-mille odds one payload/checksum bit is flipped.
    pub bit_flip_per_mille: u32,
}

impl Default for FaultPlan {
    /// A transparent plan: no faults, 10ms delay if one is enabled.
    fn default() -> Self {
        FaultPlan {
            seed: 0x6d6f_6775_6c00_0002,
            drop_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::from_millis(10),
            truncate_per_mille: 0,
            bit_flip_per_mille: 0,
        }
    }
}

impl FaultPlan {
    /// Roll the plan against `rng` for one frame.
    fn action(&self, rng: &mut XorShift64) -> FaultAction {
        let roll = (rng.next_u64() % 1000) as u32;
        let mut edge = self.drop_per_mille;
        if roll < edge {
            return FaultAction::Drop;
        }
        edge = edge.saturating_add(self.delay_per_mille);
        if roll < edge {
            return FaultAction::Delay;
        }
        edge = edge.saturating_add(self.truncate_per_mille);
        if roll < edge {
            return FaultAction::Truncate;
        }
        edge = edge.saturating_add(self.bit_flip_per_mille);
        if roll < edge {
            return FaultAction::BitFlip;
        }
        FaultAction::Forward
    }
}

/// A fault-injecting TCP proxy in front of one replica. Listens on an
/// ephemeral local port; every accepted connection is piped to the
/// upstream replica with the [`FaultPlan`] applied to response frames.
/// Dropping the proxy shuts it down.
#[derive(Debug)]
pub struct FaultProxy {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy on an ephemeral `127.0.0.1` port forwarding to
    /// `upstream` with `plan` applied.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || accept_loop(listener, upstream, plan, stop))
        };
        Ok(FaultProxy {
            local,
            stop,
            accept: Some(accept),
        })
    }

    /// The address clients should connect to instead of the replica.
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// Stop accepting and join the accept thread. In-flight connection
    /// handlers are detached and die with their sockets. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection (the same
        // idiom the server's drain path uses).
        let _ = TcpStream::connect(self.local);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    stop: Arc<AtomicBool>,
) {
    let mut conn_index = 0u64;
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(client) = incoming else { continue };
        // Derive the per-connection schedule from the plan seed and the
        // connection index, so a run with a fixed seed replays exactly.
        let seed = plan.seed ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        conn_index += 1;
        let plan = plan.clone();
        thread::spawn(move || handle_conn(client, upstream, plan, XorShift64::new(seed)));
    }
}

fn handle_conn(client: TcpStream, upstream: SocketAddr, plan: FaultPlan, mut rng: XorShift64) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);

    // Client→server: a plain byte pump. Requests always arrive intact — the
    // harness proves response-path fault handling, and "every request has
    // exactly one outcome" requires the server to have seen the request.
    let pump = {
        let (Ok(mut from), Ok(to)) = (client.try_clone(), server.try_clone()) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        thread::spawn(move || {
            let mut to = to;
            let mut buf = [0u8; 16 * 1024];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = to.shutdown(Shutdown::Write);
        })
    };

    // Server→client: parse MGW1 frame boundaries and roll the plan per
    // frame.
    let mut from = server.try_clone().ok();
    if let Some(from) = from.as_mut() {
        let mut to = client.try_clone().ok();
        if let Some(to) = to.as_mut() {
            pump_frames(from, to, &plan, &mut rng);
        }
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = pump.join();
}

/// Forward whole frames from `from` to `to`, applying the plan. Returns
/// when either side fails or a fault tears the connection down.
fn pump_frames(from: &mut TcpStream, to: &mut TcpStream, plan: &FaultPlan, rng: &mut XorShift64) {
    loop {
        let mut header = [0u8; FRAME_HEADER_LEN];
        if from.read_exact(&mut header).is_err() {
            return;
        }
        let declared =
            u32::from_le_bytes([header[15], header[16], header[17], header[18]]) as usize;
        if declared > MAX_FRAME_PAYLOAD {
            // Not a frame we understand; forward what we have and stop
            // re-framing (the replica never sends this, but fail safe).
            let _ = to.write_all(&header);
            return;
        }
        // Payload plus the 8-byte trailing checksum.
        let mut body = vec![0u8; declared + 8];
        if from.read_exact(&mut body).is_err() {
            return;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
        frame.extend_from_slice(&header);
        frame.extend_from_slice(&body);
        match plan.action(rng) {
            FaultAction::Forward => {
                if to.write_all(&frame).is_err() {
                    return;
                }
            }
            FaultAction::Drop => {
                tear_down(from, to);
                return;
            }
            FaultAction::Delay => {
                thread::sleep(plan.delay);
                if to.write_all(&frame).is_err() {
                    return;
                }
            }
            FaultAction::Truncate => {
                let half = frame.len() / 2;
                let _ = to.write_all(&frame[..half]);
                tear_down(from, to);
                return;
            }
            FaultAction::BitFlip => {
                // Only touch payload/checksum bytes: framing stays aligned,
                // so the client sees a typed checksum/decode error on a
                // connection that remains usable. The region is never empty
                // (the checksum alone is 8 bytes).
                let bit = (rng.next_u64() % (body.len() as u64 * 8)) as usize;
                frame[FRAME_HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
                if to.write_all(&frame).is_err() {
                    return;
                }
            }
        }
    }
}

fn tear_down(from: &mut TcpStream, to: &mut TcpStream) {
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_rolls_are_deterministic_per_seed() {
        let plan = FaultPlan {
            drop_per_mille: 100,
            delay_per_mille: 100,
            truncate_per_mille: 100,
            bit_flip_per_mille: 100,
            ..FaultPlan::default()
        };
        let mut a = XorShift64::new(99);
        let mut b = XorShift64::new(99);
        for _ in 0..256 {
            assert_eq!(plan.action(&mut a), plan.action(&mut b));
        }
    }

    #[test]
    fn transparent_plan_always_forwards() {
        let plan = FaultPlan::default();
        let mut rng = XorShift64::new(1);
        for _ in 0..256 {
            assert_eq!(plan.action(&mut rng), FaultAction::Forward);
        }
    }

    #[test]
    fn saturated_plan_never_forwards() {
        let plan = FaultPlan {
            drop_per_mille: 500,
            delay_per_mille: 500,
            ..FaultPlan::default()
        };
        let mut rng = XorShift64::new(2);
        for _ in 0..256 {
            let action = plan.action(&mut rng);
            assert!(
                matches!(action, FaultAction::Drop | FaultAction::Delay),
                "unexpected action {action:?}"
            );
        }
    }
}
