//! Exponential backoff with decorrelated jitter, and the seeded PRNG the
//! resilience tier shares with the fault-injection harness.
//!
//! The jitter schedule follows the "decorrelated jitter" recipe: each delay
//! is drawn uniformly from `[base, prev * 3]` and clamped to `cap`, so
//! concurrent clients that failed at the same instant spread their retries
//! instead of stampeding the next replica in lockstep. Everything is seeded
//! and deterministic — two [`Backoff`] values built from the same seed
//! produce the same delay sequence, which is what lets the chaos battery
//! replay a failure schedule exactly.

use std::time::Duration;

/// XorShift64 PRNG — deterministic, seedable, `std`-only. Mirrors the
/// generator used by the k-means seeding in `mogul-graph`; quality is more
/// than enough for jitter and fault schedules, and determinism is the point.
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: seed.max(1).wrapping_mul(0x2545_F491_4F6C_DD1D),
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

/// Decorrelated-jitter retry delays: `next = min(cap, uniform(base, prev*3))`.
///
/// Deterministic for a given seed. [`Backoff::reset`] rewinds the growth (but
/// not the PRNG) at the start of each new request, so the first retry of any
/// request waits close to `base` while repeated failures within one request
/// grow toward `cap`.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: XorShift64,
}

impl Backoff {
    /// A backoff schedule growing from `base` toward `cap`, jittered by the
    /// PRNG seeded with `seed`. `base` must be non-zero and no larger than
    /// `cap`; both are clamped to sane values rather than rejected (the
    /// validating entry point is [`ReplicaSetConfig`](crate::resilience::ReplicaSetConfig)).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base = base.max(Duration::from_micros(1));
        let cap = cap.max(base);
        Backoff {
            base,
            cap,
            prev: base,
            rng: XorShift64::new(seed),
        }
    }

    /// Draw the next delay and advance the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let base_us = self.base.as_micros() as u64;
        let cap_us = self.cap.as_micros() as u64;
        let hi_us = (self.prev.as_micros() as u64)
            .saturating_mul(3)
            .clamp(base_us + 1, cap_us.max(base_us + 1));
        let picked = base_us + self.rng.next_u64() % (hi_us - base_us + 1);
        let delay = Duration::from_micros(picked.min(cap_us));
        self.prev = delay;
        delay
    }

    /// Rewind the growth to `base` (the PRNG keeps advancing, so delay
    /// *values* stay decorrelated across requests).
    pub fn reset(&mut self) {
        self.prev = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 7);
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500), 7);
        for _ in 0..32 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn delays_stay_in_bounds_and_grow_from_base() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let mut backoff = Backoff::new(base, cap, 42);
        let mut prev = base;
        for _ in 0..64 {
            let d = backoff.next_delay();
            assert!(d >= base, "delay {d:?} below base");
            assert!(d <= cap, "delay {d:?} above cap");
            assert!(
                d <= prev.saturating_mul(3).max(base).min(cap.max(base)),
                "delay {d:?} exceeds prev*3 ({prev:?})"
            );
            prev = d;
        }
    }

    #[test]
    fn reset_rewinds_growth() {
        let base = Duration::from_millis(10);
        let mut backoff = Backoff::new(base, Duration::from_millis(500), 9);
        for _ in 0..16 {
            backoff.next_delay();
        }
        backoff.reset();
        let first = backoff.next_delay();
        assert!(
            first <= base.saturating_mul(3),
            "post-reset delay {first:?}"
        );
    }

    #[test]
    fn degenerate_config_is_clamped_not_panicking() {
        let mut backoff = Backoff::new(Duration::ZERO, Duration::ZERO, 0);
        for _ in 0..8 {
            let d = backoff.next_delay();
            assert!(d > Duration::ZERO);
        }
    }
}
