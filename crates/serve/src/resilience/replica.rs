//! [`ReplicaSet`]: a deadline-bounded failover client over N replicas of the
//! network front door.
//!
//! One logical `query` fans a request across replicas until it succeeds,
//! fails typed-non-retryable, or exhausts the per-request deadline:
//!
//! ```text
//!   pick replica (sticky cursor, skip Open breakers)
//!        │
//!        ├─ HalfOpen? probe with a Stats frame first
//!        │
//!        ├─ Ok(answer) ──────────────────────────────► return Ok
//!        ├─ typed non-retryable (BadRequest, …) ─────► return NonRetryable
//!        └─ retryable (Overloaded/Draining/Incomplete,
//!           timeout, reset, corrupt frame) ──► record breaker failure,
//!              advance cursor, backoff (decorrelated jitter), loop
//!              until the deadline ──────────────────► return Exhausted
//! ```
//!
//! Transport failures drop the cached connection (the stream may hold
//! half-read bytes); typed server rejections keep it (the codec left the
//! connection usable). A typed *non-retryable* rejection records a breaker
//! **success**: the replica proved healthy, the request was at fault.

use std::fmt;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::error::{ServeError, ServeResult};
use crate::net::client::{NetClient, NetError};
use crate::request::{QueryRequest, QueryResponse, ResponseStatus};

use super::backoff::Backoff;
use super::breaker::{BreakerState, CircuitBreaker};

/// Why a whole failover query failed (as opposed to one attempt, which is
/// retried internally).
#[derive(Debug)]
pub enum FailoverError {
    /// A replica answered with a typed rejection that retrying cannot fix
    /// (`BadRequest`, `Config`, `Durability`, an index error). The replica
    /// is healthy; the request is at fault.
    NonRetryable(ServeError),
    /// Every attempt inside the per-request deadline failed retryably.
    Exhausted {
        /// Attempts made before giving up.
        attempts: usize,
        /// The per-request deadline that expired.
        deadline: Duration,
        /// Human-readable rendering of the last attempt's failure.
        last_error: String,
    },
}

impl fmt::Display for FailoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailoverError::NonRetryable(err) => {
                write!(f, "non-retryable server rejection: {err}")
            }
            FailoverError::Exhausted {
                attempts,
                deadline,
                last_error,
            } => write!(
                f,
                "deadline of {deadline:?} exhausted after {attempts} attempt(s); \
                 last error: {last_error}"
            ),
        }
    }
}

impl std::error::Error for FailoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FailoverError::NonRetryable(err) => Some(err),
            FailoverError::Exhausted { .. } => None,
        }
    }
}

/// Validated configuration for a [`ReplicaSet`] (builder-checked like
/// [`ServeOptions`](crate::ServeOptions): a config that exists is valid).
#[derive(Debug, Clone)]
pub struct ReplicaSetConfig {
    deadline: Duration,
    attempt_timeout: Duration,
    backoff_base: Duration,
    backoff_cap: Duration,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    require_complete: bool,
    seed: u64,
}

impl Default for ReplicaSetConfig {
    fn default() -> Self {
        ReplicaSetConfigBuilder::default()
            .build()
            .expect("default replica-set config is valid")
    }
}

impl ReplicaSetConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> ReplicaSetConfigBuilder {
        ReplicaSetConfigBuilder::default()
    }

    /// Total wall-clock budget for one logical query, failover included.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Socket budget (connect, read, write) for one attempt against one
    /// replica; always further clamped to the remaining deadline.
    pub fn attempt_timeout(&self) -> Duration {
        self.attempt_timeout
    }

    /// First-retry delay of the decorrelated-jitter backoff.
    pub fn backoff_base(&self) -> Duration {
        self.backoff_base
    }

    /// Ceiling of the decorrelated-jitter backoff.
    pub fn backoff_cap(&self) -> Duration {
        self.backoff_cap
    }

    /// Consecutive failures that trip a replica's circuit breaker.
    pub fn breaker_threshold(&self) -> u32 {
        self.breaker_threshold
    }

    /// How long a tripped breaker stays `Open` before admitting a
    /// half-open probe.
    pub fn breaker_cooldown(&self) -> Duration {
        self.breaker_cooldown
    }

    /// Whether queries demand complete answers by default (degraded
    /// answers come back as retryable
    /// [`ServeError::Incomplete`] so failover can try a
    /// healthier replica).
    pub fn require_complete(&self) -> bool {
        self.require_complete
    }

    /// Seed of the jitter PRNG (determinism for tests and replayable
    /// chaos runs).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Builder for [`ReplicaSetConfig`]; `build` validates every knob.
#[derive(Debug, Clone)]
pub struct ReplicaSetConfigBuilder {
    deadline: Duration,
    attempt_timeout: Duration,
    backoff_base: Duration,
    backoff_cap: Duration,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    require_complete: bool,
    seed: u64,
}

impl Default for ReplicaSetConfigBuilder {
    fn default() -> Self {
        ReplicaSetConfigBuilder {
            deadline: Duration::from_secs(2),
            attempt_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            require_complete: false,
            seed: 0x6d6f_6775_6c00_0001,
        }
    }
}

impl ReplicaSetConfigBuilder {
    /// Total wall-clock budget for one logical query (default 2s).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Per-attempt socket budget (default 500ms).
    pub fn attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = timeout;
        self
    }

    /// First-retry backoff delay (default 10ms).
    pub fn backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Backoff ceiling (default 500ms).
    pub fn backoff_cap(mut self, cap: Duration) -> Self {
        self.backoff_cap = cap;
        self
    }

    /// Consecutive failures that trip a breaker (default 3).
    pub fn breaker_threshold(mut self, threshold: u32) -> Self {
        self.breaker_threshold = threshold;
        self
    }

    /// Open-breaker cooldown before a half-open probe (default 250ms).
    pub fn breaker_cooldown(mut self, cooldown: Duration) -> Self {
        self.breaker_cooldown = cooldown;
        self
    }

    /// Demand complete answers by default (default `false`: degraded
    /// answers are accepted and surfaced via [`ResponseStatus`]).
    pub fn require_complete(mut self, strict: bool) -> Self {
        self.require_complete = strict;
        self
    }

    /// Seed the jitter PRNG (default fixed, for reproducibility).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate and freeze. Every duration must be non-zero, the backoff
    /// base must not exceed the cap, and the breaker threshold must be at
    /// least 1.
    pub fn build(self) -> ServeResult<ReplicaSetConfig> {
        fn nonzero(what: &str, d: Duration) -> ServeResult<()> {
            if d.is_zero() {
                return Err(ServeError::Config {
                    reason: format!("{what} must be non-zero"),
                });
            }
            Ok(())
        }
        nonzero("deadline", self.deadline)?;
        nonzero("attempt_timeout", self.attempt_timeout)?;
        nonzero("backoff_base", self.backoff_base)?;
        nonzero("backoff_cap", self.backoff_cap)?;
        nonzero("breaker_cooldown", self.breaker_cooldown)?;
        if self.backoff_base > self.backoff_cap {
            return Err(ServeError::Config {
                reason: format!(
                    "backoff_base ({:?}) must not exceed backoff_cap ({:?})",
                    self.backoff_base, self.backoff_cap
                ),
            });
        }
        if self.breaker_threshold == 0 {
            return Err(ServeError::Config {
                reason: "breaker_threshold must be at least 1".to_string(),
            });
        }
        Ok(ReplicaSetConfig {
            deadline: self.deadline,
            attempt_timeout: self.attempt_timeout,
            backoff_base: self.backoff_base,
            backoff_cap: self.backoff_cap,
            breaker_threshold: self.breaker_threshold,
            breaker_cooldown: self.breaker_cooldown,
            require_complete: self.require_complete,
            seed: self.seed,
        })
    }
}

/// One replica endpoint: its address, a lazily-established cached
/// connection, and its circuit breaker.
#[derive(Debug)]
struct Replica {
    addr: SocketAddr,
    client: Option<NetClient>,
    breaker: CircuitBreaker,
}

/// How one attempt against one replica ended (internal).
enum AttemptError {
    NonRetryable(ServeError),
    Retryable(String),
}

/// A failover client over N replicas of the network front door.
///
/// `Send` but not `Sync` — it owns live sockets and a retry cursor; share
/// one per thread, like [`NetClient`].
#[derive(Debug)]
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    cursor: usize,
    config: ReplicaSetConfig,
    backoff: Backoff,
}

impl ReplicaSet {
    /// A replica set over `addrs` (at least one required). Connections are
    /// established lazily on first use, so a set can be built while its
    /// replicas are still starting.
    pub fn new(addrs: &[SocketAddr], config: ReplicaSetConfig) -> ServeResult<ReplicaSet> {
        if addrs.is_empty() {
            return Err(ServeError::Config {
                reason: "a replica set needs at least one replica address".to_string(),
            });
        }
        let replicas = addrs
            .iter()
            .map(|&addr| Replica {
                addr,
                client: None,
                breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
            })
            .collect();
        let backoff = Backoff::new(config.backoff_base, config.backoff_cap, config.seed);
        Ok(ReplicaSet {
            replicas,
            cursor: 0,
            config,
            backoff,
        })
    }

    /// The validated configuration in force.
    pub fn config(&self) -> &ReplicaSetConfig {
        &self.config
    }

    /// Number of replicas in the set.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set is empty (never true: `new` rejects empty sets).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The address the sticky cursor currently prefers — the replica the
    /// next attempt will try first (useful for chaos tests that want to
    /// kill "the one being used").
    pub fn current_replica(&self) -> SocketAddr {
        self.replicas[self.cursor].addr
    }

    /// Breaker states by replica index, in address order (observability
    /// and test assertions).
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.replicas.iter().map(|r| r.breaker.state()).collect()
    }

    /// Query with the configured completeness requirement. See
    /// [`ReplicaSet::query_opts`].
    pub fn query(
        &mut self,
        request: &QueryRequest,
    ) -> Result<(QueryResponse, ResponseStatus), FailoverError> {
        self.query_opts(request, self.config.require_complete)
    }

    /// One logical query with failover: attempts replicas (sticky cursor,
    /// skipping open breakers, probing half-open ones with a Stats frame)
    /// under the per-request deadline, backing off with decorrelated
    /// jitter between retryable failures. Returns the first successful
    /// answer, a typed [`FailoverError::NonRetryable`] the moment any
    /// replica rejects the request itself, or
    /// [`FailoverError::Exhausted`] when the deadline expires.
    pub fn query_opts(
        &mut self,
        request: &QueryRequest,
        require_complete: bool,
    ) -> Result<(QueryResponse, ResponseStatus), FailoverError> {
        let started = Instant::now();
        let deadline = self.config.deadline;
        self.backoff.reset();
        let mut attempts = 0usize;
        let mut last_error = String::from("no attempt admitted before the deadline");
        loop {
            let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
                return Err(FailoverError::Exhausted {
                    attempts,
                    deadline,
                    last_error,
                });
            };
            let n = self.replicas.len();
            let pick = (0..n)
                .map(|i| (self.cursor + i) % n)
                .find(|&i| self.replicas[i].breaker.admits());
            let Some(idx) = pick else {
                // Every breaker is open: wait out (part of) a cooldown, but
                // never past the deadline.
                last_error = "all replica circuit breakers are open".to_string();
                let nap = self
                    .config
                    .breaker_cooldown
                    .min(remaining)
                    .min(Duration::from_millis(50));
                std::thread::sleep(nap.max(Duration::from_millis(1)));
                continue;
            };
            self.cursor = idx;
            attempts += 1;
            let timeout = self.config.attempt_timeout.min(remaining);
            match Self::attempt(&mut self.replicas[idx], request, timeout, require_complete) {
                Ok(answer) => return Ok(answer),
                Err(AttemptError::NonRetryable(err)) => {
                    return Err(FailoverError::NonRetryable(err));
                }
                Err(AttemptError::Retryable(detail)) => {
                    last_error = format!("replica {}: {detail}", self.replicas[idx].addr);
                    self.cursor = (idx + 1) % n;
                    let delay = self.backoff.next_delay();
                    if let Some(room) = deadline.checked_sub(started.elapsed()) {
                        std::thread::sleep(delay.min(room));
                    }
                }
            }
        }
    }

    /// One attempt against one replica, with every socket operation
    /// bounded by `timeout`.
    fn attempt(
        replica: &mut Replica,
        request: &QueryRequest,
        timeout: Duration,
        require_complete: bool,
    ) -> Result<(QueryResponse, ResponseStatus), AttemptError> {
        let half_open = replica.breaker.state() == BreakerState::HalfOpen;
        if replica.client.is_none() {
            match NetClient::connect_timeout(&replica.addr, timeout) {
                Ok(client) => replica.client = Some(client),
                Err(err) => {
                    replica.breaker.record_failure();
                    return Err(AttemptError::Retryable(format!("connect: {err}")));
                }
            }
        }
        let client = replica.client.as_mut().expect("connected above");
        if let Err(err) = client
            .set_read_timeout(Some(timeout))
            .and_then(|()| client.set_write_timeout(Some(timeout)))
        {
            replica.client = None;
            replica.breaker.record_failure();
            return Err(AttemptError::Retryable(format!(
                "set socket timeout: {err}"
            )));
        }
        if half_open {
            // Probe a half-open replica with a Stats frame before trusting
            // it with the query: cheap, read-only, and exercises the full
            // request/response path.
            match client.stats() {
                Ok(report) if report.draining => {
                    replica.breaker.record_failure();
                    return Err(AttemptError::Retryable(
                        "probe: replica draining".to_string(),
                    ));
                }
                Ok(_) => {}
                Err(err) => {
                    if matches!(err, NetError::Wire(_) | NetError::Protocol(_)) {
                        replica.client = None;
                    }
                    replica.breaker.record_failure();
                    return Err(AttemptError::Retryable(format!("probe: {err}")));
                }
            }
        }
        let client = replica.client.as_mut().expect("still connected");
        match client.query_status(request, require_complete) {
            Ok(answer) => {
                replica.breaker.record_success();
                Ok(answer)
            }
            Err(NetError::Serve(err)) => {
                // The typed-error path leaves the connection usable; keep it.
                if err.is_retryable() {
                    replica.breaker.record_failure();
                    Err(AttemptError::Retryable(err.to_string()))
                } else {
                    // The replica answered decisively: it is healthy, the
                    // request is at fault. That is a breaker *success*.
                    replica.breaker.record_success();
                    Err(AttemptError::NonRetryable(err))
                }
            }
            Err(err) => {
                // Transport or protocol trouble: the stream may hold
                // half-read bytes — drop it and reconnect next time.
                replica.client = None;
                replica.breaker.record_failure();
                Err(AttemptError::Retryable(err.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_zero_durations_and_threshold() {
        assert!(ReplicaSetConfig::builder()
            .deadline(Duration::ZERO)
            .build()
            .is_err());
        assert!(ReplicaSetConfig::builder()
            .attempt_timeout(Duration::ZERO)
            .build()
            .is_err());
        assert!(ReplicaSetConfig::builder()
            .backoff_base(Duration::ZERO)
            .build()
            .is_err());
        assert!(ReplicaSetConfig::builder()
            .breaker_cooldown(Duration::ZERO)
            .build()
            .is_err());
        assert!(ReplicaSetConfig::builder()
            .breaker_threshold(0)
            .build()
            .is_err());
        assert!(ReplicaSetConfig::builder()
            .backoff_base(Duration::from_millis(600))
            .backoff_cap(Duration::from_millis(500))
            .build()
            .is_err());
        assert!(ReplicaSetConfig::builder().build().is_ok());
    }

    #[test]
    fn empty_replica_set_is_rejected() {
        let err = ReplicaSet::new(&[], ReplicaSetConfig::default()).unwrap_err();
        assert!(matches!(err, ServeError::Config { .. }));
    }

    #[test]
    fn unreachable_replicas_exhaust_within_deadline() {
        // Reserved-but-unroutable style addresses: connect fails fast with
        // refused (nothing listens on a bound-then-dropped port).
        let free = |_| {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let addrs: Vec<SocketAddr> = (0..2).map(free).collect();
        let config = ReplicaSetConfig::builder()
            .deadline(Duration::from_millis(200))
            .attempt_timeout(Duration::from_millis(50))
            .backoff_base(Duration::from_millis(1))
            .backoff_cap(Duration::from_millis(5))
            .build()
            .unwrap();
        let mut set = ReplicaSet::new(&addrs, config).unwrap();
        let request = QueryRequest::InDatabase { node: 0, k: 1 };
        let started = Instant::now();
        let err = set.query(&request).unwrap_err();
        assert!(
            matches!(err, FailoverError::Exhausted { .. }),
            "expected exhaustion, got: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "exhaustion must arrive near the deadline, took {:?}",
            started.elapsed()
        );
    }
}
