//! The fault-tolerant serving tier: replica failover, deadlines, retry
//! with decorrelated-jitter backoff, per-replica circuit breakers, and a
//! deterministic fault-injection harness.
//!
//! The network front door ([`crate::net`]) gives one replica a typed
//! error contract: every failure a client can see is either retryable
//! (`Overloaded`, `Draining`, `Incomplete`, transport trouble) or not
//! (`BadRequest`, `Durability`, …), decided by
//! [`ServeError::is_retryable`](crate::ServeError::is_retryable). This
//! module turns that contract into availability:
//!
//! * [`ReplicaSet`] — the failover client. One logical query is attempted
//!   against N replicas under a per-request deadline: sticky-cursor
//!   routing, exponential backoff with decorrelated jitter between
//!   retryable failures, and a per-replica [`CircuitBreaker`]
//!   (closed → open on consecutive failures → half-open probe via a
//!   Stats frame). The result is always one of: an answer, a typed
//!   non-retryable rejection, or typed exhaustion — never a hang past
//!   the deadline.
//! * [`Backoff`] — the seeded jitter schedule, deterministic per seed.
//! * [`CircuitBreaker`] — the consecutive-failure breaker with a
//!   time-derived half-open state.
//! * [`FaultProxy`] / [`FaultPlan`] — the chaos harness: a TCP proxy that
//!   drops, delays, truncates and bit-flips response frames on a seeded,
//!   replayable schedule. Together with the sharded engine's in-process
//!   fault injector ([`ShardedServer::set_fault_injector`](crate::ShardedServer::set_fault_injector))
//!   and process kills, it drives the battery in
//!   `tests/resilience_failover.rs` that proves the contract above.
//!
//! Everything is plain `std`, mirroring the rest of the serving tier: no
//! async runtime, no timer wheels — deadlines are socket timeouts plus
//! wall-clock checks, and all randomness is seeded XorShift64 so every
//! schedule replays exactly.
//!
//! See `docs/OPERATIONS.md` ("Resilience tuning") for how the knobs
//! compose, and `docs/NETWORKING.md` for the wire-level degraded-answer
//! field the failover client consumes.

mod backoff;
mod breaker;
mod fault;
mod replica;

pub use backoff::Backoff;
pub use breaker::{BreakerState, CircuitBreaker};
pub use fault::{FaultAction, FaultPlan, FaultProxy};
pub use replica::{FailoverError, ReplicaSet, ReplicaSetConfig, ReplicaSetConfigBuilder};
