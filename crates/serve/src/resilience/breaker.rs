//! Per-replica circuit breaker: closed → open on consecutive failures →
//! half-open probe after a cooldown.
//!
//! The breaker is deliberately tiny: it counts *consecutive* failures (any
//! success rewinds to zero), opens at a threshold, and derives `HalfOpen`
//! from elapsed time instead of running a timer thread. A half-open breaker
//! admits exactly the traffic the caller chooses to probe with; a probe
//! failure re-arms the cooldown, a probe success closes the breaker.

use std::time::{Duration, Instant};

/// Observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: the replica is skipped until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the replica may be probed with real traffic; the
    /// next recorded outcome decides between `Closed` and a re-armed `Open`.
    HalfOpen,
}

/// Consecutive-failure circuit breaker with a time-derived half-open state.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Closed { fails: u32 },
    Open { since: Instant },
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive failures
    /// and allows a half-open probe once `cooldown` has elapsed.
    /// `threshold` is clamped to at least 1.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Inner::Closed { fails: 0 },
        }
    }

    /// Current state (derives [`BreakerState::HalfOpen`] from elapsed time).
    pub fn state(&self) -> BreakerState {
        match &self.inner {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { since } => {
                if since.elapsed() >= self.cooldown {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }

    /// May a request be sent to this replica right now? `Closed` and
    /// `HalfOpen` admit; `Open` does not.
    pub fn admits(&self) -> bool {
        self.state() != BreakerState::Open
    }

    /// Record a successful outcome: the breaker closes and the consecutive
    /// failure count rewinds to zero.
    pub fn record_success(&mut self) {
        self.inner = Inner::Closed { fails: 0 };
    }

    /// Record a failed outcome. In `Closed`, bumps the consecutive count
    /// and opens at the threshold; in `Open`/`HalfOpen` (a failed probe),
    /// re-arms the cooldown from now.
    pub fn record_failure(&mut self) {
        self.inner = match self.inner {
            Inner::Closed { fails } => {
                let fails = fails + 1;
                if fails >= self.threshold {
                    Inner::Open {
                        since: Instant::now(),
                    }
                } else {
                    Inner::Closed { fails }
                }
            }
            Inner::Open { .. } => Inner::Open {
                since: Instant::now(),
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_at_threshold_and_success_rewinds() {
        let mut b = CircuitBreaker::new(3, Duration::from_millis(50));
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "success must rewind count");
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admits());
    }

    #[test]
    fn half_open_after_cooldown_probe_success_closes() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(5));
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admits());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_rearms_cooldown() {
        let mut b = CircuitBreaker::new(1, Duration::from_millis(20));
        b.record_failure();
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-arms");
    }

    #[test]
    fn zero_threshold_clamps_to_one() {
        let mut b = CircuitBreaker::new(0, Duration::from_secs(1));
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }
}
