//! Read/write coordination: the [`IndexWriter`] mutates an
//! [`UpdatableIndex`] and publishes each resulting snapshot to a
//! [`QueryServer`].
//!
//! The split of responsibilities is deliberately strict:
//!
//! * **Readers** (query threads) only ever touch the server's current
//!   [`IndexSnapshot`](mogul_core::update::IndexSnapshot) — immutable, so no
//!   read locks on the per-query hot path.
//! * **The writer** owns the mutable [`UpdatableIndex`] behind a [`Mutex`]:
//!   updates serialize against each other but never against queries. Delta
//!   application (and, when the rebuild-debt policy fires, the full
//!   refactorization) runs entirely off the query path; queries keep
//!   hitting the previous epoch until [`QueryServer::install_snapshot`]
//!   swaps in the new one.
//!
//! Any thread may call [`IndexWriter::apply`] — a maintenance thread, a cron
//! loop, or an ingest pipeline — which is what "background refactorization"
//! means here: it is background *relative to queries*, not a thread this
//! crate spawns.

use crate::request::UpdateRequest;
use crate::server::{QueryServer, ServeOptions};
use mogul_core::update::{IndexDelta, RebuildDebt, UpdatableIndex, UpdateReport};
use mogul_core::Result;
use std::sync::{Arc, Mutex, PoisonError};

/// The single-writer handle pairing an [`UpdatableIndex`] with the
/// [`QueryServer`] that serves its snapshots.
///
/// ```
/// use mogul_core::update::IndexBuilder;
/// use mogul_serve::{IndexWriter, ServeOptions, UpdateRequest};
///
/// let features: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 0.0]).collect();
/// let index = IndexBuilder::new().knn_k(3).build(features)?;
/// let (server, writer) = IndexWriter::new(index, ServeOptions::with_workers(2));
///
/// // Queries and updates may now run from different threads; each update
/// // publishes a new epoch without interrupting in-flight queries.
/// let report = writer.apply(&[UpdateRequest::insert(vec![2.5, 0.0])])?;
/// assert_eq!(server.epoch(), report.epoch);
/// let top = server.query_by_id(report.inserted[0], 3)?;
/// assert_eq!(top.len(), 3);
/// # Ok::<(), mogul_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct IndexWriter {
    server: Arc<QueryServer>,
    inner: Mutex<UpdatableIndex>,
}

impl IndexWriter {
    /// Take ownership of an updatable index and stand up a server on its
    /// current snapshot.
    pub fn new(index: UpdatableIndex, options: ServeOptions) -> (Arc<QueryServer>, IndexWriter) {
        let server = Arc::new(QueryServer::from_snapshot(index.snapshot(), options));
        let writer = IndexWriter {
            server: Arc::clone(&server),
            inner: Mutex::new(index),
        };
        (server, writer)
    }

    /// The server this writer publishes to.
    pub fn server(&self) -> Arc<QueryServer> {
        Arc::clone(&self.server)
    }

    /// Apply a batch of update requests as one atomic delta and publish the
    /// resulting snapshot epoch. Insert ids are reported in request order.
    pub fn apply(&self, updates: &[UpdateRequest]) -> Result<UpdateReport> {
        let mut delta = IndexDelta::new();
        for update in updates {
            match update {
                UpdateRequest::Insert { feature } => {
                    delta.insert(feature.clone());
                }
                UpdateRequest::Remove { id } => {
                    delta.remove(*id);
                }
            }
        }
        self.apply_delta(&delta)
    }

    /// Apply an already-staged [`IndexDelta`] and publish the resulting
    /// snapshot epoch.
    pub fn apply_delta(&self, delta: &IndexDelta) -> Result<UpdateReport> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let report = inner.apply(delta)?;
        self.server.install_snapshot(inner.snapshot());
        Ok(report)
    }

    /// Force a full refactorization now (debt back to zero) and publish it.
    /// Queries keep answering from the previous epoch while this runs.
    pub fn rebuild(&self) -> Result<UpdateReport> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let report = inner.rebuild()?;
        self.server.install_snapshot(inner.snapshot());
        Ok(report)
    }

    /// Current rebuild debt of the writer state.
    pub fn debt(&self) -> RebuildDebt {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .debt()
    }

    /// `true` when the next apply would trigger a full refactorization.
    pub fn needs_rebuild(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .needs_rebuild()
    }
}
