//! Read/write coordination: the [`IndexWriter`] mutates an
//! [`UpdatableIndex`] and publishes each resulting snapshot to a
//! [`QueryServer`].
//!
//! The split of responsibilities is deliberately strict:
//!
//! * **Readers** (query threads) only ever touch the server's current
//!   [`IndexSnapshot`](mogul_core::update::IndexSnapshot) — immutable, so no
//!   read locks on the per-query hot path.
//! * **The writer** owns the mutable [`UpdatableIndex`] behind a [`Mutex`]:
//!   updates serialize against each other but never against queries. Delta
//!   application (and, when the rebuild-debt policy fires, the full
//!   refactorization) runs entirely off the query path; queries keep
//!   hitting the previous epoch until [`QueryServer::install_snapshot`]
//!   swaps in the new one.
//!
//! Any thread may call [`IndexWriter::apply`] — a maintenance thread, a cron
//! loop, or an ingest pipeline — which is what "background refactorization"
//! means here: it is background *relative to queries*, not a thread this
//! crate spawns.

use crate::error::{ServeError, ServeResult};
use crate::options::ServeOptions;
use crate::request::UpdateRequest;
use crate::server::QueryServer;
use mogul_core::persist::{self, PersistError};
use mogul_core::update::{IndexDelta, RebuildDebt, UpdatableIndex, UpdateReport};
use mogul_core::wal::{self, RecoveryOutcome, Wal, WalError, WalOp, WalSync};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The single-writer handle pairing an [`UpdatableIndex`] with the
/// [`QueryServer`] that serves its snapshots.
///
/// ```
/// use mogul_core::update::IndexBuilder;
/// use mogul_serve::{IndexWriter, ServeOptions, UpdateRequest};
///
/// let features: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 0.0]).collect();
/// let index = IndexBuilder::new().knn_k(3).build(features)?;
/// let options = ServeOptions::builder().workers(2).build()?;
/// let (server, writer) = IndexWriter::new(index, options);
///
/// // Queries and updates may now run from different threads; each update
/// // publishes a new epoch without interrupting in-flight queries.
/// let report = writer.apply(&[UpdateRequest::insert(vec![2.5, 0.0])])?;
/// assert_eq!(server.epoch(), report.epoch);
/// let top = server.query_by_id(report.inserted[0], 3)?;
/// assert_eq!(top.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct IndexWriter {
    server: Arc<QueryServer>,
    inner: Mutex<UpdatableIndex>,
    /// The write-ahead log, when durability between checkpoints is enabled
    /// (see [`IndexWriter::enable_wal`]). Lock order: `inner` before `wal`
    /// before the checkpoint fields — every path below acquires in that
    /// order.
    wal: Mutex<Option<Wal>>,
    /// When set, the writer re-saves the index here after every full
    /// refactorization (the only moment the state is clean and worth
    /// persisting). See [`IndexWriter::set_checkpoint`].
    checkpoint: Mutex<Option<PathBuf>>,
    /// Outcome of the most recent automatic checkpoint attempt (auto
    /// checkpoints are best-effort: a failed save must not fail the update
    /// that triggered it, since the new snapshot is already live).
    checkpoint_error: Mutex<Option<PersistError>>,
}

impl IndexWriter {
    /// Take ownership of an updatable index and stand up a server on its
    /// current snapshot.
    pub fn new(index: UpdatableIndex, options: ServeOptions) -> (Arc<QueryServer>, IndexWriter) {
        let server = Arc::new(QueryServer::from_snapshot(index.snapshot(), options));
        let writer = IndexWriter {
            server: Arc::clone(&server),
            inner: Mutex::new(index),
            wal: Mutex::new(None),
            checkpoint: Mutex::new(None),
            checkpoint_error: Mutex::new(None),
        };
        (server, writer)
    }

    /// Warm-start from an updatable-index file written by
    /// [`mogul_core::persist::save_updatable`] (or by this writer's own
    /// checkpointing): the graph, factors, stable ids and epoch are
    /// reconstructed with no precompute, and the same path is installed as
    /// the checkpoint target so later rebuilds keep refreshing it.
    pub fn warm_start(
        path: impl AsRef<Path>,
        options: ServeOptions,
    ) -> std::result::Result<(Arc<QueryServer>, IndexWriter), PersistError> {
        let path = path.as_ref().to_path_buf();
        let index = persist::load_updatable(&path)?;
        let (server, writer) = IndexWriter::new(index, options);
        writer.set_checkpoint(Some(path));
        Ok((server, writer))
    }

    /// Crash recovery: warm-start from a checkpoint **plus** its
    /// write-ahead log, landing on the exact epoch the crashed writer last
    /// acknowledged — including every corrected (non-checkpointed) epoch.
    ///
    /// The checkpoint is loaded, the log is scanned (a torn tail record —
    /// the one defect a crash of the append-only writer can produce — is
    /// discarded; any other defect refuses with a typed [`WalError`]),
    /// records above the checkpoint epoch are re-applied, and the writer
    /// resumes with both the checkpoint path and the log installed, so
    /// durability continues seamlessly. Answers from the recovered index
    /// are bit-identical to the uncrashed writer's at the same epoch.
    pub fn warm_start_durable(
        checkpoint: impl AsRef<Path>,
        wal_dir: impl AsRef<Path>,
        sync: WalSync,
        options: ServeOptions,
    ) -> std::result::Result<(Arc<QueryServer>, IndexWriter, RecoveryOutcome), WalError> {
        let checkpoint = checkpoint.as_ref().to_path_buf();
        let (index, log, outcome) = wal::recover_updatable(&checkpoint, wal_dir, sync)?;
        let (server, writer) = IndexWriter::new(index, options);
        writer.set_checkpoint(Some(checkpoint));
        *writer.wal.lock().unwrap_or_else(PoisonError::into_inner) = Some(log);
        Ok((server, writer, outcome))
    }

    /// Turn on the write-ahead log: from here on, every applied delta (and
    /// every explicit refactorization) is fsync'd to a segment under `dir`
    /// *before* it is applied, so
    /// [`IndexWriter::warm_start_durable`] can recover every acknowledged
    /// epoch after a crash — not just the last checkpointed one.
    ///
    /// Requires a checkpoint path (see [`IndexWriter::set_checkpoint`]):
    /// the log is replayed *over* a checkpoint, so one is written here —
    /// forcing a refactorization first if the state carries correction
    /// debt — and the fresh log is based at its epoch. Refuses if `dir`
    /// already holds segments (recover those with
    /// [`IndexWriter::warm_start_durable`] instead of logging over them).
    pub fn enable_wal(
        &self,
        dir: impl AsRef<Path>,
        sync: WalSync,
    ) -> std::result::Result<(), WalError> {
        let path = self.checkpoint_path().ok_or_else(|| {
            WalError::InvalidState(
                "a checkpoint path must be configured before enabling the wal; call \
                 set_checkpoint first"
                    .into(),
            )
        })?;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        if wal.is_some() {
            return Err(WalError::InvalidState("the wal is already enabled".into()));
        }
        if !inner.snapshot().is_clean() {
            // The pre-log rebuild itself needs no record: the checkpoint
            // below is saved at the epoch it produces, and the log starts
            // after it.
            inner.rebuild().map_err(|e| {
                WalError::Checkpoint(PersistError::InvalidState(format!(
                    "refactorization before checkpoint failed: {e}"
                )))
            })?;
            self.server.install_snapshot(inner.snapshot());
        }
        persist::save_updatable(&inner, &path)?;
        *wal = Some(Wal::create(dir, inner.epoch(), sync)?);
        Ok(())
    }

    /// `true` while the write-ahead log is enabled.
    pub fn wal_enabled(&self) -> bool {
        self.wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Path of the log's open segment file, when the wal is enabled.
    pub fn wal_segment_path(&self) -> Option<PathBuf> {
        self.wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|w| w.segment_path().to_path_buf())
    }

    /// Configure (or, with `None`, disable) the checkpoint file.
    ///
    /// While configured, every apply that ends in a full refactorization —
    /// whether triggered by the rebuild-debt policy or by
    /// [`IndexWriter::rebuild`] — re-saves the fresh clean epoch to this
    /// path, so a crashed process can [`IndexWriter::warm_start`] from a
    /// state at most one rebuild interval old. Saves are atomic
    /// (write-to-temp + rename): the checkpoint file always holds a
    /// complete, checksummed index.
    ///
    /// Automatic checkpoints are best-effort; a failed save is recorded and
    /// reported by [`IndexWriter::take_checkpoint_error`] instead of failing
    /// the update (the new snapshot is already serving at that point).
    pub fn set_checkpoint(&self, path: Option<PathBuf>) {
        *self
            .checkpoint
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = path;
    }

    /// The configured checkpoint file, if any.
    pub fn checkpoint_path(&self) -> Option<PathBuf> {
        self.checkpoint
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The error of the most recent failed automatic checkpoint, if any
    /// (clears on read; successful checkpoints also clear it).
    pub fn take_checkpoint_error(&self) -> Option<PersistError> {
        self.checkpoint_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// Checkpoint the current state to the configured path right now,
    /// forcing a full refactorization first if the state carries correction
    /// debt (only a clean epoch can be persisted). With the wal enabled,
    /// that refactorization is logged like any other epoch, and a
    /// successful save rotates the log: a fresh segment starts at the
    /// checkpoint epoch and the now-redundant older segments are collected.
    /// Returns the path written.
    pub fn checkpoint_now(&self) -> std::result::Result<PathBuf, PersistError> {
        let path = self.checkpoint_path().ok_or_else(|| {
            PersistError::InvalidState(
                "no checkpoint path is configured; call set_checkpoint first".into(),
            )
        })?;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        if !inner.snapshot().is_clean() {
            if let Some(log) = wal.as_mut() {
                log.append(inner.epoch() + 1, &WalOp::Rebuild)
                    .map_err(|e| {
                        PersistError::InvalidState(format!(
                            "wal append before checkpoint failed: {e}"
                        ))
                    })?;
            }
            match inner.rebuild() {
                Ok(_) => {}
                Err(e) => {
                    if let Some(log) = wal.as_mut() {
                        let _ = log.undo_last_append();
                    }
                    return Err(PersistError::InvalidState(format!(
                        "refactorization before checkpoint failed: {e}"
                    )));
                }
            }
            self.server.install_snapshot(inner.snapshot());
        }
        persist::save_updatable(&inner, &path)?;
        if let Some(log) = wal.as_mut() {
            // The save landed; even if rotation fails the stale segments
            // stay replay-safe (replay skips records at or below the
            // checkpoint epoch), so surface the error without undoing
            // anything.
            log.rotate(inner.epoch()).map_err(|e| {
                PersistError::InvalidState(format!("wal rotation after checkpoint failed: {e}"))
            })?;
        }
        // The checkpoint on disk is now fresh; clear any stale auto-
        // checkpoint failure so monitoring does not keep reporting it.
        *self
            .checkpoint_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        Ok(path)
    }

    /// Best-effort auto-checkpoint after a rebuild. Both callers hold the
    /// `inner` writer mutex across this call (never re-lock it here; note
    /// that the fsync'd save extends the writer critical section — blocking
    /// later updates, not queries — for the duration of the write). A
    /// successful save rotates the wal; a failed rotation is recorded the
    /// same way as a failed save (the log stays replay-correct either way,
    /// the stale segments just linger).
    fn maybe_checkpoint(
        &self,
        inner: &UpdatableIndex,
        report: &UpdateReport,
        wal: &mut Option<Wal>,
    ) {
        if !report.rebuilt {
            return;
        }
        let Some(path) = self.checkpoint_path() else {
            return;
        };
        let outcome = match persist::save_updatable(inner, &path) {
            Ok(()) => match wal.as_mut() {
                Some(log) => log.rotate(inner.epoch()).err().map(|e| {
                    PersistError::InvalidState(format!("wal rotation after checkpoint failed: {e}"))
                }),
                None => None,
            },
            Err(e) => Some(e),
        };
        *self
            .checkpoint_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = outcome;
    }

    /// The server this writer publishes to.
    pub fn server(&self) -> Arc<QueryServer> {
        Arc::clone(&self.server)
    }

    /// Apply a batch of update requests as one atomic delta and publish the
    /// resulting snapshot epoch. Insert ids are reported in request order.
    /// Index-level rejections surface as
    /// [`ServeError::Index`](crate::ServeError::Index).
    pub fn apply(&self, updates: &[UpdateRequest]) -> ServeResult<UpdateReport> {
        let mut delta = IndexDelta::new();
        for update in updates {
            match update {
                UpdateRequest::Insert { feature } => {
                    delta.insert(feature.clone());
                }
                UpdateRequest::Remove { id } => {
                    delta.remove(*id);
                }
            }
        }
        self.apply_delta(&delta)
    }

    /// Apply an already-staged [`IndexDelta`] and publish the resulting
    /// snapshot epoch. If the apply ended in a full refactorization and a
    /// checkpoint path is configured, the fresh clean epoch is re-saved to
    /// it (best-effort; see [`IndexWriter::set_checkpoint`]).
    ///
    /// With the wal enabled the protocol is **append-before-apply**: the
    /// delta's record is fsync'd to the log first, so by the time any
    /// caller observes the new epoch it already survives a crash. An
    /// append failure rejects the update with
    /// [`ServeError::Durability`] *without* applying it; an apply failure
    /// after the append truncates the record back off the log.
    pub fn apply_delta(&self, delta: &IndexDelta) -> ServeResult<UpdateReport> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        self.apply_logged(&mut inner, &mut wal, delta)
    }

    /// The shared logged-apply path ([`IndexWriter::apply_delta`] and the
    /// rebuild half of [`IndexWriter::rebuild`]); both locks are held by
    /// the caller.
    fn apply_logged(
        &self,
        inner: &mut MutexGuard<'_, UpdatableIndex>,
        wal: &mut MutexGuard<'_, Option<Wal>>,
        delta: &IndexDelta,
    ) -> ServeResult<UpdateReport> {
        // Empty deltas do not advance the epoch and are never logged.
        let logged = !delta.is_empty();
        if logged {
            if let Some(log) = wal.as_mut() {
                log.append(inner.epoch() + 1, &WalOp::Delta(delta.clone()))
                    .map_err(ServeError::durability)?;
            }
        }
        let report = match inner.apply(delta) {
            Ok(report) => report,
            Err(e) => {
                // The record is durable but the operation never happened:
                // take it back off the log so recovery does not replay an
                // epoch nobody acknowledged. (Validation failures reject
                // before mutating, so the index state is unchanged.)
                if logged {
                    if let Some(log) = wal.as_mut() {
                        let _ = log.undo_last_append();
                    }
                }
                return Err(e.into());
            }
        };
        if let Some(log) = wal.as_ref() {
            debug_assert_eq!(report.epoch, log.last_epoch());
        }
        self.server.install_snapshot(inner.snapshot());
        self.maybe_checkpoint(inner, &report, wal);
        Ok(report)
    }

    /// Force a full refactorization now (debt back to zero) and publish it.
    /// Queries keep answering from the previous epoch while this runs. The
    /// fresh epoch is checkpointed if a path is configured. With the wal
    /// enabled the refactorization is logged append-before-apply like any
    /// delta (it advances the epoch, so replay must reproduce it).
    pub fn rebuild(&self) -> ServeResult<UpdateReport> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(log) = wal.as_mut() {
            log.append(inner.epoch() + 1, &WalOp::Rebuild)
                .map_err(ServeError::durability)?;
        }
        let report = match inner.rebuild() {
            Ok(report) => report,
            Err(e) => {
                if let Some(log) = wal.as_mut() {
                    let _ = log.undo_last_append();
                }
                return Err(e.into());
            }
        };
        self.server.install_snapshot(inner.snapshot());
        self.maybe_checkpoint(&inner, &report, &mut wal);
        Ok(report)
    }

    /// Current rebuild debt of the writer state.
    pub fn debt(&self) -> RebuildDebt {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .debt()
    }

    /// `true` when the next apply would trigger a full refactorization.
    pub fn needs_rebuild(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .needs_rebuild()
    }
}
