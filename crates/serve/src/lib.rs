//! # mogul-serve
//!
//! Concurrent batched query serving — with zero-downtime updates and a
//! network front door — on top of the Mogul index.
//!
//! The paper's central observation (Section 4 of Fujiwara et al., *Scaling
//! Manifold Ranking Based Image Retrieval*, PVLDB 2014) is that once the
//! `L D Lᵀ` factorization is precomputed, answering a query is `O(n)`
//! substitution plus pruning over **read-only** state. That shape amortizes
//! perfectly across threads: one immutable index, shared behind an
//! [`Arc`](std::sync::Arc), can answer many queries at once with no locking
//! on the hot path.
//!
//! This crate provides exactly that serving layer:
//!
//! * [`QueryRequest`] / [`QueryResponse`] — the **canonical query
//!   vocabulary**. Every way into the serving layer speaks it: the
//!   in-process [`QueryServer::query`] and [`QueryServer::serve_batch`],
//!   the `query_by_*` conveniences layered on top of them, and the `MGW1`
//!   wire protocol of [`net`]. Requests are validated at admission
//!   ([`QueryRequest::validate`]) — a malformed request is rejected with a
//!   typed error before it touches a queue or the solve path.
//! * [`ServeError`] — the **typed error contract** shared by every entry
//!   point, in-process and on the wire: `Overloaded` (load shed, with queue
//!   depth and bound), `Draining`, `BadRequest`, `Index`, `Config`.
//! * [`QueryServer`] — dispatches single, batched, and mixed in-database /
//!   out-of-sample top-k requests across a [`std::thread::scope`]-based
//!   worker pool, reading from an epoch-versioned
//!   [`IndexSnapshot`](mogul_core::update::IndexSnapshot). Batch dispatch is
//!   **panel-blocked**: workers claim contiguous runs of compatible
//!   requests (same kind, same `k`) and answer each run through the batched
//!   multi-RHS substitution engine of `mogul-core` (see
//!   `docs/PERFORMANCE.md`); singletons fall back to the scalar path.
//! * [`net`] — the **network front door**: a plain-`std` TCP server
//!   ([`net::NetServer`]) speaking a length-prefixed, checksummed, versioned
//!   frame codec, with a bounded admission queue that sheds excess load as
//!   typed `Overloaded` frames, per-connection in-flight caps, graceful
//!   drain, and a statistics endpoint (p50/p95, qps, shed counts, epoch,
//!   rebuild debt). Answers over the socket are bit-identical to in-process
//!   answers. See `docs/NETWORKING.md`.
//! * [`UpdateRequest`] / [`IndexWriter`] — the write side: updates are
//!   applied to an [`UpdatableIndex`](mogul_core::update::UpdatableIndex)
//!   off the query path and the resulting snapshot is swapped in atomically
//!   ([`QueryServer::install_snapshot`]). In-flight queries finish on the
//!   epoch they started with — **zero downtime**, no query ever waits on a
//!   writer.
//! * [`resilience`] — the **fault-tolerant serving tier**: a replica
//!   failover client ([`resilience::ReplicaSet`]) with per-request
//!   deadlines, retry with decorrelated-jitter backoff and per-replica
//!   circuit breakers; degraded-mode scatter-gather on the sharded engine
//!   ([`ShardedServer::query_degraded`], answers tagged
//!   [`ResponseStatus::Degraded`] when a shard fails); and a deterministic
//!   fault-injection harness ([`resilience::FaultProxy`]) that proves the
//!   typed-outcome contract under kills, corruption and stalls.
//! * [`ShardedServer`] / [`ShardedWriter`] — the same serving contract over
//!   a [`ShardedIndex`](mogul_core::ShardedIndex): scatter-gather queries
//!   against an epoch-versioned sharded snapshot (each batch observes every
//!   shard at exactly one epoch, even while shards rebuild one at a time),
//!   updates routed to their owning shard so only the touched shard accrues
//!   rebuild debt, and warm start from a manifested shard directory. See
//!   `docs/SHARDING.md`.
//! * [`ServeOptions`] — validated configuration through
//!   [`ServeOptions::builder`]: worker count, batch [`Dispatch`] strategy,
//!   admission-queue capacity and per-connection cap. Invalid configurations
//!   are rejected with [`ServeError::Config`], never silently clamped.
//! * **Cold start** — [`QueryServer::warm_start`] and
//!   [`IndexWriter::warm_start`] reconstruct a serving index from a
//!   checksummed `MOG1` file (see [`mogul_core::persist`] and
//!   `docs/PERSISTENCE.md`) with no precompute, and
//!   [`IndexWriter::set_checkpoint`] re-saves the index after every full
//!   refactorization so restarts pick up from the last rebuild.
//!
//! Each worker owns a reusable
//! [`SnapshotWorkspace`](mogul_core::update::SnapshotWorkspace), so after
//! warm-up the substitution/pruning path performs zero heap allocations;
//! workspaces are recycled across batches through an internal
//! checkout/checkin pool. Answers are **bit-identical** to the sequential
//! [`RetrievalEngine`](mogul_core::RetrievalEngine) — concurrency changes
//! throughput, never results.
//!
//! `docs/OPERATIONS.md` is the operator's guide to sizing workers, batches
//! and admission queues; `docs/UPDATES.md` covers the update lifecycle;
//! `docs/NETWORKING.md` covers the wire protocol and the load harness.

#![deny(missing_docs)]

mod error;
pub mod net;
mod options;
mod request;
pub mod resilience;
mod server;
mod sharded;
mod updater;

pub use error::{ServeError, ServeResult};
pub use options::{Dispatch, ServeOptions, ServeOptionsBuilder, MAX_QUEUE_CAPACITY, MAX_WORKERS};
pub use request::{QueryRequest, QueryResponse, ResponseStatus, UpdateRequest};
pub use server::QueryServer;
pub use sharded::{DegradedPolicy, ShardFault, ShardFaultFn, ShardedServer, ShardedWriter};
pub use updater::IndexWriter;

/// Re-export of the persistence error type surfaced by the warm-start and
/// checkpointing entry points.
pub use mogul_core::persist::PersistError;

/// Re-exports of the write-ahead-log types surfaced by the durability
/// entry points ([`IndexWriter::enable_wal`],
/// [`IndexWriter::warm_start_durable`],
/// [`QueryServer::warm_start_replay`]).
pub use mogul_core::wal::{RecoveryOutcome, WalError, WalSync};

// The serving layer is sound only because every shared piece of query state
// is immutable and thread-safe; keep that audited at compile time.
#[allow(dead_code)]
fn static_assert_shared_state_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<mogul_core::MogulIndex>();
    check::<mogul_core::OutOfSampleIndex>();
    check::<mogul_core::RetrievalEngine>();
    check::<mogul_core::update::IndexSnapshot>();
    check::<mogul_core::update::UpdatableIndex>();
    check::<mogul_core::ShardedSnapshot>();
    check::<mogul_core::ShardedIndex>();
    check::<QueryServer>();
    check::<IndexWriter>();
    check::<ShardedServer>();
    check::<ShardedWriter>();
    check::<QueryRequest>();
    check::<QueryResponse>();
    check::<UpdateRequest>();
    check::<ServeError>();
    check::<ServeOptions>();
    check::<net::NetHandle>();
    check::<net::NetClient>();
    check::<net::ServerStatsReport>();
    check::<ResponseStatus>();
    check::<DegradedPolicy>();
    check::<ShardFault>();
    check::<resilience::ReplicaSetConfig>();
    check::<resilience::FaultPlan>();
    check::<resilience::FaultProxy>();

    // The failover client owns live sockets and a retry cursor: one per
    // thread, like `NetClient` — `Send` so it can move between threads,
    // deliberately not asserted `Sync`.
    fn check_send<T: Send>() {}
    check_send::<resilience::ReplicaSet>();
    check_send::<resilience::Backoff>();
    check_send::<resilience::CircuitBreaker>();
}
