//! # mogul-serve
//!
//! Concurrent batched query serving on top of the Mogul index.
//!
//! The paper's central observation (Section 4 of Fujiwara et al., *Scaling
//! Manifold Ranking Based Image Retrieval*, PVLDB 2014) is that once the
//! `L D Lᵀ` factorization is precomputed, answering a query is `O(n)`
//! substitution plus pruning over **read-only** state. That shape amortizes
//! perfectly across threads: one immutable index, shared behind an
//! [`Arc`](std::sync::Arc), can answer many queries at once with no locking
//! on the hot path.
//!
//! This crate provides exactly that serving layer:
//!
//! * [`QueryServer`] — wraps an `Arc<OutOfSampleIndex>` (a
//!   [`MogulIndex`](mogul_core::MogulIndex) plus database features) and
//!   dispatches single, batched, and mixed in-database / out-of-sample top-k
//!   requests across a [`std::thread::scope`]-based worker pool.
//! * [`QueryRequest`] / [`QueryResponse`] — the request/response vocabulary,
//!   mixing both query kinds freely within one batch.
//! * [`ServeOptions`] — worker-count configuration.
//!
//! Each worker owns a reusable [`OosWorkspace`](mogul_core::OosWorkspace), so
//! after warm-up the substitution/pruning path performs zero heap
//! allocations; workspaces are recycled across batches through an internal
//! checkout/checkin pool. Answers are **bit-identical** to the sequential
//! [`RetrievalEngine`](mogul_core::RetrievalEngine) — concurrency changes
//! throughput, never results.

#![deny(missing_docs)]

mod request;
mod server;

pub use request::{QueryRequest, QueryResponse};
pub use server::{QueryServer, ServeOptions};

// The serving layer is sound only because every shared piece of query state
// is immutable and thread-safe; keep that audited at compile time.
#[allow(dead_code)]
fn static_assert_shared_state_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<mogul_core::MogulIndex>();
    check::<mogul_core::OutOfSampleIndex>();
    check::<mogul_core::RetrievalEngine>();
    check::<QueryServer>();
    check::<QueryRequest>();
    check::<QueryResponse>();
}
