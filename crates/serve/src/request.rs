//! Request/response vocabulary of the serving layer.
//!
//! A batch submitted to [`QueryServer::serve_batch`](crate::QueryServer::serve_batch)
//! may mix both query-request kinds freely; each request carries its own
//! `k`. Mutations travel separately as [`UpdateRequest`]s through an
//! [`IndexWriter`](crate::IndexWriter) — queries and updates never share a
//! queue, which is what keeps the query hot path lock-free.

use mogul_core::{OutOfSampleResult, TopKResult};

/// One top-k request submitted to a [`QueryServer`](crate::QueryServer).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Query with an item that is already part of the indexed database
    /// (Algorithm 2; the query item is excluded from the result).
    InDatabase {
        /// Stable item id of the query item (equal to the original node id
        /// for collections that were never updated).
        node: usize,
        /// Number of results requested.
        k: usize,
    },
    /// Query with an arbitrary feature vector that is *not* in the database
    /// (Section 4.6.2 of the paper).
    OutOfSample {
        /// Raw feature vector of the query.
        feature: Vec<f64>,
        /// Number of results requested.
        k: usize,
    },
}

impl QueryRequest {
    /// Convenience constructor for an in-database request.
    pub fn in_database(node: usize, k: usize) -> Self {
        QueryRequest::InDatabase { node, k }
    }

    /// Convenience constructor for an out-of-sample request.
    pub fn out_of_sample(feature: impl Into<Vec<f64>>, k: usize) -> Self {
        QueryRequest::OutOfSample {
            feature: feature.into(),
            k,
        }
    }

    /// The number of results this request asks for.
    pub fn k(&self) -> usize {
        match self {
            QueryRequest::InDatabase { k, .. } | QueryRequest::OutOfSample { k, .. } => *k,
        }
    }
}

/// One mutation of the indexed collection, submitted to an
/// [`IndexWriter`](crate::IndexWriter). A slice of update requests is
/// applied as a single atomic delta: one new snapshot epoch, or (on
/// validation failure) no change at all.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateRequest {
    /// Insert a new item; its stable id is reported by the writer's
    /// [`UpdateReport`](mogul_core::update::UpdateReport).
    Insert {
        /// Feature vector of the new item (must match the index dimension).
        feature: Vec<f64>,
    },
    /// Remove a live item by stable id.
    Remove {
        /// Stable id of the item to remove.
        id: usize,
    },
}

impl UpdateRequest {
    /// Convenience constructor for an insert.
    pub fn insert(feature: impl Into<Vec<f64>>) -> Self {
        UpdateRequest::Insert {
            feature: feature.into(),
        }
    }

    /// Convenience constructor for a removal.
    pub fn remove(id: usize) -> Self {
        UpdateRequest::Remove { id }
    }
}

/// Answer to one [`QueryRequest`], mirroring its kind.
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// Answer to an in-database request.
    InDatabase(TopKResult),
    /// Answer to an out-of-sample request, including the Table 2 timing
    /// breakdown (boxed: the payload is much larger than the other variant).
    OutOfSample(Box<OutOfSampleResult>),
}

impl QueryResponse {
    /// The ranked top-k result, regardless of request kind.
    pub fn top_k(&self) -> &TopKResult {
        match self {
            QueryResponse::InDatabase(top_k) => top_k,
            QueryResponse::OutOfSample(result) => &result.top_k,
        }
    }

    /// Consume the response, yielding the ranked top-k result.
    pub fn into_top_k(self) -> TopKResult {
        match self {
            QueryResponse::InDatabase(top_k) => top_k,
            QueryResponse::OutOfSample(result) => result.top_k,
        }
    }

    /// The full out-of-sample result (neighbours, timing breakdown) when the
    /// request was [`QueryRequest::OutOfSample`].
    pub fn out_of_sample(&self) -> Option<&OutOfSampleResult> {
        match self {
            QueryResponse::InDatabase(_) => None,
            QueryResponse::OutOfSample(result) => Some(result),
        }
    }
}
