//! The canonical request/response vocabulary of the serving layer.
//!
//! [`QueryRequest`] / [`QueryResponse`] are the **single query surface**:
//! every way into the serving layer — the in-process
//! [`QueryServer::query`](crate::QueryServer::query) and
//! [`QueryServer::serve_batch`](crate::QueryServer::serve_batch), the
//! `query_by_*` conveniences, and the `MGW1` wire protocol of [`crate::net`]
//! — speaks exactly this vocabulary. A batch may mix both request kinds
//! freely; each request carries its own `k`.
//!
//! Requests are **validated at admission time**
//! ([`QueryRequest::validate`]): a zero `k`, an unknown item id, a feature
//! vector whose dimension does not match the index, or non-finite feature
//! values are rejected with a typed
//! [`ServeError::BadRequest`](crate::ServeError::BadRequest) before the
//! request is queued or executed — a malformed request never reaches the
//! solve path (and, on the wire, never occupies an admission-queue slot).
//!
//! Mutations travel separately as [`UpdateRequest`]s through an
//! [`IndexWriter`](crate::IndexWriter) — queries and updates never share a
//! queue, which is what keeps the query hot path lock-free.

use crate::error::ServeResult;
use crate::ServeError;
use mogul_core::update::IndexSnapshot;
use mogul_core::{OutOfSampleResult, ShardedSnapshot, TopKResult};

/// One top-k request — the canonical query shape of the serving layer,
/// in-process and on the wire alike.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Query with an item that is already part of the indexed database
    /// (Algorithm 2; the query item is excluded from the result).
    InDatabase {
        /// Stable item id of the query item (equal to the original node id
        /// for collections that were never updated).
        node: usize,
        /// Number of results requested.
        k: usize,
    },
    /// Query with an arbitrary feature vector that is *not* in the database
    /// (Section 4.6.2 of the paper).
    OutOfSample {
        /// Raw feature vector of the query.
        feature: Vec<f64>,
        /// Number of results requested.
        k: usize,
    },
}

impl QueryRequest {
    /// Convenience constructor for an in-database request.
    pub fn in_database(node: usize, k: usize) -> Self {
        QueryRequest::InDatabase { node, k }
    }

    /// Convenience constructor for an out-of-sample request.
    pub fn out_of_sample(feature: impl Into<Vec<f64>>, k: usize) -> Self {
        QueryRequest::OutOfSample {
            feature: feature.into(),
            k,
        }
    }

    /// The number of results this request asks for.
    pub fn k(&self) -> usize {
        match self {
            QueryRequest::InDatabase { k, .. } | QueryRequest::OutOfSample { k, .. } => *k,
        }
    }

    /// Admission-time validation against the snapshot that would answer the
    /// request.
    ///
    /// Checks everything that can be checked without running the solve:
    ///
    /// * `k >= 1` for both kinds;
    /// * [`QueryRequest::InDatabase`] — the stable id refers to a live item
    ///   of the snapshot;
    /// * [`QueryRequest::OutOfSample`] — the feature dimension matches
    ///   [`IndexSnapshot::feature_dim`] and every component is finite
    ///   (historically a mismatched dimension surfaced as an error deep in
    ///   the solve path; it is now rejected here, before the request is
    ///   admitted).
    ///
    /// Returns [`ServeError::BadRequest`] naming the violation.
    pub fn validate(&self, snapshot: &IndexSnapshot) -> ServeResult<()> {
        self.validate_against(|node| snapshot.contains(node), snapshot.feature_dim())
    }

    /// Admission-time validation against a [`ShardedSnapshot`] — exactly
    /// the checks of [`QueryRequest::validate`], with item liveness resolved
    /// through the shard router (a global id is live iff its owning shard
    /// still holds it).
    pub fn validate_sharded(&self, snapshot: &ShardedSnapshot) -> ServeResult<()> {
        self.validate_against(|node| snapshot.contains(node), snapshot.feature_dim())
    }

    /// The shared admission checks, abstracted over how a snapshot answers
    /// "is this stable id live?" and what feature dimension it serves.
    fn validate_against(&self, contains: impl Fn(usize) -> bool, dim: usize) -> ServeResult<()> {
        if self.k() == 0 {
            return Err(ServeError::bad_request(
                "the number of requested answer nodes k must be at least 1",
            ));
        }
        match self {
            QueryRequest::InDatabase { node, .. } => {
                if !contains(*node) {
                    return Err(ServeError::bad_request(format!(
                        "item {node} is not in this snapshot (never inserted, or removed)"
                    )));
                }
            }
            QueryRequest::OutOfSample { feature, .. } => {
                if feature.len() != dim {
                    return Err(ServeError::bad_request(format!(
                        "query feature has dimension {} but the index holds \
                         {dim}-dimensional features",
                        feature.len()
                    )));
                }
                if let Some(i) = feature.iter().position(|v| !v.is_finite()) {
                    return Err(ServeError::bad_request(format!(
                        "query feature component {i} is {} (must be finite)",
                        feature[i]
                    )));
                }
            }
        }
        Ok(())
    }
}

/// One mutation of the indexed collection, submitted to an
/// [`IndexWriter`](crate::IndexWriter). A slice of update requests is
/// applied as a single atomic delta: one new snapshot epoch, or (on
/// validation failure) no change at all.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateRequest {
    /// Insert a new item; its stable id is reported by the writer's
    /// [`UpdateReport`](mogul_core::update::UpdateReport).
    Insert {
        /// Feature vector of the new item (must match the index dimension).
        feature: Vec<f64>,
    },
    /// Remove a live item by stable id.
    Remove {
        /// Stable id of the item to remove.
        id: usize,
    },
}

impl UpdateRequest {
    /// Convenience constructor for an insert.
    pub fn insert(feature: impl Into<Vec<f64>>) -> Self {
        UpdateRequest::Insert {
            feature: feature.into(),
        }
    }

    /// Convenience constructor for a removal.
    pub fn remove(id: usize) -> Self {
        UpdateRequest::Remove { id }
    }
}

/// Completeness of a [`QueryResponse`] under degraded-mode scatter-gather.
///
/// A sharded server that loses a shard mid-query (poisoned worker, injected
/// fault, per-scatter deadline) can still answer with the merged top-k of
/// the shards that *did* respond. That answer is tagged
/// [`ResponseStatus::Degraded`] so the caller knows it saw a subset of the
/// database; a complete answer is tagged [`ResponseStatus::Complete`].
/// Callers that would rather fail than act on a partial answer set the
/// `require_complete` flag on the request and receive a typed
/// [`ServeError::Incomplete`](crate::ServeError::Incomplete) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseStatus {
    /// Every probed shard answered; the response is the full scatter-gather
    /// result (bit-identical to a healthy query).
    #[default]
    Complete,
    /// One or more probed shards failed to answer; the response merges the
    /// survivors and is a true subset of the complete answer.
    Degraded {
        /// Number of probed shards that answered.
        shards_answered: usize,
        /// Number of shards the query probed (answered + failed).
        shards_total: usize,
    },
}

impl ResponseStatus {
    /// `true` when every probed shard answered.
    pub fn is_complete(&self) -> bool {
        matches!(self, ResponseStatus::Complete)
    }

    /// `true` when the response merges only a subset of the probed shards.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ResponseStatus::Degraded { .. })
    }
}

/// Answer to one [`QueryRequest`], mirroring its kind.
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// Answer to an in-database request.
    InDatabase(TopKResult),
    /// Answer to an out-of-sample request, including the Table 2 timing
    /// breakdown (boxed: the payload is much larger than the other variant).
    OutOfSample(Box<OutOfSampleResult>),
}

impl QueryResponse {
    /// The ranked top-k result, regardless of request kind.
    pub fn top_k(&self) -> &TopKResult {
        match self {
            QueryResponse::InDatabase(top_k) => top_k,
            QueryResponse::OutOfSample(result) => &result.top_k,
        }
    }

    /// Consume the response, yielding the ranked top-k result.
    pub fn into_top_k(self) -> TopKResult {
        match self {
            QueryResponse::InDatabase(top_k) => top_k,
            QueryResponse::OutOfSample(result) => result.top_k,
        }
    }

    /// The full out-of-sample result (neighbours, timing breakdown) when the
    /// request was [`QueryRequest::OutOfSample`].
    pub fn out_of_sample(&self) -> Option<&OutOfSampleResult> {
        match self {
            QueryResponse::InDatabase(_) => None,
            QueryResponse::OutOfSample(result) => Some(result),
        }
    }
}
