//! The [`QueryServer`]: a worker pool over an `Arc`-shared immutable index.
//!
//! Concurrency model: the index is read-only after construction, so workers
//! share it without any locking. The only mutable state is the per-worker
//! scratch workspace; those are recycled across batches through a small
//! checkout/checkin pool guarded by a [`Mutex`] that is touched exactly twice
//! per worker per batch (never on the per-query hot path). Batch items are
//! handed out through an atomic cursor, so workers self-balance: a worker
//! that drew a cheap query immediately picks up the next one.

use crate::request::{QueryRequest, QueryResponse};
use mogul_core::{OosWorkspace, OutOfSampleIndex, OutOfSampleResult, Result, RetrievalEngine};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

/// Configuration of a [`QueryServer`].
///
/// The default (`workers: 0`) auto-detects the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeOptions {
    /// Number of worker threads used by
    /// [`QueryServer::serve_batch`]. `0` means "auto": use
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
}

impl ServeOptions {
    /// Options with an explicit worker count (`0` = auto-detect).
    pub fn with_workers(workers: usize) -> Self {
        ServeOptions { workers }
    }

    /// The effective worker count after auto-detection.
    fn resolve(self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(1, |p| p.get())
        }
    }
}

/// Recycles per-worker scratch workspaces across batches so the hot
/// substitution/pruning path allocates nothing after warm-up.
///
/// The pool retains at most `cap` workspaces: a transient spike of
/// concurrent batches checks out extra (freshly allocated) workspaces, but
/// the surplus is dropped on checkin instead of pinning index-sized buffers
/// for the server's lifetime.
#[derive(Debug)]
struct WorkspacePool {
    stack: Mutex<Vec<OosWorkspace>>,
    cap: usize,
}

impl WorkspacePool {
    fn with_capacity(cap: usize) -> Self {
        WorkspacePool {
            stack: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn checkout(&self) -> OosWorkspace {
        self.stack
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn checkin(&self, ws: OosWorkspace) {
        let mut stack = self.stack.lock().unwrap_or_else(PoisonError::into_inner);
        if stack.len() < self.cap {
            stack.push(ws);
        }
    }
}

/// A thread-safe query server over an immutable, `Arc`-shared
/// [`OutOfSampleIndex`].
///
/// The server answers three request shapes — single queries
/// ([`QueryServer::query`] and the `query_by_*` conveniences), homogeneous
/// batches, and mixed in-database / out-of-sample batches
/// ([`QueryServer::serve_batch`]) — and is itself `Send + Sync`: any number
/// of threads may submit batches concurrently, each dispatch spawning scoped
/// workers that die with the call (no background threads, no channels, no
/// extra dependencies). Answers are bit-identical to the sequential
/// [`RetrievalEngine`] paths.
///
/// ```
/// use mogul_core::RetrievalEngine;
/// use mogul_serve::{QueryRequest, QueryServer, ServeOptions};
///
/// // Twelve items along a line, then a server with two workers.
/// let features: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 0.0]).collect();
/// let engine = RetrievalEngine::builder().knn_k(3).build(features)?;
/// let server = QueryServer::from_engine(engine, ServeOptions::with_workers(2));
///
/// // One batch may mix in-database and out-of-sample requests.
/// let answers = server.serve_batch(&[
///     QueryRequest::in_database(0, 3),
///     QueryRequest::out_of_sample(vec![2.5, 0.0], 3),
/// ]);
/// for answer in &answers {
///     assert_eq!(answer.as_ref().unwrap().top_k().len(), 3);
/// }
/// # Ok::<(), mogul_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct QueryServer {
    index: Arc<OutOfSampleIndex>,
    workers: usize,
    pool: WorkspacePool,
}

impl QueryServer {
    /// Build a server over an already-shared index (the `Arc` may also be
    /// held by other servers or by non-serving code).
    pub fn new(index: Arc<OutOfSampleIndex>, options: ServeOptions) -> Self {
        let workers = options.resolve();
        QueryServer {
            index,
            workers,
            // One retained workspace per worker covers the steady state; a
            // spike of concurrent batches allocates extras and drops them.
            pool: WorkspacePool::with_capacity(workers),
        }
    }

    /// Build a server by taking over a [`RetrievalEngine`]'s index.
    pub fn from_engine(engine: RetrievalEngine, options: ServeOptions) -> Self {
        QueryServer::new(Arc::new(engine.into_out_of_sample()), options)
    }

    /// The shared index the server answers from.
    pub fn index(&self) -> &OutOfSampleIndex {
        &self.index
    }

    /// Number of worker threads a batch dispatch may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.index.index().num_nodes()
    }

    /// `true` when the server indexes zero items (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answer one request of either kind on the calling thread.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse> {
        let mut ws = self.pool.checkout();
        let result = self.answer(&mut ws, request);
        self.pool.checkin(ws);
        result
    }

    /// Top-k for an item already in the database (the item itself is
    /// excluded from the result).
    pub fn query_by_id(&self, node: usize, k: usize) -> Result<mogul_core::TopKResult> {
        let mut ws = self.pool.checkout();
        let result = self.index.index().search_in(ws.search_mut(), node, k);
        self.pool.checkin(ws);
        result
    }

    /// Top-k for an arbitrary feature vector (out-of-sample query).
    pub fn query_by_feature(&self, feature: &[f64], k: usize) -> Result<OutOfSampleResult> {
        let mut ws = self.pool.checkout();
        let result = self.index.query_in(&mut ws, feature, k);
        self.pool.checkin(ws);
        result
    }

    /// Answer a batch of (possibly mixed) requests, preserving order:
    /// `answers[i]` belongs to `requests[i]`. Failures are per-request — one
    /// invalid request never poisons the rest of the batch.
    ///
    /// The batch is spread over `min(workers, requests.len())` scoped worker
    /// threads; a single-worker server (or a one-element batch) runs inline
    /// with no thread spawned at all. `serve_batch` takes `&self`, so any
    /// number of batches may be in flight concurrently on one server.
    pub fn serve_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        let workers = self.workers.min(requests.len()).max(1);
        if workers == 1 {
            let mut ws = self.pool.checkout();
            let answers = requests.iter().map(|r| self.answer(&mut ws, r)).collect();
            self.pool.checkin(ws);
            return answers;
        }

        // Atomic cursor hands requests to whichever worker is free next;
        // workers buffer `(index, answer)` pairs locally and the results are
        // stitched back into request order afterwards.
        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, Result<QueryResponse>)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ws = self.pool.checkout();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= requests.len() {
                                break;
                            }
                            local.push((i, self.answer(&mut ws, &requests[i])));
                        }
                        self.pool.checkin(ws);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect()
        });

        let mut answers: Vec<Option<Result<QueryResponse>>> =
            (0..requests.len()).map(|_| None).collect();
        for (i, answer) in per_worker.into_iter().flatten() {
            answers[i] = Some(answer);
        }
        answers
            .into_iter()
            .map(|a| a.expect("every request is answered exactly once"))
            .collect()
    }

    /// Dispatch one request onto the right index entry point.
    fn answer(&self, ws: &mut OosWorkspace, request: &QueryRequest) -> Result<QueryResponse> {
        match request {
            QueryRequest::InDatabase { node, k } => Ok(QueryResponse::InDatabase(
                self.index.index().search_in(ws.search_mut(), *node, *k)?,
            )),
            QueryRequest::OutOfSample { feature, k } => Ok(QueryResponse::OutOfSample(Box::new(
                self.index.query_in(ws, feature, *k)?,
            ))),
        }
    }
}
