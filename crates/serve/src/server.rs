//! The [`QueryServer`]: a worker pool over an epoch-versioned snapshot.
//!
//! Concurrency model: queries run against an immutable
//! [`IndexSnapshot`](mogul_core::update::IndexSnapshot) shared behind an
//! `Arc`, so workers never lock on the per-query hot path. The snapshot
//! itself sits in an [`RwLock<Arc<…>>`]: readers clone the `Arc` (one
//! uncontended read-lock + refcount bump per dispatch — no allocation),
//! writers swap in a new `Arc` ([`QueryServer::install_snapshot`]). In-flight
//! queries keep the `Arc` they started with, so a swap is zero-downtime:
//! old-epoch queries drain on the old snapshot while new queries see the new
//! one. Per-worker scratch workspaces are recycled across batches through a
//! small checkout/checkin pool guarded by a [`Mutex`] touched exactly twice
//! per worker per batch. Batch items are handed out through an atomic
//! cursor, so workers self-balance.

use crate::request::{QueryRequest, QueryResponse};
use mogul_core::update::{IndexSnapshot, SnapshotWorkspace};
use mogul_core::{OutOfSampleIndex, OutOfSampleResult, Result, RetrievalEngine};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread;

/// Configuration of a [`QueryServer`].
///
/// The default (`workers: 0`) auto-detects the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeOptions {
    /// Number of worker threads used by
    /// [`QueryServer::serve_batch`]. `0` means "auto": use
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
}

impl ServeOptions {
    /// Options with an explicit worker count (`0` = auto-detect).
    pub fn with_workers(workers: usize) -> Self {
        ServeOptions { workers }
    }

    /// The effective worker count after auto-detection.
    fn resolve(self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(1, |p| p.get())
        }
    }
}

/// Recycles per-worker scratch workspaces across batches so the hot
/// substitution/pruning path allocates nothing after warm-up.
///
/// The pool retains at most `cap` workspaces: a transient spike of
/// concurrent batches checks out extra (freshly allocated) workspaces, but
/// the surplus is dropped on checkin instead of pinning index-sized buffers
/// for the server's lifetime.
#[derive(Debug)]
struct WorkspacePool {
    stack: Mutex<Vec<SnapshotWorkspace>>,
    cap: usize,
}

impl WorkspacePool {
    fn with_capacity(cap: usize) -> Self {
        WorkspacePool {
            stack: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn checkout(&self) -> SnapshotWorkspace {
        self.stack
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn checkin(&self, ws: SnapshotWorkspace) {
        let mut stack = self.stack.lock().unwrap_or_else(PoisonError::into_inner);
        if stack.len() < self.cap {
            stack.push(ws);
        }
    }
}

/// A thread-safe query server over an epoch-versioned, `Arc`-shared
/// [`IndexSnapshot`].
///
/// The server answers three request shapes — single queries
/// ([`QueryServer::query`] and the `query_by_*` conveniences), homogeneous
/// batches, and mixed in-database / out-of-sample batches
/// ([`QueryServer::serve_batch`]) — and is itself `Send + Sync`: any number
/// of threads may submit batches concurrently, each dispatch spawning scoped
/// workers that die with the call (no background threads, no channels, no
/// extra dependencies). Answers are bit-identical to the sequential
/// [`RetrievalEngine`] paths.
///
/// When the collection changes, a writer (see
/// [`IndexWriter`](crate::IndexWriter)) produces the next snapshot off the
/// hot path and publishes it with [`QueryServer::install_snapshot`]; each
/// batch reads its snapshot exactly once, so every batch observes one
/// consistent epoch.
///
/// ```
/// use mogul_core::RetrievalEngine;
/// use mogul_serve::{QueryRequest, QueryServer, ServeOptions};
///
/// // Twelve items along a line, then a server with two workers.
/// let features: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 0.0]).collect();
/// let engine = RetrievalEngine::builder().knn_k(3).build(features)?;
/// let server = QueryServer::from_engine(engine, ServeOptions::with_workers(2));
///
/// // One batch may mix in-database and out-of-sample requests.
/// let answers = server.serve_batch(&[
///     QueryRequest::in_database(0, 3),
///     QueryRequest::out_of_sample(vec![2.5, 0.0], 3),
/// ]);
/// for answer in &answers {
///     assert_eq!(answer.as_ref().unwrap().top_k().len(), 3);
/// }
/// # Ok::<(), mogul_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct QueryServer {
    state: RwLock<Arc<IndexSnapshot>>,
    workers: usize,
    pool: WorkspacePool,
}

impl QueryServer {
    /// Build a server over an already-shared immutable index (wrapped as an
    /// epoch-0 snapshot with identity item ids; the `Arc` may also be held
    /// by other servers or by non-serving code).
    pub fn new(index: Arc<OutOfSampleIndex>, options: ServeOptions) -> Self {
        QueryServer::from_snapshot(Arc::new(IndexSnapshot::wrap(index)), options)
    }

    /// Build a server by taking over a [`RetrievalEngine`]'s index.
    pub fn from_engine(engine: RetrievalEngine, options: ServeOptions) -> Self {
        QueryServer::new(Arc::new(engine.into_out_of_sample()), options)
    }

    /// Build a server over an existing snapshot (e.g. the current epoch of
    /// an [`UpdatableIndex`](mogul_core::update::UpdatableIndex)).
    pub fn from_snapshot(snapshot: Arc<IndexSnapshot>, options: ServeOptions) -> Self {
        let workers = options.resolve();
        QueryServer {
            state: RwLock::new(snapshot),
            workers,
            // One retained workspace per worker covers the steady state; a
            // spike of concurrent batches allocates extras and drops them.
            pool: WorkspacePool::with_capacity(workers),
        }
    }

    /// The snapshot new queries are answered from (cheap `Arc` clone; the
    /// returned snapshot stays valid and queryable even after later swaps).
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&self.state.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Epoch of the currently installed snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Atomically publish a new snapshot and return the previous one.
    ///
    /// Queries dispatched before the swap finish on the old snapshot;
    /// queries dispatched after it see the new one. Nothing blocks: the
    /// write lock is held only for the pointer swap.
    pub fn install_snapshot(&self, next: Arc<IndexSnapshot>) -> Arc<IndexSnapshot> {
        let mut slot = self.state.write().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, next)
    }

    /// Number of worker threads a batch dispatch may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of live items in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// `true` when the current snapshot holds zero items (never constructed
    /// so).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answer one request of either kind on the calling thread.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse> {
        let snapshot = self.snapshot();
        let mut ws = self.pool.checkout();
        let result = Self::answer(&snapshot, &mut ws, request);
        self.pool.checkin(ws);
        result
    }

    /// Top-k for an item already in the database, by stable item id (the
    /// item itself is excluded from the result).
    pub fn query_by_id(&self, item: usize, k: usize) -> Result<mogul_core::TopKResult> {
        let snapshot = self.snapshot();
        let mut ws = self.pool.checkout();
        let result = snapshot.query_by_id_in(&mut ws, item, k);
        self.pool.checkin(ws);
        result
    }

    /// Top-k for an arbitrary feature vector (out-of-sample query).
    pub fn query_by_feature(&self, feature: &[f64], k: usize) -> Result<OutOfSampleResult> {
        let snapshot = self.snapshot();
        let mut ws = self.pool.checkout();
        let result = snapshot.query_by_feature_in(&mut ws, feature, k);
        self.pool.checkin(ws);
        result
    }

    /// Answer a batch of (possibly mixed) requests, preserving order:
    /// `answers[i]` belongs to `requests[i]`. Failures are per-request — one
    /// invalid request never poisons the rest of the batch.
    ///
    /// The snapshot is read once per batch, so all answers of one batch come
    /// from one epoch even if a writer swaps mid-batch. The batch is spread
    /// over `min(workers, requests.len())` scoped worker threads; a
    /// single-worker server (or a one-element batch) runs inline with no
    /// thread spawned at all. `serve_batch` takes `&self`, so any number of
    /// batches may be in flight concurrently on one server.
    pub fn serve_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        let snapshot = self.snapshot();
        let workers = self.workers.min(requests.len()).max(1);
        if workers == 1 {
            let mut ws = self.pool.checkout();
            let answers = requests
                .iter()
                .map(|r| Self::answer(&snapshot, &mut ws, r))
                .collect();
            self.pool.checkin(ws);
            return answers;
        }

        // Atomic cursor hands requests to whichever worker is free next;
        // workers buffer `(index, answer)` pairs locally and the results are
        // stitched back into request order afterwards.
        let next = AtomicUsize::new(0);
        let snapshot = &snapshot;
        let per_worker: Vec<Vec<(usize, Result<QueryResponse>)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ws = self.pool.checkout();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= requests.len() {
                                break;
                            }
                            local.push((i, Self::answer(snapshot, &mut ws, &requests[i])));
                        }
                        self.pool.checkin(ws);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect()
        });

        let mut answers: Vec<Option<Result<QueryResponse>>> =
            (0..requests.len()).map(|_| None).collect();
        for (i, answer) in per_worker.into_iter().flatten() {
            answers[i] = Some(answer);
        }
        answers
            .into_iter()
            .map(|a| a.expect("every request is answered exactly once"))
            .collect()
    }

    /// Dispatch one request onto the right snapshot entry point.
    fn answer(
        snapshot: &IndexSnapshot,
        ws: &mut SnapshotWorkspace,
        request: &QueryRequest,
    ) -> Result<QueryResponse> {
        match request {
            QueryRequest::InDatabase { node, k } => Ok(QueryResponse::InDatabase(
                snapshot.query_by_id_in(ws, *node, *k)?,
            )),
            QueryRequest::OutOfSample { feature, k } => Ok(QueryResponse::OutOfSample(Box::new(
                snapshot.query_by_feature_in(ws, feature, *k)?,
            ))),
        }
    }
}
