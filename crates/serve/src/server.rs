//! The [`QueryServer`]: a worker pool over an epoch-versioned snapshot.
//!
//! Concurrency model: queries run against an immutable
//! [`IndexSnapshot`](mogul_core::update::IndexSnapshot) shared behind an
//! `Arc`, so workers never lock on the per-query hot path. The snapshot
//! itself sits in an [`RwLock<Arc<…>>`]: readers clone the `Arc` (one
//! uncontended read-lock + refcount bump per dispatch — no allocation),
//! writers swap in a new `Arc` ([`QueryServer::install_snapshot`]). In-flight
//! queries keep the `Arc` they started with, so a swap is zero-downtime:
//! old-epoch queries drain on the old snapshot while new queries see the new
//! one. Per-worker scratch workspaces are recycled across batches through a
//! small checkout/checkin pool guarded by a [`Mutex`] touched exactly twice
//! per worker per batch. Batch items are handed out through an atomic
//! cursor, so workers self-balance.
//!
//! Every entry point funnels through the canonical
//! [`QueryRequest`]/[`QueryResponse`] vocabulary and answers failures with
//! the typed [`ServeError`](crate::ServeError) contract: requests are
//! [validated at admission](QueryRequest::validate) before they touch the
//! solve path.

use crate::error::{ServeError, ServeResult};
use crate::options::{Dispatch, ServeOptions};
use crate::request::{QueryRequest, QueryResponse};
use mogul_core::update::{IndexSnapshot, SnapshotWorkspace};
use mogul_core::{OutOfSampleIndex, OutOfSampleResult, PersistError, RetrievalEngine};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread;

/// Recycles per-worker scratch workspaces across batches so the hot
/// substitution/pruning path allocates nothing after warm-up.
///
/// The pool retains at most `cap` workspaces: a transient spike of
/// concurrent batches checks out extra (freshly allocated) workspaces, but
/// the surplus is dropped on checkin instead of pinning index-sized buffers
/// for the server's lifetime.
#[derive(Debug)]
struct WorkspacePool {
    stack: Mutex<Vec<SnapshotWorkspace>>,
    cap: usize,
}

impl WorkspacePool {
    fn with_capacity(cap: usize) -> Self {
        WorkspacePool {
            stack: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn checkout(&self) -> SnapshotWorkspace {
        self.stack
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn checkin(&self, ws: SnapshotWorkspace) {
        let mut stack = self.stack.lock().unwrap_or_else(PoisonError::into_inner);
        if stack.len() < self.cap {
            stack.push(ws);
        }
    }
}

/// A thread-safe query server over an epoch-versioned, `Arc`-shared
/// [`IndexSnapshot`].
///
/// The canonical entry points are [`QueryServer::query`] (one
/// [`QueryRequest`] of either kind) and [`QueryServer::serve_batch`] (a
/// mixed batch); [`QueryServer::query_by_id`] and
/// [`QueryServer::query_by_feature`] are thin documented conveniences over
/// them. The server is itself `Send + Sync`: any number of threads may
/// submit batches concurrently, each dispatch spawning scoped workers that
/// die with the call (no background threads, no channels, no extra
/// dependencies). Answers are bit-identical to the sequential
/// [`RetrievalEngine`] paths; failures use the typed
/// [`ServeError`](crate::ServeError) contract shared with the network front
/// door ([`crate::net`]).
///
/// When the collection changes, a writer (see
/// [`IndexWriter`](crate::IndexWriter)) produces the next snapshot off the
/// hot path and publishes it with [`QueryServer::install_snapshot`]; each
/// batch reads its snapshot exactly once, so every batch observes one
/// consistent epoch.
///
/// ```
/// use mogul_core::RetrievalEngine;
/// use mogul_serve::{QueryRequest, QueryServer, ServeOptions};
///
/// // Twelve items along a line, then a server with two workers.
/// let features: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 0.0]).collect();
/// let engine = RetrievalEngine::builder().knn_k(3).build(features)?;
/// let options = ServeOptions::builder().workers(2).build()?;
/// let server = QueryServer::from_engine(engine, options);
///
/// // One batch may mix in-database and out-of-sample requests.
/// let answers = server.serve_batch(&[
///     QueryRequest::in_database(0, 3),
///     QueryRequest::out_of_sample(vec![2.5, 0.0], 3),
/// ]);
/// for answer in &answers {
///     assert_eq!(answer.as_ref().unwrap().top_k().len(), 3);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct QueryServer {
    state: RwLock<Arc<IndexSnapshot>>,
    workers: usize,
    dispatch: Dispatch,
    pool: WorkspacePool,
}

/// One unit of work a batch worker claims: `len == 1` is a scalar request,
/// `len > 1` a contiguous panel of compatible requests (same kind, same `k`)
/// answered through the batched multi-RHS engine.
#[derive(Debug, Clone, Copy)]
struct Job {
    start: usize,
    len: usize,
}

impl QueryServer {
    /// Build a server over an already-shared immutable index (wrapped as an
    /// epoch-0 snapshot with identity item ids; the `Arc` may also be held
    /// by other servers or by non-serving code).
    pub fn new(index: Arc<OutOfSampleIndex>, options: ServeOptions) -> Self {
        QueryServer::from_snapshot(Arc::new(IndexSnapshot::wrap(index)), options)
    }

    /// Build a server by taking over a [`RetrievalEngine`]'s index.
    pub fn from_engine(engine: RetrievalEngine, options: ServeOptions) -> Self {
        QueryServer::new(Arc::new(engine.into_out_of_sample()), options)
    }

    /// Warm-start a server from an index file written by
    /// [`mogul_core::persist`] — the cold-start path: the factorization,
    /// ordering and pruning bounds are reconstructed directly from the file,
    /// with **no precompute** (no k-NN construction, no clustering, no
    /// factorization). Works for both serveable flavors: an `index` file
    /// becomes an epoch-0 snapshot with identity ids; an `updatable` file
    /// restores its persisted epoch and stable-id mapping, so item ids
    /// handed out before the save keep resolving after the restart.
    ///
    /// Answers are bit-identical to a server over the index that was saved.
    pub fn warm_start(
        path: impl AsRef<std::path::Path>,
        options: ServeOptions,
    ) -> std::result::Result<Self, PersistError> {
        Ok(QueryServer::from_snapshot(
            mogul_core::persist::load_serving(path)?,
            options,
        ))
    }

    /// Warm-start with **crash recovery**: load an updatable-index
    /// checkpoint, then replay its write-ahead log over it (see
    /// [`mogul_core::wal`]), landing on the exact epoch the crashed writer
    /// last acknowledged — including the corrected epochs a checkpoint
    /// alone would lose. Answers are bit-identical to the uncrashed
    /// writer's at that epoch.
    ///
    /// This is the **read-replica** flavor: nothing on disk is modified
    /// (even a torn tail is only skipped, not truncated) and no writer is
    /// stood up. A process that will keep applying updates should use
    /// [`IndexWriter::warm_start_durable`](crate::IndexWriter::warm_start_durable)
    /// instead, which re-opens the log for appending.
    pub fn warm_start_replay(
        checkpoint: impl AsRef<std::path::Path>,
        wal_dir: impl AsRef<std::path::Path>,
        options: ServeOptions,
    ) -> std::result::Result<Self, mogul_core::wal::WalError> {
        let mut index = mogul_core::persist::load_updatable(checkpoint.as_ref())?;
        let (records, report) = mogul_core::wal::read_log(wal_dir)?;
        if index.epoch() > report.last_epoch {
            return Err(mogul_core::wal::WalError::EpochGap {
                expected: index.epoch(),
                found: report.last_epoch,
            });
        }
        mogul_core::wal::replay(&mut index, &records)?;
        Ok(QueryServer::from_snapshot(index.snapshot(), options))
    }

    /// Build a server over an existing snapshot (e.g. the current epoch of
    /// an [`UpdatableIndex`](mogul_core::update::UpdatableIndex)).
    pub fn from_snapshot(snapshot: Arc<IndexSnapshot>, options: ServeOptions) -> Self {
        let workers = options.resolve_workers();
        QueryServer {
            state: RwLock::new(snapshot),
            workers,
            dispatch: options.dispatch(),
            // One retained workspace per worker covers the steady state; a
            // spike of concurrent batches allocates extras and drops them.
            pool: WorkspacePool::with_capacity(workers),
        }
    }

    /// The snapshot new queries are answered from (cheap `Arc` clone; the
    /// returned snapshot stays valid and queryable even after later swaps).
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&self.state.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Epoch of the currently installed snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Atomically publish a new snapshot and return the previous one.
    ///
    /// Queries dispatched before the swap finish on the old snapshot;
    /// queries dispatched after it see the new one. Nothing blocks: the
    /// write lock is held only for the pointer swap.
    pub fn install_snapshot(&self, next: Arc<IndexSnapshot>) -> Arc<IndexSnapshot> {
        let mut slot = self.state.write().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, next)
    }

    /// Number of worker threads a batch dispatch may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of live items in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// `true` when the current snapshot holds zero items (never constructed
    /// so).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Answer one request of either kind on the calling thread — the
    /// canonical single-query entry point. The request is validated at
    /// admission ([`QueryRequest::validate`]); a malformed request returns
    /// [`ServeError::BadRequest`](crate::ServeError::BadRequest) without
    /// touching the solve path.
    pub fn query(&self, request: &QueryRequest) -> ServeResult<QueryResponse> {
        let snapshot = self.snapshot();
        request.validate(&snapshot)?;
        let mut ws = self.pool.checkout();
        let result = Self::answer(&snapshot, &mut ws, request);
        self.pool.checkin(ws);
        result
    }

    /// Top-k for an item already in the database, by stable item id (the
    /// item itself is excluded from the result).
    ///
    /// Thin convenience over [`QueryServer::query`] with a
    /// [`QueryRequest::InDatabase`] request.
    pub fn query_by_id(&self, item: usize, k: usize) -> ServeResult<mogul_core::TopKResult> {
        match self.query(&QueryRequest::in_database(item, k))? {
            QueryResponse::InDatabase(top_k) => Ok(top_k),
            QueryResponse::OutOfSample(_) => unreachable!("in-database request"),
        }
    }

    /// Top-k for an arbitrary feature vector (out-of-sample query).
    ///
    /// Thin convenience over [`QueryServer::query`] with a
    /// [`QueryRequest::OutOfSample`] request (the feature is borrowed, not
    /// copied: the request is assembled only after validation would pass
    /// anyway, so the clone is one allocation per call).
    pub fn query_by_feature(&self, feature: &[f64], k: usize) -> ServeResult<OutOfSampleResult> {
        match self.query(&QueryRequest::out_of_sample(feature.to_vec(), k))? {
            QueryResponse::OutOfSample(result) => Ok(*result),
            QueryResponse::InDatabase(_) => unreachable!("out-of-sample request"),
        }
    }

    /// Answer a batch of (possibly mixed) requests, preserving order:
    /// `answers[i]` belongs to `requests[i]`. Failures are per-request — one
    /// invalid request never poisons the rest of the batch. Each request is
    /// validated at admission; invalid requests receive their
    /// [`ServeError::BadRequest`](crate::ServeError::BadRequest) without
    /// executing, and never join a panel.
    ///
    /// The batch is first cut into **jobs**: contiguous runs of compatible
    /// requests (same kind, same `k`) become panels of up to
    /// [`mogul_core::PANEL_WIDTH`] requests answered through the batched
    /// multi-RHS engine; singletons (and everything, under
    /// [`Dispatch::Scalar`]) take the scalar path. A panel whose batched
    /// call fails re-runs its requests individually, so error reporting
    /// stays per-request. Answers are bit-identical to scalar dispatch.
    ///
    /// The snapshot is read once per batch, so all answers of one batch come
    /// from one epoch even if a writer swaps mid-batch. Jobs are spread over
    /// `min(workers, jobs)` scoped worker threads through an atomic cursor;
    /// a single-worker server (or a one-job batch) runs inline with no
    /// thread spawned at all. `serve_batch` takes `&self`, so any number of
    /// batches may be in flight concurrently on one server.
    pub fn serve_batch(&self, requests: &[QueryRequest]) -> Vec<ServeResult<QueryResponse>> {
        let snapshot = self.snapshot();
        // Admission: validate every request against the batch's snapshot
        // once, up front. Rejected requests are answered from this table and
        // excluded from panel formation.
        let admission: Vec<Option<ServeError>> = requests
            .iter()
            .map(|r| r.validate(&snapshot).err())
            .collect();
        let jobs = Self::build_jobs(requests, &admission, self.dispatch);
        let workers = self.workers.min(jobs.len()).max(1);
        if workers == 1 {
            let mut ws = self.pool.checkout();
            let mut local = Vec::with_capacity(requests.len());
            for &job in &jobs {
                Self::answer_job(&snapshot, &mut ws, requests, &admission, job, &mut local);
            }
            self.pool.checkin(ws);
            return Self::stitch(local, requests.len());
        }

        // Atomic cursor hands jobs to whichever worker is free next; workers
        // buffer `(index, answer)` pairs locally and the results are
        // stitched back into request order afterwards.
        let next = AtomicUsize::new(0);
        let snapshot = &snapshot;
        let jobs = &jobs;
        let admission = &admission;
        let per_worker: Vec<Vec<(usize, ServeResult<QueryResponse>)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ws = self.pool.checkout();
                        let mut local = Vec::new();
                        loop {
                            let j = next.fetch_add(1, Ordering::Relaxed);
                            if j >= jobs.len() {
                                break;
                            }
                            Self::answer_job(
                                snapshot, &mut ws, requests, admission, jobs[j], &mut local,
                            );
                        }
                        self.pool.checkin(ws);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect()
        });

        Self::stitch(per_worker.into_iter().flatten().collect(), requests.len())
    }

    /// Cut a batch into panel/scalar jobs (see [`QueryServer::serve_batch`]).
    /// Requests that failed admission are always singleton jobs — they are
    /// answered from the admission table and must not drag a healthy panel
    /// onto the scalar fallback path.
    fn build_jobs(
        requests: &[QueryRequest],
        admission: &[Option<ServeError>],
        dispatch: Dispatch,
    ) -> Vec<Job> {
        if dispatch == Dispatch::Scalar {
            return (0..requests.len())
                .map(|start| Job { start, len: 1 })
                .collect();
        }
        let compatible = |a: &QueryRequest, b: &QueryRequest| match (a, b) {
            (QueryRequest::InDatabase { k: ka, .. }, QueryRequest::InDatabase { k: kb, .. }) => {
                ka == kb
            }
            (QueryRequest::OutOfSample { k: ka, .. }, QueryRequest::OutOfSample { k: kb, .. }) => {
                ka == kb
            }
            _ => false,
        };
        let mut jobs = Vec::new();
        let mut start = 0usize;
        while start < requests.len() {
            let mut end = start + 1;
            if admission[start].is_none() {
                while end < requests.len()
                    && end - start < mogul_core::PANEL_WIDTH
                    && admission[end].is_none()
                    && compatible(&requests[start], &requests[end])
                {
                    end += 1;
                }
            }
            jobs.push(Job {
                start,
                len: end - start,
            });
            start = end;
        }
        jobs
    }

    /// Answer one job, appending `(request index, answer)` pairs to `local`.
    fn answer_job(
        snapshot: &IndexSnapshot,
        ws: &mut SnapshotWorkspace,
        requests: &[QueryRequest],
        admission: &[Option<ServeError>],
        job: Job,
        local: &mut Vec<(usize, ServeResult<QueryResponse>)>,
    ) {
        if job.len == 1 {
            let answer = match &admission[job.start] {
                Some(err) => Err(err.clone()),
                None => Self::answer(snapshot, ws, &requests[job.start]),
            };
            local.push((job.start, answer));
            return;
        }
        let slice = &requests[job.start..job.start + job.len];
        let batched = match &slice[0] {
            QueryRequest::InDatabase { k, .. } => {
                let ids: Vec<usize> = slice
                    .iter()
                    .map(|r| match r {
                        QueryRequest::InDatabase { node, .. } => *node,
                        QueryRequest::OutOfSample { .. } => unreachable!("homogeneous job"),
                    })
                    .collect();
                snapshot.query_batch_by_id_in(ws, &ids, *k).map(|results| {
                    results
                        .into_iter()
                        .map(QueryResponse::InDatabase)
                        .collect::<Vec<_>>()
                })
            }
            QueryRequest::OutOfSample { k, .. } => {
                let features: Vec<&[f64]> = slice
                    .iter()
                    .map(|r| match r {
                        QueryRequest::OutOfSample { feature, .. } => feature.as_slice(),
                        QueryRequest::InDatabase { .. } => unreachable!("homogeneous job"),
                    })
                    .collect();
                snapshot
                    .query_batch_by_feature_in(ws, &features, *k)
                    .map(|results| {
                        results
                            .into_iter()
                            .map(|r| QueryResponse::OutOfSample(Box::new(r)))
                            .collect::<Vec<_>>()
                    })
            }
        };
        match batched {
            Ok(answers) => {
                for (offset, answer) in answers.into_iter().enumerate() {
                    local.push((job.start + offset, Ok(answer)));
                }
            }
            // Panels contain only admission-validated requests, but the
            // batched entry points still fail the whole panel on an
            // execution fault; re-run the job's requests individually so
            // each gets its precise per-request result or error.
            Err(_) => {
                for (offset, request) in slice.iter().enumerate() {
                    local.push((job.start + offset, Self::answer(snapshot, ws, request)));
                }
            }
        }
    }

    /// Reassemble `(index, answer)` pairs into request order.
    fn stitch(
        flat: Vec<(usize, ServeResult<QueryResponse>)>,
        len: usize,
    ) -> Vec<ServeResult<QueryResponse>> {
        let mut answers: Vec<Option<ServeResult<QueryResponse>>> = (0..len).map(|_| None).collect();
        for (i, answer) in flat {
            answers[i] = Some(answer);
        }
        answers
            .into_iter()
            .map(|a| a.expect("every request is answered exactly once"))
            .collect()
    }

    /// Dispatch one request onto the right snapshot entry point.
    fn answer(
        snapshot: &IndexSnapshot,
        ws: &mut SnapshotWorkspace,
        request: &QueryRequest,
    ) -> ServeResult<QueryResponse> {
        match request {
            QueryRequest::InDatabase { node, k } => Ok(QueryResponse::InDatabase(
                snapshot.query_by_id_in(ws, *node, *k)?,
            )),
            QueryRequest::OutOfSample { feature, k } => Ok(QueryResponse::OutOfSample(Box::new(
                snapshot.query_by_feature_in(ws, feature, *k)?,
            ))),
        }
    }
}
