//! The one error contract of the serving layer.
//!
//! Every fallible serve entry point — in-process ([`QueryServer`]
//! (crate::QueryServer), [`IndexWriter`](crate::IndexWriter)) and over the
//! wire ([`crate::net`]) — answers with a [`ServeError`], so a library
//! caller and a network client see the same typed failure vocabulary:
//!
//! * **Admission failures** ([`ServeError::BadRequest`]) are detected
//!   *before* a request touches the solve path: `k = 0`, an unknown or
//!   removed item id, a feature vector of the wrong dimension, or
//!   non-finite feature values.
//! * **Load-shedding** ([`ServeError::Overloaded`]) and **drain**
//!   ([`ServeError::Draining`]) are the overload contract of the network
//!   front door: a server past its bounded queue capacity answers with a
//!   typed error immediately instead of letting latency collapse (see
//!   `docs/NETWORKING.md`).
//! * **Index failures** ([`ServeError::Index`]) wrap the underlying
//!   [`CoreError`] for faults that only the solve path itself can detect.
//! * **Configuration failures** ([`ServeError::Config`]) reject invalid
//!   [`ServeOptions`](crate::ServeOptions) at construction time.
//! * **Durability failures** ([`ServeError::Durability`]) reject an update
//!   whose write-ahead-log record could not be made durable; the update is
//!   not applied (see `docs/PERSISTENCE.md`).

use mogul_core::CoreError;
use std::error::Error;
use std::fmt;

/// Convenience alias used by every fallible serving operation.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Errors produced by the serving layer (library and wire alike).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The server's bounded admission queue is full; the request was shed
    /// without being executed. Retry with backoff — the queue bound is what
    /// keeps latency from collapsing under overload.
    Overloaded {
        /// Queue depth observed at admission time.
        queue_depth: usize,
        /// Configured queue capacity
        /// ([`ServeOptions::queue_capacity`](crate::ServeOptions::queue_capacity)).
        queue_capacity: usize,
    },
    /// The server is draining (shutting down gracefully): in-flight requests
    /// finish, new ones are rejected. Reconnect to another replica.
    Draining,
    /// The request failed admission-time validation and was never executed.
    BadRequest {
        /// What was wrong with the request.
        reason: String,
    },
    /// The index rejected the request during execution.
    Index(CoreError),
    /// An invalid configuration was rejected at construction time.
    Config {
        /// What was wrong with the configuration.
        reason: String,
    },
    /// The write-ahead log could not make an update durable (or could not
    /// discard a failed one); the update was **not** applied. The writer
    /// fails closed: an epoch is only ever acknowledged once its record is
    /// on disk. See [`IndexWriter::enable_wal`](crate::IndexWriter::enable_wal).
    Durability {
        /// The underlying [`WalError`](mogul_core::wal::WalError), rendered.
        reason: String,
    },
    /// A degraded scatter-gather could not satisfy the request: either no
    /// probed shard answered at all, or some failed and the caller demanded
    /// completeness (`require_complete`). Retryable — another replica may
    /// hold every shard healthy.
    Incomplete {
        /// Number of probed shards that answered.
        shards_answered: usize,
        /// Number of shards the query probed.
        shards_total: usize,
    },
}

impl ServeError {
    /// Shorthand for a [`ServeError::BadRequest`].
    pub(crate) fn bad_request(reason: impl Into<String>) -> Self {
        ServeError::BadRequest {
            reason: reason.into(),
        }
    }

    /// Shorthand for a [`ServeError::Config`].
    pub(crate) fn config(reason: impl Into<String>) -> Self {
        ServeError::Config {
            reason: reason.into(),
        }
    }

    /// Shorthand for a [`ServeError::Durability`] wrapping a
    /// [`WalError`](mogul_core::wal::WalError).
    pub(crate) fn durability(err: mogul_core::wal::WalError) -> Self {
        ServeError::Durability {
            reason: err.to_string(),
        }
    }

    /// `true` for the variants a client should retry (against this server
    /// after backoff, or against another replica): the two overload-contract
    /// variants plus [`ServeError::Incomplete`], whose failed shards may be
    /// healthy elsewhere. `BadRequest`, `Index`, `Config` and `Durability`
    /// describe the request or the deployment, not transient server state —
    /// retrying them can never succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. } | ServeError::Draining | ServeError::Incomplete { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                queue_capacity,
            } => write!(
                f,
                "overloaded: request shed, admission queue at {queue_depth}/{queue_capacity}"
            ),
            ServeError::Draining => write!(f, "draining: server is shutting down gracefully"),
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Index(err) => write!(f, "index error: {err}"),
            ServeError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            ServeError::Durability { reason } => {
                write!(f, "durability failure, update not applied: {reason}")
            }
            ServeError::Incomplete {
                shards_answered,
                shards_total,
            } => write!(
                f,
                "incomplete answer: only {shards_answered}/{shards_total} probed shards \
                 answered and the request demanded completeness"
            ),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Index(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(err: CoreError) -> Self {
        ServeError::Index(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_variant() {
        let shed = ServeError::Overloaded {
            queue_depth: 128,
            queue_capacity: 128,
        };
        assert!(shed.to_string().contains("128/128"));
        assert!(ServeError::Draining.to_string().contains("draining"));
        assert!(ServeError::bad_request("k must be at least 1")
            .to_string()
            .contains("k must be at least 1"));
        let idx = ServeError::from(CoreError::InvalidInput("boom".into()));
        assert!(idx.to_string().contains("boom"));
        assert!(ServeError::config("queue_capacity must be at least 1")
            .to_string()
            .contains("queue_capacity"));
        let wal = ServeError::durability(mogul_core::wal::WalError::InvalidState("boom".into()));
        assert!(wal.to_string().contains("durability failure"));
        assert!(wal.to_string().contains("boom"));
        let partial = ServeError::Incomplete {
            shards_answered: 2,
            shards_total: 4,
        };
        assert!(partial.to_string().contains("2/4"));
    }

    #[test]
    fn retryability_follows_the_overload_contract() {
        assert!(ServeError::Overloaded {
            queue_depth: 1,
            queue_capacity: 1
        }
        .is_retryable());
        assert!(ServeError::Draining.is_retryable());
        assert!(ServeError::Incomplete {
            shards_answered: 0,
            shards_total: 3
        }
        .is_retryable());
        assert!(!ServeError::bad_request("nope").is_retryable());
        assert!(!ServeError::from(CoreError::InvalidInput("x".into())).is_retryable());
    }

    #[test]
    fn source_exposes_the_core_error() {
        let err = ServeError::from(CoreError::InvalidInput("inner".into()));
        assert!(err.source().is_some());
        assert!(ServeError::Draining.source().is_none());
    }
}
