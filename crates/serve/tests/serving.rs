//! Equivalence and concurrency coverage of the serving layer.
//!
//! The contract under test: concurrency changes throughput, never results.
//! Every answer produced by a multi-worker [`QueryServer`] — under
//! concurrent load, with recycled workspaces, in Mogul and MogulE (exact)
//! mode alike — must be **bit-identical** to the sequential
//! [`RetrievalEngine`] answer for the same request.

use mogul_core::{OutOfSampleResult, RetrievalEngine};
use mogul_data::coil::{coil_like, CoilLikeConfig};
use mogul_data::Dataset;
use mogul_serve::{Dispatch, QueryRequest, QueryResponse, QueryServer, ServeError, ServeOptions};
use std::sync::Arc;
use std::thread;

/// A COIL-like database plus held-out query vectors.
fn dataset() -> (Dataset, Vec<(Vec<f64>, usize)>) {
    let data = coil_like(&CoilLikeConfig {
        num_objects: 6,
        poses_per_object: 16,
        dim: 12,
        noise: 0.02,
        ..Default::default()
    })
    .unwrap();
    data.split_out_queries(6, 11).unwrap()
}

/// A mixed batch alternating in-database and out-of-sample requests with
/// varying k.
fn mixed_batch(db: &Dataset, queries: &[(Vec<f64>, usize)]) -> Vec<QueryRequest> {
    let mut batch = Vec::new();
    for (i, (feature, _)) in queries.iter().enumerate() {
        batch.push(QueryRequest::in_database(i * 7 % db.len(), 3 + i % 4));
        batch.push(QueryRequest::out_of_sample(feature.clone(), 3 + i % 4));
    }
    batch
}

/// The sequential reference answer for one request.
fn sequential_answer(engine: &RetrievalEngine, request: &QueryRequest) -> SequentialAnswer {
    match request {
        QueryRequest::InDatabase { node, k } => {
            SequentialAnswer::InDatabase(engine.query_by_id(*node, *k).unwrap())
        }
        QueryRequest::OutOfSample { feature, k } => {
            SequentialAnswer::OutOfSample(engine.query_by_feature(feature, *k).unwrap())
        }
    }
}

enum SequentialAnswer {
    InDatabase(mogul_core::TopKResult),
    OutOfSample(OutOfSampleResult),
}

/// Bit-exact comparison (scores compared with `==`, not a tolerance).
fn assert_matches(expected: &SequentialAnswer, got: &QueryResponse) {
    match (expected, got) {
        (SequentialAnswer::InDatabase(want), QueryResponse::InDatabase(have)) => {
            assert_eq!(want, have);
        }
        (SequentialAnswer::OutOfSample(want), QueryResponse::OutOfSample(have)) => {
            assert_eq!(want.top_k, have.top_k);
            assert_eq!(want.neighbors, have.neighbors);
            assert_eq!(want.stats, have.stats);
        }
        _ => panic!("response kind does not match the request kind"),
    }
}

#[test]
fn concurrent_batches_are_bit_identical_to_sequential_engine() {
    let (db, queries) = dataset();
    for exact in [false, true] {
        let mut builder = RetrievalEngine::builder();
        if exact {
            builder = builder.exact_ranking();
        }
        let engine = builder.build(db.features().to_vec()).unwrap();
        let batch = mixed_batch(&db, &queries);
        let expected: Vec<SequentialAnswer> = batch
            .iter()
            .map(|r| sequential_answer(&engine, r))
            .collect();

        let server = QueryServer::from_engine(engine, ServeOptions::with_workers(4));
        // Serve the same batch twice: the second pass runs entirely on
        // recycled (warm) workspaces and must not change a single bit.
        for pass in 0..2 {
            let answers = server.serve_batch(&batch);
            assert_eq!(answers.len(), batch.len());
            for (i, answer) in answers.iter().enumerate() {
                let got = answer
                    .as_ref()
                    .unwrap_or_else(|e| panic!("pass {pass}, request {i} failed: {e}"));
                assert_matches(&expected[i], got);
            }
        }
    }
}

#[test]
fn more_inflight_batches_than_workers() {
    // 8 submitting threads × 3 rounds against a 2-worker server: far more
    // in-flight batches than workers, exercising the workspace pool and the
    // scoped-dispatch path under real contention.
    let (db, queries) = dataset();
    let engine = RetrievalEngine::builder()
        .build(db.features().to_vec())
        .unwrap();
    let batch = mixed_batch(&db, &queries);
    let expected: Vec<SequentialAnswer> = batch
        .iter()
        .map(|r| sequential_answer(&engine, r))
        .collect();

    let server = Arc::new(QueryServer::from_engine(
        engine,
        ServeOptions::with_workers(2),
    ));
    thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..3 {
                    let answers = server.serve_batch(&batch);
                    for (i, answer) in answers.iter().enumerate() {
                        assert_matches(&expected[i], answer.as_ref().unwrap());
                    }
                }
            });
        }
    });
}

#[test]
fn per_request_errors_do_not_poison_the_batch() {
    let (db, queries) = dataset();
    let engine = RetrievalEngine::builder()
        .build(db.features().to_vec())
        .unwrap();
    let server = QueryServer::from_engine(engine, ServeOptions::with_workers(3));

    let batch = vec![
        QueryRequest::in_database(0, 5),
        QueryRequest::in_database(db.len() + 10, 5), // node out of range
        QueryRequest::out_of_sample(vec![1.0, 2.0], 5), // wrong dimensionality
        QueryRequest::out_of_sample(queries[0].0.clone(), 5),
        QueryRequest::in_database(1, 0), // k = 0
    ];
    let answers = server.serve_batch(&batch);
    assert!(answers[0].is_ok());
    assert!(answers[1].is_err());
    assert!(answers[2].is_err());
    assert!(answers[3].is_ok());
    assert!(answers[4].is_err());
}

#[test]
fn single_query_paths_match_the_engine() {
    let (db, queries) = dataset();
    let engine = RetrievalEngine::builder()
        .build(db.features().to_vec())
        .unwrap();
    let expected_id = engine.query_by_id(4, 6).unwrap();
    let expected_oos = engine.query_by_feature(&queries[2].0, 6).unwrap();

    // Two servers may share one index behind the same `Arc`.
    let index = Arc::new(engine.into_out_of_sample());
    let server_a = QueryServer::new(Arc::clone(&index), ServeOptions::default());
    let server_b = QueryServer::new(index, ServeOptions::with_workers(1));

    for server in [&server_a, &server_b] {
        assert_eq!(server.len(), db.len());
        assert!(!server.is_empty());
        assert!(server.workers() >= 1);
        assert_eq!(server.query_by_id(4, 6).unwrap(), expected_id);
        let oos = server.query_by_feature(&queries[2].0, 6).unwrap();
        assert_eq!(oos.top_k, expected_oos.top_k);
        assert_eq!(oos.neighbors, expected_oos.neighbors);

        let response = server.query(&QueryRequest::in_database(4, 6)).unwrap();
        assert_eq!(response.top_k(), &expected_id);
        assert_eq!(response.clone().into_top_k(), expected_id);
        assert!(response.out_of_sample().is_none());
        let response = server
            .query(&QueryRequest::out_of_sample(queries[2].0.clone(), 6))
            .unwrap();
        assert_eq!(response.top_k(), &expected_oos.top_k);
        assert!(response.out_of_sample().is_some());
    }
}

#[test]
fn panel_dispatch_matches_scalar_dispatch_on_homogeneous_runs() {
    // Homogeneous runs are where panels actually form (mixed batches with
    // alternating kinds degrade to scalar jobs); the panel and scalar
    // dispatchers must agree bit for bit, for Mogul and MogulE alike.
    let (db, queries) = dataset();
    for exact in [false, true] {
        let mut builder = RetrievalEngine::builder();
        if exact {
            builder = builder.exact_ranking();
        }
        let engine = builder.build(db.features().to_vec()).unwrap();
        let index = Arc::new(engine.into_out_of_sample());

        // A long in-database run, a long out-of-sample run, a k change in
        // the middle of a run (splits the panel), and a ragged tail.
        let mut batch = Vec::new();
        for i in 0..21 {
            batch.push(QueryRequest::in_database(i * 5 % db.len(), 4));
        }
        for (feature, _) in queries.iter().take(11) {
            batch.push(QueryRequest::out_of_sample(feature.clone(), 6));
        }
        batch.push(QueryRequest::in_database(1, 4));
        batch.push(QueryRequest::in_database(2, 9));
        batch.push(QueryRequest::in_database(3, 4));

        let panel = QueryServer::new(Arc::clone(&index), ServeOptions::with_workers(1));
        let scalar = QueryServer::new(
            Arc::clone(&index),
            ServeOptions::builder()
                .workers(1)
                .dispatch(Dispatch::Scalar)
                .build()
                .expect("valid options"),
        );
        let threaded = QueryServer::new(Arc::clone(&index), ServeOptions::with_workers(3));
        let from_panel = panel.serve_batch(&batch);
        let from_scalar = scalar.serve_batch(&batch);
        let from_threads = threaded.serve_batch(&batch);
        for i in 0..batch.len() {
            let want = from_scalar[i].as_ref().unwrap();
            for got in [&from_panel[i], &from_threads[i]] {
                let got = got.as_ref().unwrap();
                match (want, got) {
                    (QueryResponse::InDatabase(a), QueryResponse::InDatabase(b)) => {
                        assert_eq!(a, b, "request {i} (exact={exact})")
                    }
                    (QueryResponse::OutOfSample(a), QueryResponse::OutOfSample(b)) => {
                        assert_eq!(a.top_k, b.top_k, "request {i} (exact={exact})");
                        assert_eq!(a.neighbors, b.neighbors);
                        assert_eq!(a.stats, b.stats);
                    }
                    _ => panic!("response kinds diverge at {i}"),
                }
            }
        }
    }
}

#[test]
fn panel_jobs_keep_per_request_error_isolation() {
    // An invalid request in the middle of a compatible run makes the panel
    // call fail; the job must fall back to scalar execution so its healthy
    // neighbours still get answers.
    let (db, _) = dataset();
    let engine = RetrievalEngine::builder()
        .build(db.features().to_vec())
        .unwrap();
    let server = QueryServer::from_engine(engine, ServeOptions::with_workers(1));
    let batch = vec![
        QueryRequest::in_database(0, 5),
        QueryRequest::in_database(1, 5),
        QueryRequest::in_database(db.len() + 7, 5), // invalid, same panel
        QueryRequest::in_database(2, 5),
        QueryRequest::in_database(3, 5),
    ];
    let answers = server.serve_batch(&batch);
    assert!(answers[0].is_ok());
    assert!(answers[1].is_ok());
    assert!(
        matches!(answers[2], Err(ServeError::BadRequest { .. })),
        "an unknown id must be rejected at admission with a typed BadRequest, got {:?}",
        answers[2]
    );
    assert!(answers[3].is_ok());
    assert!(answers[4].is_ok());
}

#[test]
fn admission_validation_rejects_malformed_requests_with_typed_errors() {
    let (db, _) = dataset();
    let engine = RetrievalEngine::builder()
        .build(db.features().to_vec())
        .unwrap();
    let dim = db.features()[0].len();
    let server = QueryServer::from_engine(engine, ServeOptions::with_workers(1));
    // k = 0, unknown id, wrong dimension, and a non-finite component are all
    // BadRequest — and none of them reach the solve path.
    for request in [
        QueryRequest::in_database(0, 0),
        QueryRequest::in_database(db.len() + 1, 5),
        QueryRequest::out_of_sample(vec![0.25; dim + 3], 5),
        QueryRequest::out_of_sample(
            {
                let mut f = vec![0.25; dim];
                f[dim / 2] = f64::NAN;
                f
            },
            5,
        ),
    ] {
        match server.query(&request) {
            Err(ServeError::BadRequest { reason }) => {
                assert!(!reason.is_empty(), "reason must name the violation")
            }
            other => panic!("expected BadRequest for {request:?}, got {other:?}"),
        }
    }
    // Retryability is part of the contract: overload sheds are retryable,
    // client mistakes are not.
    assert!(ServeError::Overloaded {
        queue_depth: 4,
        queue_capacity: 4
    }
    .is_retryable());
    assert!(ServeError::Draining.is_retryable());
    assert!(!ServeError::BadRequest {
        reason: "nope".into()
    }
    .is_retryable());
}

#[test]
fn empty_batch_is_a_no_op() {
    let (db, _) = dataset();
    let engine = RetrievalEngine::builder()
        .build(db.features().to_vec())
        .unwrap();
    let server = QueryServer::from_engine(engine, ServeOptions::with_workers(4));
    assert!(server.serve_batch(&[]).is_empty());
}
