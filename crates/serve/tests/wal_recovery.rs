//! Crash recovery, proven the honest way: a child process applies a
//! deterministic stream of updates with the WAL enabled and is SIGKILLed
//! mid-stream; the parent recovers from checkpoint + log and asserts the
//! recovered server answers **bit-identically** to a writer that never
//! crashed, at the exact epoch the child last acknowledged (or one further,
//! when the kill landed between an fsync'd append and its in-memory apply —
//! either way an epoch the append-before-apply protocol committed to).
//!
//! Also here: the checkpoint-rotation crash window (crash after rotation,
//! before stale-segment GC, must not double-apply), end-to-end torn-tail
//! recovery, and end-to-end refusal of mid-log corruption.

use mogul_core::persist;
use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy, UpdatableIndex};
use mogul_core::wal::{self, Wal, WalError, WalOp, WalSync};
use mogul_serve::{IndexWriter, QueryServer, ServeOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const BASE_ITEMS: usize = 30;
const CHILD_UPDATES: usize = 60;
const CHILD_DIR_ENV: &str = "MOGUL_WAL_CHILD_DIR";
const CHILD_EXACT_ENV: &str = "MOGUL_WAL_CHILD_EXACT";

fn features() -> Vec<Vec<f64>> {
    (0..BASE_ITEMS)
        .map(|i| {
            let blob = (i % 3) as f64;
            vec![
                blob * 6.0 + ((i * 13) % 7) as f64 / 7.0,
                blob * 6.0 + ((i * 29) % 11) as f64 / 11.0,
            ]
        })
        .collect()
}

fn build_index(exact: bool) -> UpdatableIndex {
    let builder = IndexBuilder::new()
        .knn_k(3)
        .rebuild_policy(RebuildPolicy::never());
    let builder = if exact {
        builder.exact_ranking()
    } else {
        builder
    };
    builder.build(features()).unwrap()
}

/// The deterministic update stream shared by the child writer and the
/// parent's never-crashed reference: a seeded LCG decides insert vs remove,
/// and stable-id allocation is simulated so removals always target a live
/// id. Both processes compute the identical sequence.
fn delta_sequence(n: usize) -> Vec<IndexDelta> {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut step = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut live: Vec<usize> = (0..BASE_ITEMS).collect();
    let mut next_id = BASE_ITEMS;
    let mut deltas = Vec::with_capacity(n);
    for _ in 0..n {
        let mut delta = IndexDelta::new();
        if live.len() >= 15 && step() % 3 == 0 {
            let victim = live.swap_remove((step() as usize) % live.len());
            delta.remove(victim);
        } else {
            let x = (step() % 1000) as f64 / 250.0;
            let y = (step() % 1000) as f64 / 250.0;
            delta.insert(vec![x + 3.0, y + 3.0]);
            live.push(next_id);
            next_id += 1;
        }
        deltas.push(delta);
    }
    deltas
}

fn temp_dir(name: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mogul-wal-recovery-{}-{}-{name}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Assert two servers answer identically — ranks, scores and stats — for
/// every live item.
fn assert_answers_match(a: &QueryServer, b: &QueryServer, context: &str) {
    assert_eq!(a.epoch(), b.epoch(), "{context}: epoch diverged");
    assert_eq!(a.len(), b.len(), "{context}: item count diverged");
    let ids = a.snapshot().item_ids();
    assert_eq!(ids, b.snapshot().item_ids(), "{context}: id space diverged");
    for id in ids {
        assert_eq!(
            a.query_by_id(id, 6).unwrap(),
            b.query_by_id(id, 6).unwrap(),
            "{context}: answers diverged at id {id}"
        );
    }
}

/// A writer that reached `epoch` without ever crashing, for comparison
/// against recovery.
fn uncrashed_reference(exact: bool, epoch: u64) -> (std::sync::Arc<QueryServer>, IndexWriter) {
    let (server, writer) = IndexWriter::new(build_index(exact), ServeOptions::with_workers(1));
    for delta in delta_sequence(CHILD_UPDATES).iter().take(epoch as usize) {
        writer.apply_delta(delta).unwrap();
    }
    assert_eq!(server.epoch(), epoch);
    (server, writer)
}

// ---------------------------------------------------------------------------
// Kill-recovery end to end
// ---------------------------------------------------------------------------

/// The child half of the kill-recovery test. Not a test on its own: it is
/// `#[ignore]`d and returns immediately unless the parent set the
/// environment up, and the parent SIGKILLs it mid-stream.
#[test]
#[ignore = "child process body of kill_recovery_matches_an_uncrashed_writer"]
fn wal_child_writer_process() {
    let Some(dir) = std::env::var_os(CHILD_DIR_ENV) else {
        return;
    };
    let dir = PathBuf::from(dir);
    let exact = std::env::var(CHILD_EXACT_ENV).as_deref() == Ok("1");

    let (_server, writer) = IndexWriter::new(build_index(exact), ServeOptions::with_workers(1));
    writer.set_checkpoint(Some(dir.join("ckpt.mog1")));
    writer
        .enable_wal(dir.join("wal"), WalSync::EveryRecord)
        .unwrap();

    // Acknowledge each applied epoch to the parent through a side file,
    // exactly like acking a client: only after `apply_delta` returned.
    let mut ack = std::fs::File::create(dir.join("acked")).unwrap();
    for delta in delta_sequence(CHILD_UPDATES) {
        let report = writer.apply_delta(&delta).unwrap();
        ack.write_all(format!("{}\n", report.epoch).as_bytes())
            .unwrap();
    }
}

fn last_acked(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines().last()?.trim().parse().ok()
}

#[test]
fn kill_recovery_matches_an_uncrashed_writer() {
    // Three crash points per flavor spread across the stream; the kill is
    // asynchronous, so the byte-level crash offset inside the segment
    // varies run to run — which is the point.
    for (target, exact) in [(5u64, false), (18, true), (37, false)] {
        let dir = temp_dir(if exact { "kill-exact" } else { "kill-inc" });

        let exe = std::env::current_exe().unwrap();
        let mut child = Command::new(&exe)
            .args(["--exact", "--ignored", "wal_child_writer_process"])
            .env(CHILD_DIR_ENV, &dir)
            .env(CHILD_EXACT_ENV, if exact { "1" } else { "0" })
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();

        // Wait for the child to acknowledge at least `target` epochs, then
        // kill it dead (SIGKILL on unix: no destructors, no flushes).
        let ack_path = dir.join("acked");
        let deadline = Instant::now() + Duration::from_secs(60);
        let acked = loop {
            if let Some(acked) = last_acked(&ack_path) {
                if acked >= target {
                    break acked;
                }
            }
            if let Some(status) = child.try_wait().unwrap() {
                // The child finished everything before we could kill it —
                // the recovery assertions below still hold at full length.
                assert!(status.success(), "child writer failed: {status}");
                break last_acked(&ack_path).expect("child exited without acking");
            }
            assert!(
                Instant::now() < deadline,
                "child never reached epoch {target}"
            );
            std::thread::sleep(Duration::from_millis(2));
        };
        let _ = child.kill();
        let _ = child.wait();

        // Recover. The recovered epoch is the last one the log made
        // durable: never behind the last client-visible ack, at most one
        // ahead of it (an append that was fsync'd but whose ack the kill
        // pre-empted).
        let (server, writer, outcome) = IndexWriter::warm_start_durable(
            dir.join("ckpt.mog1"),
            dir.join("wal"),
            WalSync::EveryRecord,
            ServeOptions::with_workers(1),
        )
        .unwrap();
        let recovered = server.epoch();
        assert!(
            recovered >= acked,
            "recovery lost acknowledged epochs: acked {acked}, recovered {recovered}"
        );
        assert!(
            recovered <= CHILD_UPDATES as u64,
            "recovered past the stream: {recovered}"
        );
        assert_eq!(outcome.log.last_epoch, recovered);
        assert_eq!(
            outcome.replay.applied as u64,
            recovered - outcome.replay.skipped as u64
        );

        // Bit-identical to the writer that never crashed.
        let (reference, _reference_writer) = uncrashed_reference(exact, recovered);
        assert_answers_match(&server, &reference, "after kill-recovery");

        // And the recovered writer keeps going: the next update appends to
        // the recovered log and lands on the next epoch.
        let mut delta = IndexDelta::new();
        delta.insert(vec![1.25, 4.5]);
        let report = writer.apply_delta(&delta).unwrap();
        assert_eq!(report.epoch, recovered + 1);
        assert!(writer.wal_enabled());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ---------------------------------------------------------------------------
// The checkpoint-rotation crash window
// ---------------------------------------------------------------------------

#[test]
fn crash_between_rotation_and_gc_does_not_double_apply() {
    // Rotation's crash window: the new segment is created and fsync'd
    // *before* stale segments are unlinked, so a crash in between leaves
    // both on disk — every record in the stale segment is already inside
    // the checkpoint. Recovery must skip them (epoch watermark), not
    // re-apply them.
    let dir = temp_dir("rotation-window");
    let ckpt = dir.join("ckpt.mog1");
    let wal_dir = dir.join("wal");

    let mut index = build_index(false);
    let mut log = Wal::create(&wal_dir, index.epoch(), WalSync::EveryRecord).unwrap();
    let deltas = delta_sequence(3);
    for (i, delta) in deltas.iter().enumerate() {
        log.append(i as u64 + 1, &WalOp::Delta(delta.clone()))
            .unwrap();
        index.apply(delta).unwrap();
    }
    // Checkpoint protocol: log the rebuild, rebuild, save, rotate.
    log.append(4, &WalOp::Rebuild).unwrap();
    index.rebuild().unwrap();
    assert_eq!(index.epoch(), 4);
    persist::save_updatable(&index, &ckpt).unwrap();

    // Freeze the pre-rotation segment (epochs 1..=4), rotate, then put the
    // stale segment back: disk now looks exactly like a crash after the
    // new segment was durable but before GC unlinked the old one.
    let stale = log.segment_path().to_path_buf();
    let frozen = dir.join("frozen.bak");
    std::fs::copy(&stale, &frozen).unwrap();
    log.rotate(4).unwrap();
    assert!(
        !stale.exists(),
        "rotation did not collect the stale segment"
    );
    std::fs::copy(&frozen, &stale).unwrap();
    drop(log);

    // Recovery through the serve entry point: all four stale records are
    // at or below the checkpoint watermark and must be skipped.
    let (server, writer, outcome) = IndexWriter::warm_start_durable(
        &ckpt,
        &wal_dir,
        WalSync::EveryRecord,
        ServeOptions::with_workers(1),
    )
    .unwrap();
    assert_eq!(outcome.replay.watermark, 4);
    assert_eq!(outcome.replay.skipped, 4);
    assert_eq!(outcome.replay.applied, 0);
    assert_eq!(server.epoch(), 4);

    // Double application would shrink the collection (remove of a
    // now-absent id) or duplicate inserts; instead the recovered server is
    // bit-identical to the live index.
    let (reference, _w) = IndexWriter::new(index, ServeOptions::with_workers(1));
    assert_answers_match(&server, &reference, "after rotation-window recovery");
    drop(writer);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Torn tails and mid-log corruption, end to end
// ---------------------------------------------------------------------------

/// Build a checkpoint + WAL directory with `n` applied deltas and return
/// the live writer for comparison.
fn durable_writer(dir: &Path, n: usize) -> (std::sync::Arc<QueryServer>, IndexWriter) {
    let (server, writer) = IndexWriter::new(build_index(false), ServeOptions::with_workers(1));
    writer.set_checkpoint(Some(dir.join("ckpt.mog1")));
    writer
        .enable_wal(dir.join("wal"), WalSync::EveryRecord)
        .unwrap();
    for delta in delta_sequence(n) {
        writer.apply_delta(&delta).unwrap();
    }
    (server, writer)
}

#[test]
fn a_torn_tail_is_discarded_and_serving_resumes() {
    let dir = temp_dir("torn-tail");
    let (live, writer) = durable_writer(&dir, 4);
    let segment = writer.wal_segment_path().unwrap();
    drop(writer);

    // Simulate a crash mid-append: half a record's worth of garbage after
    // the last complete record.
    let mut bytes = std::fs::read(&segment).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0x7F; 9]);
    std::fs::write(&segment, &bytes).unwrap();

    let (server, writer, outcome) = IndexWriter::warm_start_durable(
        dir.join("ckpt.mog1"),
        dir.join("wal"),
        WalSync::EveryRecord,
        ServeOptions::with_workers(1),
    )
    .unwrap();
    assert_eq!(outcome.log.truncated_bytes, 9);
    assert_answers_match(&server, &live, "after torn-tail recovery");

    // Recovery truncated the torn bytes, so the next append lands where
    // the garbage was.
    assert_eq!(std::fs::metadata(&segment).unwrap().len(), clean_len as u64);
    let recovered_epoch = server.epoch();
    let mut delta = IndexDelta::new();
    delta.insert(vec![0.9, 5.1]);
    writer.apply_delta(&delta).unwrap();
    assert_eq!(server.epoch(), recovered_epoch + 1);
    let (reread, _) = wal::read_log(dir.join("wal")).unwrap();
    assert_eq!(reread.last().unwrap().epoch, recovered_epoch + 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_log_corruption_refuses_recovery() {
    let dir = temp_dir("mid-log");
    let (_live, writer) = durable_writer(&dir, 4);
    let segment = writer.wal_segment_path().unwrap();
    drop(writer);

    // Flip one bit inside the *first* record: a complete record with a bad
    // checksum is bit rot, not a torn write, and both recovery flavors
    // must refuse rather than replay around it.
    let mut bytes = std::fs::read(&segment).unwrap();
    bytes[30] ^= 0x04;
    std::fs::write(&segment, &bytes).unwrap();

    match IndexWriter::warm_start_durable(
        dir.join("ckpt.mog1"),
        dir.join("wal"),
        WalSync::EveryRecord,
        ServeOptions::with_workers(1),
    ) {
        Err(WalError::ChecksumMismatch { .. }) => {}
        Err(other) => panic!("expected ChecksumMismatch, got {other:?}"),
        Ok(_) => panic!("corrupt log was accepted"),
    }
    match QueryServer::warm_start_replay(
        dir.join("ckpt.mog1"),
        dir.join("wal"),
        ServeOptions::with_workers(1),
    ) {
        Err(WalError::ChecksumMismatch { .. }) => {}
        Err(other) => panic!("expected ChecksumMismatch, got {other:?}"),
        Ok(_) => panic!("corrupt log was accepted by the read replica"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_start_replay_serves_reads_without_mutating_the_log() {
    let dir = temp_dir("replica");
    let (live, writer) = durable_writer(&dir, 5);
    let segment = writer.wal_segment_path().unwrap();

    // Leave a torn tail on disk. The read replica must skip it *without*
    // truncating the file — the writer that owns the log may still be the
    // one to recover it.
    drop(writer);
    let mut bytes = std::fs::read(&segment).unwrap();
    bytes.extend_from_slice(&[0x55; 7]);
    std::fs::write(&segment, &bytes).unwrap();
    let len_before = std::fs::metadata(&segment).unwrap().len();

    let replica = QueryServer::warm_start_replay(
        dir.join("ckpt.mog1"),
        dir.join("wal"),
        ServeOptions::with_workers(1),
    )
    .unwrap();
    assert_answers_match(&replica, &live, "read replica");
    assert_eq!(
        std::fs::metadata(&segment).unwrap().len(),
        len_before,
        "read-only replay mutated the log"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
