//! Zero-downtime snapshot swapping under concurrent load.
//!
//! The contract: queries submitted concurrently with snapshot swaps never
//! observe a torn index — every answer matches what *some* published epoch
//! answers for that query, and every batch is answered by a single epoch.

use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy, UpdatableIndex};
use mogul_serve::{IndexWriter, QueryRequest, QueryServer, ServeOptions, UpdateRequest};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Two feature clusters; probe ids (0..PROBES) live in cluster 0 and are
/// never removed during the tests.
fn features() -> Vec<Vec<f64>> {
    let mut features = Vec::new();
    for i in 0..24 {
        features.push(vec![0.08 * i as f64, 0.04 * (i % 5) as f64]);
    }
    for i in 0..24 {
        features.push(vec![20.0 + 0.08 * i as f64, 9.0 + 0.04 * (i % 5) as f64]);
    }
    features
}

const PROBES: usize = 6;
const QUERY_K: usize = 4;

fn build_index(policy: RebuildPolicy) -> UpdatableIndex {
    IndexBuilder::new()
        .knn_k(4)
        .exact_ranking()
        .rebuild_policy(policy)
        .build(features())
        .unwrap()
}

/// The expected answers of one epoch: ranked id lists per probe, plus one
/// out-of-sample probe.
fn expected_answers(snapshot: &mogul_core::update::IndexSnapshot) -> Vec<Vec<usize>> {
    let mut expected: Vec<Vec<usize>> = (0..PROBES)
        .map(|id| snapshot.query_by_id(id, QUERY_K).unwrap().nodes())
        .collect();
    expected.push(
        snapshot
            .query_by_feature(&[0.2, 0.05], QUERY_K)
            .unwrap()
            .top_k
            .nodes(),
    );
    expected
}

/// Queries racing snapshot swaps: every single-query answer matches some
/// published epoch, and every batch matches exactly one epoch end-to-end.
#[test]
fn swaps_under_load_never_tear_results() {
    // Small support ceiling so the writer alternates between corrected
    // epochs and full refactorizations — both swap paths are exercised.
    let mut index = build_index(RebuildPolicy {
        max_support: 18,
        max_support_fraction: 1.0,
    });
    let server = Arc::new(QueryServer::from_snapshot(
        index.snapshot(),
        ServeOptions::with_workers(2),
    ));

    // Expected answers per epoch, inserted into the ledger *before* the
    // snapshot is installed so readers can never be ahead of it.
    let ledger: Arc<Mutex<HashMap<u64, Vec<Vec<usize>>>>> = Arc::new(Mutex::new(HashMap::new()));
    ledger
        .lock()
        .unwrap()
        .insert(0, expected_answers(&index.snapshot()));
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for reader in 0..3 {
        let server = Arc::clone(&server);
        let ledger = Arc::clone(&ledger);
        let done = Arc::clone(&done);
        readers.push(thread::spawn(move || {
            let mut checks = 0usize;
            while !done.load(Ordering::Relaxed) || checks == 0 {
                if reader == 0 {
                    // Whole batches must be answered by one single epoch.
                    let requests: Vec<QueryRequest> = (0..PROBES)
                        .map(|id| QueryRequest::in_database(id, QUERY_K))
                        .chain([QueryRequest::out_of_sample(vec![0.2, 0.05], QUERY_K)])
                        .collect();
                    let answers: Vec<Vec<usize>> = server
                        .serve_batch(&requests)
                        .into_iter()
                        .map(|a| a.expect("probe query failed").top_k().nodes())
                        .collect();
                    let ledger = ledger.lock().unwrap();
                    assert!(
                        ledger.values().any(|expected| *expected == answers),
                        "batch answers match no single published epoch: {answers:?}"
                    );
                } else {
                    // Single queries may each land on different epochs, but
                    // each one must match that epoch exactly.
                    let probe = checks % PROBES;
                    let answer = server
                        .query_by_id(probe, QUERY_K)
                        .expect("probe query failed")
                        .nodes();
                    let ledger = ledger.lock().unwrap();
                    assert!(
                        ledger.values().any(|expected| expected[probe] == answer),
                        "answer for probe {probe} matches no published epoch: {answer:?}"
                    );
                }
                checks += 1;
            }
            checks
        }));
    }

    // Writer: interleave inserts and removals (never touching the probe
    // ids), publishing each epoch only after recording its expected answers.
    let mut inserted: Vec<usize> = Vec::new();
    for round in 0..10 {
        let mut delta = IndexDelta::new();
        delta.insert(vec![0.3 + 0.01 * round as f64, 0.02]);
        if round % 3 == 2 {
            delta.remove(inserted.remove(0));
            delta.remove(24 + round); // a cluster-1 item
        }
        let report = index.apply(&delta).unwrap();
        inserted.extend(report.inserted);
        let snapshot = index.snapshot();
        ledger
            .lock()
            .unwrap()
            .insert(snapshot.epoch(), expected_answers(&snapshot));
        let previous = server.install_snapshot(snapshot);
        // The displaced snapshot is still intact for any in-flight query.
        assert!(previous.epoch() < server.epoch());
        thread::sleep(Duration::from_millis(2));
    }
    done.store(true, Ordering::Relaxed);

    let mut total_checks = 0usize;
    for handle in readers {
        total_checks += handle.join().expect("reader panicked");
    }
    assert!(total_checks >= 3, "readers barely ran: {total_checks}");
    assert_eq!(server.epoch(), 10);
    // The final epoch is live and matches its recorded answers.
    let final_answers = expected_answers(&server.snapshot());
    assert_eq!(ledger.lock().unwrap()[&10], final_answers);
}

/// The writer façade: updates publish new epochs, in-flight snapshots stay
/// valid, and the debt policy triggers refactorization through the writer.
#[test]
fn index_writer_publishes_epochs_and_rebuilds() {
    let index = build_index(RebuildPolicy {
        max_support: 10,
        max_support_fraction: 1.0,
    });
    let (server, writer) = IndexWriter::new(index, ServeOptions::with_workers(2));
    assert_eq!(server.epoch(), 0);
    assert_eq!(server.len(), 48);
    let old = server.snapshot();
    let old_top = old.query_by_id(0, QUERY_K).unwrap();

    // A small update: corrected snapshot, no rebuild.
    let report = writer
        .apply(&[UpdateRequest::insert(vec![0.1, 0.01])])
        .unwrap();
    assert!(!report.rebuilt);
    assert_eq!(server.epoch(), 1);
    assert!(writer.debt().support > 0);
    let new_id = report.inserted[0];
    assert!(server.query_by_id(new_id, QUERY_K).is_ok());

    // The pre-update snapshot still answers identically (zero downtime for
    // in-flight queries).
    assert_eq!(old.query_by_id(0, QUERY_K).unwrap(), old_top);
    assert!(old.query_by_id(new_id, QUERY_K).is_err());

    // Pile on updates until the debt policy forces a refactorization.
    let mut rebuilt = false;
    for i in 0..8 {
        let report = writer
            .apply(&[UpdateRequest::insert(vec![0.5 + 0.05 * i as f64, 0.03])])
            .unwrap();
        rebuilt |= report.rebuilt;
    }
    assert!(rebuilt, "debt policy never triggered a rebuild");
    // An explicit rebuild also goes through the writer.
    let report = writer.rebuild().unwrap();
    assert!(report.rebuilt);
    assert_eq!(report.debt.support, 0);
    assert!(server.snapshot().is_clean());
    assert_eq!(server.epoch(), writer.server().epoch());

    // Removals through the writer disappear from the served snapshot.
    writer.apply(&[UpdateRequest::remove(new_id)]).unwrap();
    assert!(server.query_by_id(new_id, QUERY_K).is_err());
}
