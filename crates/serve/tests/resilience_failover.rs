//! The fault-injection battery: a 3-replica set under process kills and
//! frame corruption serves every request with **exactly one typed
//! outcome** — an answer (bit-identical to the reference index), a typed
//! non-retryable rejection, or typed exhaustion — never a hang past the
//! deadline, never a panic.
//!
//! The harness composes three fault layers:
//!
//! * **process kills** — replicas are separate OS processes (the PR-7
//!   kill-battery self-spawn idiom: an `#[ignore]`d test body re-invoked
//!   via `current_exe`), SIGKILLed mid-run;
//! * **frame corruption** — every replica sits behind a
//!   [`FaultProxy`] that drops, delays, truncates and bit-flips response
//!   frames on a seeded schedule;
//! * **shard faults** — the sharded engine's in-process injector produces
//!   degraded answers over the wire.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mogul_core::update::IndexBuilder;
use mogul_core::{ShardedConfig, ShardedIndex, ShardedSnapshot, ShardedWorkspace};
use mogul_serve::net::{NetClient, NetError, NetServer};
use mogul_serve::resilience::{FailoverError, FaultPlan, FaultProxy, ReplicaSet, ReplicaSetConfig};
use mogul_serve::{
    QueryRequest, QueryResponse, ResponseStatus, ServeError, ServeOptions, ShardFault,
    ShardedWriter,
};

const K: usize = 4;
const REPLICA_ADDR_FILE_ENV: &str = "MOGUL_REPLICA_ADDR_FILE";

/// The corpus every replica (and the parent's reference index) builds
/// identically: three separated clusters, sharded 3 ways, all shards
/// probed. Fully deterministic, so socket answers are bit-comparable to
/// the parent's in-process answers.
fn features() -> Vec<Vec<f64>> {
    let mut features = Vec::new();
    for c in 0..3 {
        for i in 0..16 {
            features.push(vec![
                100.0 * c as f64 + 0.07 * i as f64,
                10.0 * c as f64 + 0.03 * (i % 5) as f64,
            ]);
        }
    }
    features
}

fn build_index() -> ShardedIndex {
    let config = ShardedConfig::with_shards(3)
        .shard_probes(3)
        .builder(IndexBuilder::new().knn_k(4).exact_ranking());
    let (index, _report) = ShardedIndex::build(features(), config).unwrap();
    index
}

fn serve_options() -> ServeOptions {
    ServeOptions::builder()
        .workers(2)
        .queue_capacity(64)
        .build()
        .unwrap()
}

/// The request mix the battery replays: valid in-database and
/// out-of-sample queries, deterministic.
fn request_mix(count: usize) -> Vec<QueryRequest> {
    (0..count)
        .map(|i| {
            if i % 3 == 0 {
                QueryRequest::in_database((i * 7) % 48, K)
            } else {
                QueryRequest::out_of_sample(
                    vec![
                        100.0 * ((i % 3) as f64) + 0.5,
                        10.0 * ((i % 3) as f64) + 0.01,
                    ],
                    K,
                )
            }
        })
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mogul-resilience-{}-{}-{name}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// Replica child process
// ---------------------------------------------------------------------------

/// The child half of the battery: one replica process. Not a test on its
/// own — it is `#[ignore]`d and returns immediately unless the parent set
/// the environment up; the parent SIGKILLs it.
#[test]
#[ignore = "child process body of the failover battery"]
fn replica_child_process() {
    let Some(addr_file) = std::env::var_os(REPLICA_ADDR_FILE_ENV) else {
        return;
    };
    let addr_file = PathBuf::from(addr_file);
    let (server, _writer) = ShardedWriter::new(build_index());
    let net = NetServer::bind_sharded("127.0.0.1:0", server, serve_options()).unwrap();
    // Publish the bound address atomically (write + rename), then serve
    // until killed.
    let tmp = addr_file.with_extension("tmp");
    std::fs::write(&tmp, format!("{}\n", net.local_addr())).unwrap();
    std::fs::rename(&tmp, &addr_file).unwrap();
    let _ = net.run();
}

struct Replica {
    child: Child,
    addr: SocketAddr,
}

fn spawn_replica(dir: &Path, index: usize) -> Replica {
    let addr_file = dir.join(format!("replica-{index}.addr"));
    let exe = std::env::current_exe().unwrap();
    let child = Command::new(&exe)
        .args(["--exact", "--ignored", "replica_child_process"])
        .env(REPLICA_ADDR_FILE_ENV, &addr_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "replica {index} never published its address"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    Replica { child, addr }
}

// ---------------------------------------------------------------------------
// The battery
// ---------------------------------------------------------------------------

/// 3 replicas, every one behind a corrupting proxy, one SIGKILLed
/// mid-run: every request completes with exactly one typed outcome, every
/// successful answer is bit-identical to the reference index, and
/// failover lands within the per-request deadline.
#[test]
fn failover_battery_under_kills_and_corruption() {
    let dir = temp_dir("battery");
    let mut replicas: Vec<Replica> = (0..3).map(|i| spawn_replica(&dir, i)).collect();

    // Seeded corruption in front of every replica: drops, delays,
    // truncations and bit-flips on the response path.
    let plan = |seed: u64| FaultPlan {
        seed,
        drop_per_mille: 40,
        delay_per_mille: 30,
        delay: Duration::from_millis(20),
        truncate_per_mille: 30,
        bit_flip_per_mille: 50,
    };
    let proxies: Vec<FaultProxy> = replicas
        .iter()
        .enumerate()
        .map(|(i, r)| FaultProxy::spawn(r.addr, plan(0x1000 + i as u64)).unwrap())
        .collect();
    let proxy_addrs: Vec<SocketAddr> = proxies.iter().map(|p| p.addr()).collect();

    let config = ReplicaSetConfig::builder()
        .deadline(Duration::from_secs(8))
        .attempt_timeout(Duration::from_millis(500))
        .backoff_base(Duration::from_millis(2))
        .backoff_cap(Duration::from_millis(50))
        .breaker_threshold(3)
        .breaker_cooldown(Duration::from_millis(100))
        .build()
        .unwrap();
    let mut set = ReplicaSet::new(&proxy_addrs, config).unwrap();

    // Reference answers from an identically-built local index.
    let reference = build_index().snapshot();
    let mut ws = ShardedWorkspace::new();

    let requests = request_mix(60);
    let mut killed = false;
    for (i, request) in requests.iter().enumerate() {
        // Mid-run, SIGKILL the replica the cursor currently prefers — the
        // worst case for the next attempt.
        if i == 20 {
            let preferred = set.current_replica();
            let victim = proxy_addrs.iter().position(|&a| a == preferred).unwrap();
            let _ = replicas[victim].child.kill();
            let _ = replicas[victim].child.wait();
            killed = true;
        }
        let started = Instant::now();
        let outcome = set.query(request);
        let elapsed = started.elapsed();
        assert!(
            elapsed <= Duration::from_secs(9),
            "request {i} overran the deadline budget: {elapsed:?}"
        );
        match outcome {
            Ok((response, status)) => {
                // Every replica is fully healthy at the shard level, so
                // successful answers must be complete and bit-identical.
                assert_eq!(status, ResponseStatus::Complete, "request {i}");
                match (request, response) {
                    (QueryRequest::InDatabase { node, k }, QueryResponse::InDatabase(got)) => {
                        let want = reference.query_by_id_in(&mut ws, *node, *k).unwrap();
                        assert_eq!(got, want, "request {i} answer diverged");
                    }
                    (QueryRequest::OutOfSample { feature, k }, QueryResponse::OutOfSample(got)) => {
                        let want = reference.query_by_feature_in(&mut ws, feature, *k).unwrap();
                        assert_eq!(got.top_k, want.top_k, "request {i} answer diverged");
                        assert_eq!(got.neighbors, want.neighbors, "request {i}");
                    }
                    (req, resp) => panic!("request {i} shape mismatch: {req:?} -> {resp:?}"),
                }
            }
            Err(FailoverError::NonRetryable(err)) => {
                panic!("request {i} was valid but rejected non-retryable: {err}");
            }
            Err(FailoverError::Exhausted { last_error, .. }) => {
                // Typed exhaustion is a legal outcome under chaos, but with
                // two healthy replicas and an 8s budget it signals a bug.
                panic!("request {i} exhausted its deadline: {last_error}");
            }
        }
    }
    assert!(killed, "the battery must have killed a replica mid-run");

    for proxy in &mut proxies.into_iter() {
        drop(proxy);
    }
    for replica in &mut replicas {
        let _ = replica.child.kill();
        let _ = replica.child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Failover latency: with the first replica dead, a query still succeeds,
/// well inside the deadline.
#[test]
fn failover_to_a_live_replica_lands_within_the_deadline() {
    let dir = temp_dir("failover");
    let mut replica = spawn_replica(&dir, 0);

    // A dead address: bind then drop, so connects are refused fast.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let config = ReplicaSetConfig::builder()
        .deadline(Duration::from_secs(5))
        .attempt_timeout(Duration::from_millis(300))
        .backoff_base(Duration::from_millis(1))
        .backoff_cap(Duration::from_millis(10))
        .build()
        .unwrap();
    let mut set = ReplicaSet::new(&[dead, replica.addr], config).unwrap();

    let request = QueryRequest::in_database(0, K);
    let started = Instant::now();
    let (_, status) = set.query(&request).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(status, ResponseStatus::Complete);
    assert!(
        elapsed < Duration::from_secs(5),
        "failover took {elapsed:?}, past the deadline budget"
    );
    assert_eq!(
        set.current_replica(),
        replica.addr,
        "the cursor must stick to the replica that answered"
    );

    let _ = replica.child.kill();
    let _ = replica.child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Degraded answers over the wire
// ---------------------------------------------------------------------------

/// A sharded replica with one failed shard answers over the socket with
/// the degraded tag, the answer is the exact sub-merge of the surviving
/// shards, and a strict request fails typed instead.
#[test]
fn degraded_answers_cross_the_wire_and_strict_requests_fail_typed() {
    let (server, _writer) = ShardedWriter::new(build_index());
    let reference = build_index().snapshot();
    server.set_fault_injector(Some(Arc::new(|shard| {
        (shard == 1).then(|| {
            ShardFault::Error(ServeError::Config {
                reason: "injected shard fault".into(),
            })
        })
    })));
    let net = NetServer::bind_sharded("127.0.0.1:0", Arc::clone(&server), serve_options()).unwrap();
    let handle = net.handle();
    let join = std::thread::spawn(move || net.run());

    let mut client = NetClient::connect(handle.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let feature = vec![0.5, 0.01];
    let request = QueryRequest::out_of_sample(feature.clone(), K);

    // Relaxed request: degraded answer, tagged, exact sub-merge.
    let (response, status) = client.query_status(&request, false).unwrap();
    assert_eq!(
        status,
        ResponseStatus::Degraded {
            shards_answered: 2,
            shards_total: 3
        }
    );
    let mut ws = ShardedWorkspace::new();
    let order = reference.probe_order(&feature).unwrap();
    let legs: Vec<_> = order
        .iter()
        .filter(|&&shard| shard != 1)
        .map(|&shard| {
            reference
                .query_shard_by_feature_in(&mut ws, shard, &feature, K)
                .unwrap()
        })
        .collect();
    let want = ShardedSnapshot::merge_scatter(K, &legs);
    match &response {
        QueryResponse::OutOfSample(got) => {
            assert_eq!(
                got.top_k, want.top_k,
                "wire degraded answer must be the sub-merge"
            );
            assert_eq!(got.neighbors, want.neighbors);
        }
        other => panic!("wrong response shape: {other:?}"),
    }

    // Strict request: typed Incomplete over the wire, retryable.
    let err = client.query_status(&request, true).unwrap_err();
    match err {
        NetError::Serve(ServeError::Incomplete {
            shards_answered,
            shards_total,
        }) => assert_eq!((shards_answered, shards_total), (2, 3)),
        other => panic!("expected typed Incomplete over the wire, got {other:?}"),
    }

    // Legacy entry point (`query`, no status): still answers — old callers
    // keep working, they just don't see the tag.
    let response = client.query(&request).unwrap();
    assert!(matches!(response, QueryResponse::OutOfSample(_)));

    // Heal the shard: complete answers resume, with the v1 byte layout
    // (status tag only appears on degraded answers).
    server.set_fault_injector(None);
    let (_, status) = client.query_status(&request, true).unwrap();
    assert_eq!(status, ResponseStatus::Complete);

    client.drain_server().unwrap();
    drop(client);
    join.join().unwrap().unwrap();
}
