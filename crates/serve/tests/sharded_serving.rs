//! Sharded serving under concurrent load.
//!
//! The contract under test: a [`ShardedServer`] batch reads its
//! [`ShardedSnapshot`] exactly once, so every answer of one batch observes
//! **every shard at exactly one epoch** — even while a writer applies
//! routed updates and rebuilds shards one at a time. A torn merge (shard 0
//! from the old snapshot, shard 1 from the new) would make two identical
//! requests inside one batch disagree; the tests below run exactly that
//! detector while hammering the writer. Routing isolation (updates only
//! dirty their owning shard) and shard-skip statistics are pinned alongside.

use mogul_core::update::{IndexBuilder, RebuildPolicy};
use mogul_core::{ShardedConfig, ShardedIndex};
use mogul_serve::{QueryRequest, ServeError, ShardedWriter, UpdateRequest};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const QUERY_K: usize = 4;

/// Two well-separated clusters of 24 items each; a 2-shard partition
/// recovers them, so globals 0..24 land in one shard and 24..48 in the
/// other. Probe ids stay in 0..6 and are never removed.
fn features() -> Vec<Vec<f64>> {
    let mut features = Vec::new();
    for i in 0..24 {
        features.push(vec![0.08 * i as f64, 0.04 * (i % 5) as f64]);
    }
    for i in 0..24 {
        features.push(vec![100.0 + 0.08 * i as f64, 9.0 + 0.04 * (i % 5) as f64]);
    }
    features
}

fn build_sharded(policy: RebuildPolicy) -> ShardedIndex {
    let config = ShardedConfig::with_shards(2).builder(
        IndexBuilder::new()
            .knn_k(4)
            .exact_ranking()
            .rebuild_policy(policy),
    );
    let (index, report) = ShardedIndex::build(features(), config).unwrap();
    assert!(
        report.groups.iter().all(|g| g.len() == 24),
        "partition must recover the two clusters"
    );
    index
}

/// Baseline: server answers equal the snapshot's own answers, per-request
/// failures stay per-request, and mixed batches preserve order.
#[test]
fn sharded_server_matches_its_snapshot_and_fails_per_request() {
    let index = build_sharded(RebuildPolicy::default());
    let snapshot = index.snapshot();
    let (server, _writer) = ShardedWriter::new(index);

    let requests = vec![
        QueryRequest::in_database(0, QUERY_K),
        QueryRequest::out_of_sample(vec![0.2, 0.05], QUERY_K),
        QueryRequest::in_database(30, QUERY_K),
        QueryRequest::in_database(9999, QUERY_K), // unknown id
        QueryRequest::out_of_sample(vec![1.0], QUERY_K), // wrong dimension
        QueryRequest::in_database(1, 0),          // zero k
        QueryRequest::in_database(1, QUERY_K),
    ];
    let answers = server.serve_batch(&requests);

    let mut ws = mogul_core::ShardedWorkspace::new();
    for (i, id) in [(0usize, 0usize), (2, 30), (6, 1)] {
        let got = answers[i].as_ref().unwrap().top_k();
        let want = snapshot.query_by_id_in(&mut ws, id, QUERY_K).unwrap();
        assert_eq!(got, &want, "request {i}");
    }
    let got = answers[1].as_ref().unwrap().out_of_sample().unwrap();
    let want = snapshot
        .query_by_feature_in(&mut ws, &[0.2, 0.05], QUERY_K)
        .unwrap();
    assert_eq!(got.top_k, want.top_k);
    for i in [3, 4, 5] {
        assert!(
            matches!(answers[i], Err(ServeError::BadRequest { .. })),
            "request {i} must be rejected at admission: {:?}",
            answers[i]
        );
    }
}

/// Inserts routed to shard 0 never dirty shard 1: its snapshot epoch stays
/// at 0 and it carries no rebuild debt — maintenance cost is per-shard.
#[test]
fn updates_only_dirty_their_owning_shard() {
    let index = build_sharded(RebuildPolicy::never());
    let (server, writer) = ShardedWriter::new(index);

    let mut inserted = Vec::new();
    for step in 0..3 {
        let report = writer
            .apply(&[UpdateRequest::insert(vec![0.5 + 0.01 * step as f64, 0.1])])
            .unwrap();
        inserted.push(report.inserted[0]);
    }
    let epochs = writer.shard_epochs();
    assert_eq!(epochs[1], 0, "untouched shard must stay at epoch 0");
    assert_eq!(epochs[0], 3, "owning shard advances once per delta");
    assert_eq!(server.snapshot().shard_epochs(), epochs);

    // All three landed in shard 0 (the router agrees), and rebuilding the
    // clean shard 1 is a no-op for its answers.
    for &id in &inserted {
        assert_eq!(server.snapshot().shard_of(id), Some(0));
    }
    let debts = writer.shard_debts();
    assert_eq!(debts[1].support, 0, "clean shard carries no debt");
    assert!(debts[0].support > 0, "dirty shard carries the debt");

    // Per-shard rebuild: shard 0 comes back clean, shard 1 still at 0.
    writer.rebuild_shard(0).unwrap();
    let epochs = writer.shard_epochs();
    assert_eq!(epochs[1], 0);
    assert!(server.snapshot().is_clean());
}

/// In-database queries touch exactly one shard and out-of-sample queries
/// probe only the configured nearest shards: the scatter statistics must
/// report at least one shard pruned.
#[test]
fn scatter_stats_report_skipped_shards() {
    let index = build_sharded(RebuildPolicy::default());
    let (server, _writer) = ShardedWriter::new(index);

    let (_, stats) = server
        .query_with_stats(&QueryRequest::in_database(0, QUERY_K))
        .unwrap();
    assert_eq!(stats.shards_total, 2);
    assert_eq!(stats.shards_probed, 1);
    assert!(
        stats.shards_skipped >= 1,
        "in-db query must skip the foreign shard"
    );

    // shard_probes defaults to 1: the scatter prunes the far shard.
    let (response, stats) = server
        .query_with_stats(&QueryRequest::out_of_sample(vec![0.2, 0.05], QUERY_K))
        .unwrap();
    assert!(
        stats.shards_skipped >= 1,
        "out-of-sample scatter must prune the far shard"
    );
    assert!(
        response.top_k().nodes().iter().all(|&id| id < 24),
        "answers must come from the near shard"
    );
}

/// The torn-merge detector: batches with duplicated requests race a writer
/// that interleaves routed inserts, removals and single-shard rebuilds.
/// Duplicates inside one batch must answer bit-identically (one snapshot,
/// therefore one epoch per shard, for the whole batch), and the epoch
/// observed by each reader must be monotone.
#[test]
fn batches_racing_shard_rebuilds_never_tear() {
    // Tiny support ceiling: corrected epochs and full per-shard
    // refactorizations both occur during the run.
    let index = build_sharded(RebuildPolicy {
        max_support: 12,
        max_support_fraction: 1.0,
    });
    let (server, writer) = ShardedWriter::new(index);
    let writer = Arc::new(writer);
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for reader in 0..3 {
        let server = Arc::clone(&server);
        let done = Arc::clone(&done);
        readers.push(thread::spawn(move || {
            let probe = reader % 6;
            let mut last_epoch = 0u64;
            let mut batches = 0usize;
            while !done.load(Ordering::Relaxed) {
                let requests = vec![
                    QueryRequest::in_database(probe, QUERY_K),
                    QueryRequest::out_of_sample(vec![0.3, 0.07], QUERY_K),
                    QueryRequest::in_database(probe, QUERY_K),
                    QueryRequest::out_of_sample(vec![0.3, 0.07], QUERY_K),
                ];
                let answers = server.serve_batch(&requests);
                let a0 = answers[0].as_ref().expect("probe ids are never removed");
                let a2 = answers[2].as_ref().expect("probe ids are never removed");
                assert_eq!(
                    a0.top_k(),
                    a2.top_k(),
                    "duplicate in-db requests in one batch disagreed: torn merge"
                );
                let b1 = answers[1].as_ref().unwrap().top_k();
                let b3 = answers[3].as_ref().unwrap().top_k();
                assert_eq!(
                    b1, b3,
                    "duplicate OOS requests in one batch disagreed: torn merge"
                );

                let epoch = server.epoch();
                assert!(
                    epoch >= last_epoch,
                    "epoch went backwards: {epoch} < {last_epoch}"
                );
                last_epoch = epoch;
                batches += 1;
            }
            batches
        }));
    }

    // Writer: insert into alternating clusters (so both shards change and
    // both answers drift between epochs), remove the previous insert, and
    // rebuild each shard in turn.
    let mut pending: Option<usize> = None;
    for step in 0..40 {
        let near_zero = step % 2 == 0;
        let feature = if near_zero {
            vec![0.4 + 0.005 * step as f64, 0.06]
        } else {
            vec![100.4 + 0.005 * step as f64, 9.06]
        };
        let mut updates = vec![UpdateRequest::insert(feature)];
        if let Some(id) = pending.take() {
            updates.push(UpdateRequest::remove(id));
        }
        let report = writer.apply(&updates).unwrap();
        pending = Some(report.inserted[0]);
        if step % 5 == 4 {
            writer.rebuild_shard(step % 2).unwrap();
        }
    }
    done.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    for reader in readers {
        total += reader
            .join()
            .expect("reader panicked (tearing assertion failed)");
    }
    assert!(
        total > 0,
        "readers must have observed batches during the run"
    );

    // Post-race sanity: the final published snapshot and the writer's own
    // state agree shard by shard.
    assert_eq!(server.snapshot().shard_epochs(), writer.shard_epochs());
}
