//! Degraded-mode scatter-gather: when a probed shard fails — typed error,
//! contained panic, or blown per-scatter deadline — the merged answer of
//! the surviving shards comes back tagged
//! [`ResponseStatus::Degraded`], and it is a **true sub-merge**: bit-
//! identical to [`ShardedSnapshot::merge_scatter`] over exactly the legs
//! that answered, in probe order. Strict callers (`require_complete`) fail
//! typed with [`ServeError::Incomplete`] instead of degrading.
//!
//! Shard failures are injected deterministically through
//! [`ShardedServer::set_fault_injector`], the in-process half of the
//! fault-injection harness.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mogul_core::update::IndexBuilder;
use mogul_core::{ShardedConfig, ShardedIndex, ShardedSnapshot, ShardedWorkspace};
use mogul_serve::{
    DegradedPolicy, QueryRequest, QueryResponse, ResponseStatus, ServeError, ShardFault,
    ShardedServer, ShardedWriter,
};

const K: usize = 5;

/// Three well-separated clusters of 16 items each; a 3-shard partition
/// recovers them. Every out-of-sample query probes all three shards
/// (`shard_probes = 3`), so one failed shard degrades rather than
/// misroutes.
fn features() -> Vec<Vec<f64>> {
    let mut features = Vec::new();
    for c in 0..3 {
        for i in 0..16 {
            features.push(vec![
                100.0 * c as f64 + 0.07 * i as f64,
                10.0 * c as f64 + 0.03 * (i % 5) as f64,
            ]);
        }
    }
    features
}

fn build_server() -> (Arc<ShardedServer>, Arc<ShardedSnapshot>) {
    let config = ShardedConfig::with_shards(3)
        .shard_probes(3)
        .builder(IndexBuilder::new().knn_k(4).exact_ranking());
    let (index, _report) = ShardedIndex::build(features(), config).unwrap();
    let snapshot = index.snapshot();
    let (server, _writer) = ShardedWriter::new(index);
    (server, snapshot)
}

fn probe_feature() -> Vec<f64> {
    // Near cluster 0 but not on any item: all three shards contribute real
    // distance-ordered legs.
    vec![0.5, 0.01]
}

/// Fail exactly the given shards with a typed error.
fn fail_shards(server: &ShardedServer, shards: &'static [usize]) {
    server.set_fault_injector(Some(Arc::new(move |shard| {
        shards.contains(&shard).then(|| {
            ShardFault::Error(ServeError::Config {
                reason: format!("injected fault on shard {shard}"),
            })
        })
    })));
}

#[test]
fn healthy_scatter_is_complete_and_bit_identical_to_the_snapshot() {
    let (server, snapshot) = build_server();
    let feature = probe_feature();
    let request = QueryRequest::out_of_sample(feature.clone(), K);
    let (response, status) = server.query_degraded(&request, true).unwrap();
    assert_eq!(status, ResponseStatus::Complete);
    let mut ws = ShardedWorkspace::new();
    let want = snapshot.query_by_feature_in(&mut ws, &feature, K).unwrap();
    let got = match &response {
        QueryResponse::OutOfSample(result) => result,
        other => panic!("wrong response shape: {other:?}"),
    };
    assert_eq!(
        got.top_k, want.top_k,
        "degraded path must not change answers"
    );
    assert_eq!(got.neighbors, want.neighbors);

    let in_db = QueryRequest::in_database(3, K);
    let (response, status) = server.query_degraded(&in_db, true).unwrap();
    assert_eq!(status, ResponseStatus::Complete);
    let want = snapshot.query_by_id_in(&mut ws, 3, K).unwrap();
    match response {
        QueryResponse::InDatabase(got) => assert_eq!(got, want),
        other => panic!("wrong response shape: {other:?}"),
    }
}

#[test]
fn degraded_answer_is_the_exact_merge_of_the_surviving_legs() {
    let (server, snapshot) = build_server();
    let feature = probe_feature();
    let order = snapshot.probe_order(&feature).unwrap();
    assert_eq!(order.len(), 3);

    // Fail the *second* probed shard: survivors are a non-trivial,
    // non-prefix subset of the probe order.
    let failed = order[1];
    let leaked: &'static [usize] = Box::leak(vec![failed].into_boxed_slice());
    fail_shards(&server, leaked);

    let request = QueryRequest::out_of_sample(feature.clone(), K);
    let (response, status) = server.query_degraded(&request, false).unwrap();
    assert_eq!(
        status,
        ResponseStatus::Degraded {
            shards_answered: 2,
            shards_total: 3
        }
    );

    // Reference merge: the surviving legs, queried directly against the
    // snapshot, merged with the gather's own merge — in probe order.
    let mut ws = ShardedWorkspace::new();
    let legs: Vec<_> = order
        .iter()
        .filter(|&&shard| shard != failed)
        .map(|&shard| {
            snapshot
                .query_shard_by_feature_in(&mut ws, shard, &feature, K)
                .unwrap()
        })
        .collect();
    let want = ShardedSnapshot::merge_scatter(K, &legs);
    let got = match &response {
        QueryResponse::OutOfSample(result) => result,
        other => panic!("wrong response shape: {other:?}"),
    };
    assert_eq!(
        got.top_k, want.top_k,
        "degraded answer must be the exact sub-merge"
    );
    assert_eq!(got.neighbors, want.neighbors);
    assert_eq!(got.stats, want.stats);
}

#[test]
fn require_complete_fails_typed_instead_of_degrading() {
    let (server, _snapshot) = build_server();
    fail_shards(&server, &[0]);
    let request = QueryRequest::out_of_sample(probe_feature(), K);
    let err = server.query_degraded(&request, true).unwrap_err();
    match err {
        ServeError::Incomplete {
            shards_answered,
            shards_total,
        } => {
            assert_eq!((shards_answered, shards_total), (2, 3));
        }
        other => panic!("expected Incomplete, got {other:?}"),
    }
    assert!(
        err.is_retryable(),
        "Incomplete must be retryable — another replica may be whole"
    );
    // The same request without the strict flag degrades instead.
    let (_, status) = server.query_degraded(&request, false).unwrap();
    assert!(status.is_degraded());
}

#[test]
fn a_panicking_shard_is_contained_and_the_server_stays_healthy() {
    let (server, snapshot) = build_server();
    server.set_fault_injector(Some(Arc::new(|shard| {
        (shard == 1).then_some(ShardFault::Panic)
    })));
    let request = QueryRequest::out_of_sample(probe_feature(), K);
    let (_, status) = server.query_degraded(&request, false).unwrap();
    assert_eq!(
        status,
        ResponseStatus::Degraded {
            shards_answered: 2,
            shards_total: 3
        },
        "a panic inside one shard must degrade, not poison the query"
    );

    // Clear the fault: the server (and its workspace pool) must be fully
    // healthy again, answering complete and bit-identical.
    server.set_fault_injector(None);
    let feature = probe_feature();
    let (response, status) = server.query_degraded(&request, true).unwrap();
    assert_eq!(status, ResponseStatus::Complete);
    let mut ws = ShardedWorkspace::new();
    let want = snapshot.query_by_feature_in(&mut ws, &feature, K).unwrap();
    match &response {
        QueryResponse::OutOfSample(got) => assert_eq!(got.top_k, want.top_k),
        other => panic!("wrong response shape: {other:?}"),
    }
}

#[test]
fn a_stalled_shard_blows_the_scatter_deadline_and_degrades() {
    let (server, snapshot) = build_server();
    let feature = probe_feature();
    let order = snapshot.probe_order(&feature).unwrap();
    // Stall the last-probed shard: the earlier legs are already gathered
    // when the deadline expires.
    let stalled = *order.last().unwrap();
    server.set_degraded_policy(DegradedPolicy {
        scatter_deadline: Some(Duration::from_millis(40)),
    });
    server.set_fault_injector(Some(Arc::new(move |shard| {
        (shard == stalled).then_some(ShardFault::Stall(Duration::from_millis(120)))
    })));

    let request = QueryRequest::out_of_sample(feature, K);
    let started = Instant::now();
    let (_, status) = server.query_degraded(&request, false).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(
        status,
        ResponseStatus::Degraded {
            shards_answered: 2,
            shards_total: 3
        }
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "the stall must not leak past the deadline budget, took {elapsed:?}"
    );
}

#[test]
fn in_database_queries_have_one_owning_shard_and_fail_incomplete() {
    let (server, snapshot) = build_server();
    let node = 20usize; // cluster 1 → shard owned by that cluster
    let owner = snapshot.shard_of(node).unwrap();
    let leaked: &'static [usize] = Box::leak(vec![owner].into_boxed_slice());
    fail_shards(&server, leaked);

    let request = QueryRequest::in_database(node, K);
    let err = server.query_degraded(&request, false).unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Incomplete {
                shards_answered: 0,
                shards_total: 1
            }
        ),
        "an in-database query cannot degrade — got {err:?}"
    );

    server.set_fault_injector(None);
    let (_, status) = server.query_degraded(&request, false).unwrap();
    assert_eq!(status, ResponseStatus::Complete);
}

#[test]
fn all_shards_failed_is_incomplete_regardless_of_strictness() {
    let (server, _snapshot) = build_server();
    fail_shards(&server, &[0, 1, 2]);
    let request = QueryRequest::out_of_sample(probe_feature(), K);
    for strict in [false, true] {
        let err = server.query_degraded(&request, strict).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Incomplete {
                    shards_answered: 0,
                    shards_total: 3
                }
            ),
            "strict={strict}: expected Incomplete(0/3), got {err:?}"
        );
    }
}
