//! Cold-start serving: a `QueryServer` warm-started from an index file must
//! answer exactly like the server whose index was saved, stable ids
//! included, and `IndexWriter` checkpointing must survive a simulated
//! process restart.

use mogul_core::persist;
use mogul_core::update::{IndexBuilder, RebuildPolicy};
use mogul_core::RetrievalEngine;
use mogul_serve::{IndexWriter, QueryRequest, QueryServer, ServeOptions, UpdateRequest};
use std::path::PathBuf;
use std::sync::Arc;

fn features() -> Vec<Vec<f64>> {
    (0..30)
        .map(|i| {
            let blob = (i % 3) as f64;
            vec![
                blob * 6.0 + ((i * 13) % 7) as f64 / 7.0,
                blob * 6.0 + ((i * 29) % 11) as f64 / 11.0,
            ]
        })
        .collect()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mogul_serve_{tag}_{}.mog1", std::process::id()))
}

#[test]
fn warm_started_server_matches_the_in_memory_server() {
    let engine = RetrievalEngine::builder()
        .knn_k(4)
        .build(features())
        .unwrap();
    let oos = Arc::new(engine.into_out_of_sample());
    let path = temp_path("index");
    persist::save_index(&oos, &path).unwrap();

    let live = QueryServer::new(Arc::clone(&oos), ServeOptions::with_workers(2));
    let cold = QueryServer::warm_start(&path, ServeOptions::with_workers(2)).unwrap();
    assert_eq!(cold.len(), live.len());
    assert_eq!(cold.epoch(), 0);

    // A mixed batch answers identically on both servers.
    let mut batch = Vec::new();
    for q in [0usize, 7, 19, 29] {
        batch.push(QueryRequest::in_database(q, 5));
    }
    batch.push(QueryRequest::out_of_sample(vec![3.2, 3.4], 5));
    let a = live.serve_batch(&batch);
    let b = cold.serve_batch(&batch);
    for (x, y) in a.iter().zip(b.iter()) {
        let x = x.as_ref().unwrap();
        let y = y.as_ref().unwrap();
        assert_eq!(x.top_k(), y.top_k());
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_after_rebuild_survives_a_restart_with_stable_ids() {
    let path = temp_path("checkpoint");
    let index = IndexBuilder::new()
        .knn_k(3)
        // Tiny debt ceiling: the first apply triggers a rebuild, which is
        // what fires the automatic checkpoint.
        .rebuild_policy(RebuildPolicy {
            max_support: 1,
            max_support_fraction: 1.0,
        })
        .build(features())
        .unwrap();
    let (server, writer) = IndexWriter::new(index, ServeOptions::with_workers(1));
    writer.set_checkpoint(Some(path.clone()));
    assert_eq!(writer.checkpoint_path(), Some(path.clone()));

    // Remove an item and insert a new one: after this the dense node space
    // no longer matches the stable ids, which is exactly what the
    // checkpoint must preserve.
    let report = writer
        .apply(&[
            UpdateRequest::remove(4),
            UpdateRequest::insert(vec![0.5, 0.3]),
        ])
        .unwrap();
    assert!(report.rebuilt, "tiny debt ceiling should force a rebuild");
    assert_eq!(report.inserted, vec![30]);
    assert!(writer.take_checkpoint_error().is_none());
    assert!(path.exists(), "auto-checkpoint did not write the file");

    // "Restart": warm-start a fresh server+writer from the checkpoint.
    let (cold_server, cold_writer) =
        IndexWriter::warm_start(&path, ServeOptions::with_workers(1)).unwrap();
    assert_eq!(cold_server.epoch(), server.epoch());
    assert_eq!(cold_server.len(), server.len());
    let snapshot = cold_server.snapshot();
    assert!(!snapshot.contains(4), "removed id resurfaced after restart");
    assert!(snapshot.contains(30), "inserted id lost after restart");
    for id in snapshot.item_ids() {
        assert_eq!(
            server.query_by_id(id, 5).unwrap(),
            cold_server.query_by_id(id, 5).unwrap(),
            "cold-start answers diverged at id {id}"
        );
    }
    // The warm-started writer keeps checkpointing to the same file.
    assert_eq!(cold_writer.checkpoint_path(), Some(path.clone()));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_now_forces_a_clean_epoch() {
    let path = temp_path("now");
    let index = IndexBuilder::new()
        .knn_k(3)
        .rebuild_policy(RebuildPolicy::never())
        .build(features())
        .unwrap();
    let (server, writer) = IndexWriter::new(index, ServeOptions::with_workers(1));

    // Without a configured path, checkpoint_now is a typed error.
    assert!(writer.checkpoint_now().is_err());
    writer.set_checkpoint(Some(path.clone()));

    // Leave the writer dirty (no rebuild policy), then checkpoint: the
    // call must refactorize first, publish the clean epoch, and save it.
    writer
        .apply(&[UpdateRequest::insert(vec![0.4, 0.2])])
        .unwrap();
    assert!(!server.snapshot().is_clean());
    let written = writer.checkpoint_now().unwrap();
    assert_eq!(written, path);
    assert!(server.snapshot().is_clean(), "rebuild was not published");

    let restored = persist::load_updatable(&path).unwrap();
    assert_eq!(restored.epoch(), server.epoch());
    assert_eq!(restored.len(), server.len());
    std::fs::remove_file(&path).unwrap();

    // Disabling checkpointing sticks.
    writer.set_checkpoint(None);
    assert!(writer.checkpoint_path().is_none());
    assert!(writer.checkpoint_now().is_err());
}

#[test]
fn a_successful_checkpoint_clears_a_stale_auto_checkpoint_error() {
    let index = IndexBuilder::new()
        .knn_k(3)
        .rebuild_policy(RebuildPolicy {
            max_support: 1,
            max_support_fraction: 1.0,
        })
        .build(features())
        .unwrap();
    let (_server, writer) = IndexWriter::new(index, ServeOptions::with_workers(1));

    // Point the checkpoint at an unwritable location: the rebuild-triggering
    // apply succeeds, but its best-effort auto-checkpoint fails and the
    // error is retained for monitoring.
    writer.set_checkpoint(Some(
        std::env::temp_dir()
            .join("mogul_no_such_dir")
            .join("x.mog1"),
    ));
    let report = writer
        .apply(&[UpdateRequest::insert(vec![0.5, 0.3])])
        .unwrap();
    assert!(report.rebuilt);
    let err = writer.take_checkpoint_error();
    assert!(err.is_some(), "auto-checkpoint failure was not recorded");

    // Recover: a good path plus an explicit checkpoint_now must leave no
    // stale error behind (checkpoint_error reflects the latest outcome).
    writer.set_checkpoint(Some(
        std::env::temp_dir()
            .join("mogul_no_such_dir")
            .join("y.mog1"),
    ));
    writer
        .apply(&[UpdateRequest::insert(vec![0.6, 0.1])])
        .unwrap();
    assert!(writer.take_checkpoint_error().is_some());
    let good = temp_path("recover");
    writer.set_checkpoint(Some(good.clone()));
    writer
        .apply(&[UpdateRequest::insert(vec![0.7, 0.2])])
        .unwrap();
    assert!(good.exists());
    let written = writer.checkpoint_now().unwrap();
    assert_eq!(written, good);
    assert!(
        writer.take_checkpoint_error().is_none(),
        "stale checkpoint error survived a successful checkpoint"
    );
    std::fs::remove_file(&good).unwrap();
}
