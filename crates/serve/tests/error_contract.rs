//! The typed-error contract, exhaustively: every [`ServeError`] variant has
//! a documented retryability, survives the wire, and keeps its
//! retryability across the wire. The failover tier is built on this
//! contract — a variant that silently changed class would make
//! [`ReplicaSet`](mogul_serve::resilience::ReplicaSet) retry requests it
//! must not (or give up on requests it could save).
//!
//! The tests are compile-forcing: `all_variants` matches `ServeError`
//! without a wildcard, so adding a variant fails compilation here until
//! the new variant is added to the exemplar list, the retryability table,
//! and (via the round-trip assertion) the wire codec.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

use mogul_serve::net::wire::{decode_serve_error, encode_serve_error, WireError};
use mogul_serve::net::{NetClient, NetError};
use mogul_serve::{QueryRequest, ServeError};

use mogul_core::CoreError;

/// One exemplar of every `ServeError` variant. The inner match has no
/// wildcard arm: a new variant fails compilation here until it is added —
/// which is the point.
fn all_variants() -> Vec<ServeError> {
    let exemplars = vec![
        ServeError::Overloaded {
            queue_depth: 7,
            queue_capacity: 8,
        },
        ServeError::Draining,
        ServeError::BadRequest {
            reason: "k must be at least 1".into(),
        },
        ServeError::Index(CoreError::InvalidInput("singular factor".into())),
        ServeError::Config {
            reason: "workers must be at least 1".into(),
        },
        ServeError::Durability {
            reason: "wal append failed".into(),
        },
        ServeError::Incomplete {
            shards_answered: 2,
            shards_total: 4,
        },
    ];
    // Exhaustiveness guard: no wildcard. Adding a `ServeError` variant
    // breaks this match at compile time; extend `exemplars` (and the
    // retryability table below) when it does.
    for exemplar in &exemplars {
        match exemplar {
            ServeError::Overloaded { .. } => {}
            ServeError::Draining => {}
            ServeError::BadRequest { .. } => {}
            ServeError::Index(_) => {}
            ServeError::Config { .. } => {}
            ServeError::Durability { .. } => {}
            ServeError::Incomplete { .. } => {}
        }
    }
    exemplars
}

/// The contract table: which variants a failover client may retry against
/// another replica.
fn expected_retryable(error: &ServeError) -> bool {
    match error {
        // Transient server states: another replica (or a later moment) may
        // answer.
        ServeError::Overloaded { .. } => true,
        ServeError::Draining => true,
        // A degraded replica is not proof every replica is degraded.
        ServeError::Incomplete { .. } => true,
        // The request (or the deployment) is at fault; no amount of
        // retrying fixes it.
        ServeError::BadRequest { .. } => false,
        ServeError::Index(_) => false,
        ServeError::Config { .. } => false,
        ServeError::Durability { .. } => false,
    }
}

#[test]
fn retryability_matrix_is_exactly_the_documented_table() {
    let variants = all_variants();
    assert_eq!(variants.len(), 7, "update this test alongside ServeError");
    for error in &variants {
        assert_eq!(
            error.is_retryable(),
            expected_retryable(error),
            "retryability changed for {error:?} — the failover tier depends on this table"
        );
    }
}

#[test]
fn every_variant_round_trips_the_wire_with_retryability_intact() {
    for error in all_variants() {
        let mut payload = Vec::new();
        encode_serve_error(&error, &mut payload);
        let decoded = decode_serve_error(&payload)
            .unwrap_or_else(|err| panic!("variant {error:?} failed to decode: {err}"));
        assert_eq!(
            std::mem::discriminant(&decoded),
            std::mem::discriminant(&error),
            "variant changed across the wire: {error:?} -> {decoded:?}"
        );
        assert_eq!(
            decoded.is_retryable(),
            error.is_retryable(),
            "retryability changed across the wire for {error:?}"
        );
    }
}

#[test]
fn net_error_classes_follow_the_serve_contract() {
    for error in all_variants() {
        let expected = error.is_retryable();
        assert_eq!(
            NetError::Serve(error).is_retryable(),
            expected,
            "NetError::Serve must delegate to ServeError::is_retryable"
        );
    }
    // Transport and protocol trouble says nothing about the request:
    // always retryable.
    assert!(NetError::Wire(WireError::TimedOut {
        detail: "read".into()
    })
    .is_retryable());
    assert!(NetError::Wire(WireError::Payload("corrupt".into())).is_retryable());
    assert!(NetError::Protocol("unexpected frame".into()).is_retryable());
}

#[test]
fn io_timeouts_map_to_the_typed_timed_out_variant() {
    for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
        let wire = WireError::from(std::io::Error::new(kind, "socket timeout"));
        assert!(
            matches!(wire, WireError::TimedOut { .. }),
            "{kind:?} must map to WireError::TimedOut, got {wire:?}"
        );
    }
    let other = WireError::from(std::io::Error::new(
        std::io::ErrorKind::ConnectionReset,
        "reset",
    ));
    assert!(matches!(other, WireError::Io { .. }));
}

#[test]
fn a_stalled_server_fails_the_query_typed_within_the_read_timeout() {
    // A listener that accepts, reads the request, and never answers — the
    // unbounded-block case `NetClient::query` used to hang on.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut buf = [0u8; 1024];
        // Swallow the request, then stall until the client gives up.
        let _ = sock.read(&mut buf);
        std::thread::sleep(Duration::from_secs(5));
        let _ = sock.write_all(&buf[..0]);
    });

    let mut client = NetClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let request = QueryRequest::InDatabase { node: 0, k: 1 };
    let started = Instant::now();
    let err = client.query(&request).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, NetError::Wire(WireError::TimedOut { .. })),
        "expected typed timeout, got {err:?}"
    );
    assert!(err.is_retryable(), "a timeout must be retryable");
    assert!(
        elapsed < Duration::from_secs(2),
        "timeout must fire near the deadline, took {elapsed:?}"
    );
    drop(client);
    drop(stall); // detached; dies with its socket after its sleep
}
