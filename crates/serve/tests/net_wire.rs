//! Adversarial coverage of the `MGW1` wire codec.
//!
//! The contract under test: the codec **never panics** and **never trusts
//! the peer** — every malformed input (truncation at any byte, a flipped
//! bit anywhere, hostile declared lengths, future protocol versions,
//! unknown frame kinds, garbage payloads) is answered with a typed
//! [`WireError`], and frames that do decode round-trip bit-identically.

use mogul_core::{CoreError, OutOfSampleResult, RankedNode, SearchStats, TopKResult};
use mogul_serve::net::wire::{
    decode_query_request, decode_query_response, decode_serve_error, decode_stats_report,
    encode_frame, encode_query_request, encode_query_response, encode_serve_error,
    encode_stats_report, read_frame,
};
use mogul_serve::net::{Frame, FrameKind, ServerStatsReport, WireError, MAX_FRAME_PAYLOAD};
use mogul_serve::{QueryRequest, QueryResponse, ServeError};
use std::io::Cursor;

fn decode_one(bytes: &[u8]) -> Result<Option<Frame>, WireError> {
    read_frame(&mut Cursor::new(bytes))
}

fn sample_frame() -> Vec<u8> {
    let mut payload = Vec::new();
    encode_query_request(&QueryRequest::in_database(42, 10), &mut payload);
    encode_frame(FrameKind::Query, 7, &payload).unwrap()
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

#[test]
fn frames_of_every_kind_round_trip() {
    for kind in [
        FrameKind::Query,
        FrameKind::Stats,
        FrameKind::Drain,
        FrameKind::Answer,
        FrameKind::StatsReport,
        FrameKind::Error,
        FrameKind::DrainStarted,
    ] {
        for payload in [&b""[..], &b"x"[..], &[0u8; 1024][..]] {
            let bytes = encode_frame(kind, 0xdead_beef_cafe_f00d, payload).unwrap();
            let frame = decode_one(&bytes).unwrap().unwrap();
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.request_id, 0xdead_beef_cafe_f00d);
            assert_eq!(frame.payload, payload);
        }
    }
}

#[test]
fn consecutive_frames_stream_off_one_reader() {
    let mut stream = Vec::new();
    stream.extend_from_slice(&encode_frame(FrameKind::Stats, 1, &[]).unwrap());
    stream.extend_from_slice(&sample_frame());
    stream.extend_from_slice(&encode_frame(FrameKind::Drain, 3, &[]).unwrap());
    let mut cursor = Cursor::new(stream);
    assert_eq!(
        read_frame(&mut cursor).unwrap().unwrap().kind,
        FrameKind::Stats
    );
    assert_eq!(
        read_frame(&mut cursor).unwrap().unwrap().kind,
        FrameKind::Query
    );
    assert_eq!(
        read_frame(&mut cursor).unwrap().unwrap().kind,
        FrameKind::Drain
    );
    // Clean EOF at a frame boundary is the normal end of a connection.
    assert_eq!(read_frame(&mut cursor).unwrap(), None);
}

#[test]
fn query_request_payloads_round_trip() {
    let extreme = vec![
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::MIN,
        1e-308, // subnormal territory on the way down
        std::f64::consts::PI,
    ];
    for request in [
        QueryRequest::in_database(0, 1),
        QueryRequest::in_database(usize::MAX, usize::MAX),
        QueryRequest::out_of_sample(Vec::<f64>::new(), 3),
        QueryRequest::out_of_sample(extreme, 10),
    ] {
        let mut payload = Vec::new();
        encode_query_request(&request, &mut payload);
        let back = decode_query_request(&payload).unwrap();
        assert_eq!(back, request);
    }
}

#[test]
fn query_response_payloads_round_trip_bit_identically() {
    // Scores chosen to be unrepresentable in any decimal shortcut: raw-bits
    // transport must reproduce them with `==`.
    let top_k = TopKResult::new(vec![
        RankedNode {
            node: 3,
            score: 0.1 + 0.2, // famously not 0.3
        },
        RankedNode {
            node: 9,
            score: f64::MIN_POSITIVE,
        },
        RankedNode {
            node: 1,
            score: -1.0 / 3.0,
        },
    ]);
    let in_db = QueryResponse::InDatabase(top_k.clone());
    let mut payload = Vec::new();
    encode_query_response(&in_db, &mut payload);
    match decode_query_response(&payload).unwrap() {
        QueryResponse::InDatabase(back) => assert_eq!(back, top_k),
        other => panic!("wrong variant: {other:?}"),
    }

    let oos = QueryResponse::OutOfSample(Box::new(OutOfSampleResult {
        top_k: top_k.clone(),
        neighbors: vec![5, 0, 11],
        nearest_neighbor_secs: 1.5e-4,
        top_k_secs: 0.25 * f64::EPSILON,
        stats: SearchStats {
            clusters_considered: 7,
            clusters_pruned: 5,
            nodes_scored: 123,
            bound_evaluations: 456,
        },
    }));
    let mut payload = Vec::new();
    encode_query_response(&oos, &mut payload);
    match decode_query_response(&payload).unwrap() {
        QueryResponse::OutOfSample(back) => {
            assert_eq!(back.top_k, top_k);
            assert_eq!(back.neighbors, vec![5, 0, 11]);
            assert_eq!(back.nearest_neighbor_secs.to_bits(), 1.5e-4f64.to_bits());
            assert_eq!(back.top_k_secs.to_bits(), (0.25 * f64::EPSILON).to_bits());
            assert_eq!(back.stats.nodes_scored, 123);
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn serve_error_payloads_round_trip() {
    let cases = vec![
        ServeError::Overloaded {
            queue_depth: 128,
            queue_capacity: 128,
        },
        ServeError::Draining,
        ServeError::BadRequest {
            reason: "k must be at least 1 — and unicode survives: ∎".into(),
        },
        ServeError::Config {
            reason: "queue_capacity must be at least 1".into(),
        },
        ServeError::Durability {
            reason: "i/o failure during append wal record: disk full".into(),
        },
    ];
    for error in cases {
        let mut payload = Vec::new();
        encode_serve_error(&error, &mut payload);
        assert_eq!(decode_serve_error(&payload).unwrap(), error);
    }
    // Index errors travel as their message; the variant survives, the inner
    // structure collapses to InvalidInput (documented lossy).
    let index = ServeError::Index(CoreError::InvalidInput("singular factor".into()));
    let mut payload = Vec::new();
    encode_serve_error(&index, &mut payload);
    match decode_serve_error(&payload).unwrap() {
        ServeError::Index(inner) => assert!(inner.to_string().contains("singular factor")),
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn stats_report_payload_round_trips() {
    let report = ServerStatsReport {
        epoch: 17,
        items: 100_000,
        uptime_secs: 12.75,
        connections: 3,
        queue_depth: 9,
        queue_capacity: 1024,
        inflight: 12,
        completed: 987_654,
        shed_overloaded: 321,
        shed_draining: 2,
        bad_requests: 45,
        index_errors: 1,
        p50_us: 83.5,
        p95_us: 412.25,
        qps: 11_930.5,
        rebuild_support: 512,
        rebuild_fraction: 0.256,
        draining: true,
        shed_deadline: 7,
    };
    let mut payload = Vec::new();
    encode_stats_report(&report, &mut payload);
    assert_eq!(decode_stats_report(&payload).unwrap(), report);
}

#[test]
fn stats_report_without_trailing_shed_deadline_decodes_zero() {
    // A v1 server never wrote the trailing `shed_deadline` field; a new
    // client must decode its payloads with the counter defaulting to zero.
    let mut report = ServerStatsReport {
        epoch: 3,
        items: 10,
        uptime_secs: 1.0,
        connections: 1,
        queue_depth: 0,
        queue_capacity: 64,
        inflight: 0,
        completed: 5,
        shed_overloaded: 0,
        shed_draining: 0,
        bad_requests: 0,
        index_errors: 0,
        p50_us: 10.0,
        p95_us: 20.0,
        qps: 100.0,
        rebuild_support: 0,
        rebuild_fraction: 0.0,
        draining: false,
        shed_deadline: 42,
    };
    let mut payload = Vec::new();
    encode_stats_report(&report, &mut payload);
    // Strip the trailing u64 to reconstruct the old-server payload.
    payload.truncate(payload.len() - 8);
    let decoded = decode_stats_report(&payload).unwrap();
    report.shed_deadline = 0;
    assert_eq!(decoded, report);
}

// ---------------------------------------------------------------------------
// Hostile input
// ---------------------------------------------------------------------------

#[test]
fn truncation_at_every_byte_is_a_typed_error_never_a_panic() {
    let bytes = sample_frame();
    for cut in 1..bytes.len() {
        match decode_one(&bytes[..cut]) {
            Err(WireError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    // Zero bytes is a clean close, not an error.
    assert_eq!(decode_one(&[]).unwrap(), None);
}

#[test]
fn a_flipped_bit_anywhere_is_a_typed_error_never_a_panic() {
    let bytes = sample_frame();
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            let result = decode_one(&corrupt);
            assert!(
                result.is_err(),
                "flipping bit {bit} of byte {i} must not yield a valid frame"
            );
        }
    }
}

#[test]
fn checksum_guards_the_payload_bytes() {
    let bytes = sample_frame();
    // Flip a payload byte (past the header, before the trailer): only the
    // checksum can catch this.
    let mut corrupt = bytes.clone();
    let idx = 19 + 2;
    corrupt[idx] ^= 0x40;
    match decode_one(&corrupt) {
        Err(WireError::ChecksumMismatch { expected, actual }) => assert_ne!(expected, actual),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn hostile_declared_lengths_are_rejected_before_allocation() {
    // A valid header with payload_len = u32::MAX: must fail fast with
    // FrameTooLarge, not attempt a 4 GiB allocation or a 4 GiB read.
    let mut bytes = sample_frame();
    bytes[15..19].copy_from_slice(&u32::MAX.to_le_bytes());
    match decode_one(&bytes) {
        Err(WireError::FrameTooLarge { declared, max }) => {
            assert_eq!(declared, u32::MAX as usize);
            assert_eq!(max, MAX_FRAME_PAYLOAD);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // Just past the bound is rejected; the bound itself is the contract.
    let mut bytes = sample_frame();
    bytes[15..19].copy_from_slice(&((MAX_FRAME_PAYLOAD as u32) + 1).to_le_bytes());
    assert!(matches!(
        decode_one(&bytes),
        Err(WireError::FrameTooLarge { .. })
    ));
}

#[test]
fn oversized_payloads_are_rejected_at_encode_time_too() {
    let huge = vec![0u8; MAX_FRAME_PAYLOAD + 1];
    assert!(matches!(
        encode_frame(FrameKind::Query, 1, &huge),
        Err(WireError::FrameTooLarge { .. })
    ));
}

#[test]
fn future_versions_and_unknown_kinds_are_typed_errors() {
    let mut bytes = sample_frame();
    bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
    assert_eq!(
        decode_one(&bytes),
        Err(WireError::UnsupportedVersion { got: 2 })
    );

    let mut bytes = sample_frame();
    bytes[6] = 0x7f;
    assert_eq!(
        decode_one(&bytes),
        Err(WireError::UnknownKind { got: 0x7f })
    );

    let mut bytes = sample_frame();
    bytes[..4].copy_from_slice(b"HTTP");
    assert_eq!(
        decode_one(&bytes),
        Err(WireError::BadMagic { got: *b"HTTP" })
    );
}

#[test]
fn garbage_payloads_fail_their_codec_with_typed_errors() {
    // Unknown tag.
    assert!(matches!(
        decode_query_request(&[99]),
        Err(WireError::Payload(_))
    ));
    // Empty payload where a tag is required.
    assert!(matches!(
        decode_query_request(&[]),
        Err(WireError::Payload(_))
    ));
    assert!(matches!(
        decode_query_response(&[]),
        Err(WireError::Payload(_))
    ));
    assert!(matches!(
        decode_serve_error(&[]),
        Err(WireError::Payload(_))
    ));
    assert!(matches!(
        decode_stats_report(&[]),
        Err(WireError::Payload(_))
    ));
    // A count that promises more elements than the payload holds: rejected
    // by the pre-allocation length check inherited from the MOG1 reader.
    let mut payload = Vec::new();
    payload.push(1u8); // out-of-sample tag
    payload.extend_from_slice(&5u64.to_le_bytes()); // k
    payload.extend_from_slice(&u64::MAX.to_le_bytes()); // feature count: hostile
    assert!(matches!(
        decode_query_request(&payload),
        Err(WireError::Payload(_))
    ));
    // Trailing bytes after a complete decode are an error, not ignored.
    let mut payload = Vec::new();
    encode_query_request(&QueryRequest::in_database(1, 2), &mut payload);
    payload.push(0);
    assert!(matches!(
        decode_query_request(&payload),
        Err(WireError::Payload(_))
    ));
}

#[test]
fn random_byte_soup_never_panics_the_frame_reader() {
    // Deterministic xorshift soup: enough to sweep a wide spread of headers.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut soup = Vec::with_capacity(1 << 12);
    for _ in 0..(1 << 12) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        soup.push((state >> 56) as u8);
    }
    for start in 0..256 {
        let _ = decode_one(&soup[start..]); // must return, never panic
    }
}
