//! End-to-end coverage of the network front door over real sockets.
//!
//! Contracts under test:
//!
//! * answers over the socket are **bit-identical** to in-process answers;
//! * overload produces **typed `Overloaded` frames** with a bounded queue —
//!   never a panic, never an unbounded buffer;
//! * malformed requests are rejected with typed `BadRequest` (including the
//!   admission-time feature-dimension check);
//! * drain is graceful: admitted queries complete, then the server exits.

use mogul_core::RetrievalEngine;
use mogul_data::coil::{coil_like, CoilLikeConfig};
use mogul_data::Dataset;
use mogul_serve::net::{NetClient, NetError, NetHandle, NetServer};
use mogul_serve::{QueryRequest, QueryResponse, QueryServer, ServeError, ServeOptions};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Everything a test needs about a freshly started server: the in-process
/// server (for reference answers), the control handle, the run-thread join
/// handle, and the corpus it serves.
type Harness = (
    Arc<QueryServer>,
    NetHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
    Dataset,
    Vec<(Vec<f64>, usize)>,
);

/// A small COIL-like corpus plus held-out query vectors.
fn dataset() -> (Dataset, Vec<(Vec<f64>, usize)>) {
    let data = coil_like(&CoilLikeConfig {
        num_objects: 6,
        poses_per_object: 16,
        dim: 12,
        noise: 0.02,
        ..Default::default()
    })
    .unwrap();
    data.split_out_queries(6, 11).unwrap()
}

/// Stand up a server on an OS-assigned port; returns the in-process server
/// (for reference answers), the control handle, and the run-thread join
/// handle.
fn start_server(options: ServeOptions) -> Harness {
    let (db, held_out) = dataset();
    let engine = RetrievalEngine::builder()
        .knn_k(4)
        .build(db.features().to_vec())
        .unwrap();
    let server = Arc::new(QueryServer::from_engine(engine, options));
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&server), options).unwrap();
    let handle = net.handle();
    let join = std::thread::spawn(move || net.run());
    (server, handle, join, db, held_out)
}

fn connect(handle: &NetHandle) -> NetClient {
    let client = NetClient::connect(handle.local_addr()).unwrap();
    // A hung server should fail the test, not hang it.
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client
}

#[test]
fn socket_answers_are_bit_identical_to_in_process_answers() {
    let options = ServeOptions::builder().workers(2).build().unwrap();
    let (server, handle, join, db, held_out) = start_server(options);
    let mut client = connect(&handle);

    let mut requests = Vec::new();
    for (i, (feature, _)) in held_out.iter().enumerate() {
        requests.push(QueryRequest::in_database(i * 13 % db.len(), 3 + i % 5));
        requests.push(QueryRequest::out_of_sample(feature.clone(), 3 + i % 5));
    }
    for request in &requests {
        let over_wire = client.query(request).unwrap();
        let in_process = server.query(request).unwrap();
        match (&over_wire, &in_process) {
            (QueryResponse::InDatabase(a), QueryResponse::InDatabase(b)) => {
                assert_eq!(a, b, "scores must compare == after the wire round trip")
            }
            (QueryResponse::OutOfSample(a), QueryResponse::OutOfSample(b)) => {
                assert_eq!(a.top_k, b.top_k);
                assert_eq!(a.neighbors, b.neighbors);
                assert_eq!(a.stats, b.stats);
            }
            _ => panic!("response kind diverged from the request kind"),
        }
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, requests.len() as u64);
    assert_eq!(stats.items, db.len() as u64);
    assert_eq!(stats.shed_overloaded, 0);
    assert_eq!(stats.bad_requests, 0);
    assert!(stats.p50_us > 0.0);
    assert!(stats.p95_us >= stats.p50_us);
    assert!(!stats.draining);

    handle.drain();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_get_typed_bad_request_frames() {
    let options = ServeOptions::builder().workers(1).build().unwrap();
    let (_server, handle, join, db, _held_out) = start_server(options);
    let mut client = connect(&handle);
    let dim = 12usize;

    // Unknown id, k = 0, wrong feature dimension (the admission-time check),
    // and a non-finite component: all typed BadRequest, all without
    // occupying an admission slot.
    for request in [
        QueryRequest::in_database(db.len() + 99, 5),
        QueryRequest::in_database(0, 0),
        QueryRequest::out_of_sample(vec![0.5; dim + 1], 5),
        QueryRequest::out_of_sample(vec![f64::INFINITY; dim], 5),
    ] {
        match client.query(&request) {
            Err(NetError::Serve(ServeError::BadRequest { reason })) => {
                assert!(!reason.is_empty())
            }
            other => panic!("expected a BadRequest frame, got {other:?}"),
        }
    }

    // The connection survives rejections; a healthy request still answers.
    let ok = client.query(&QueryRequest::in_database(0, 5)).unwrap();
    assert_eq!(ok.top_k().len(), 5);

    let stats = client.stats().unwrap();
    assert_eq!(stats.bad_requests, 4);
    assert_eq!(stats.completed, 1);

    handle.drain();
    join.join().unwrap().unwrap();
}

#[test]
fn garbage_bytes_close_the_connection_but_not_the_server() {
    let options = ServeOptions::builder().workers(1).build().unwrap();
    let (_server, handle, join, _db, _held_out) = start_server(options);

    // Speak HTTP at it.
    let mut raw = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\nHost: mogul\r\n\r\n")
        .unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // The server answers with one typed error frame and closes; the exact
    // read outcome (error frame then EOF, or just EOF/reset) may race, but
    // the server must survive.
    let mut sink = Vec::new();
    let _ = std::io::Read::read_to_end(&mut raw, &mut sink);
    drop(raw);

    // A fresh, well-formed connection still works.
    let mut client = connect(&handle);
    let ok = client.query(&QueryRequest::in_database(1, 3)).unwrap();
    assert_eq!(ok.top_k().len(), 3);

    handle.drain();
    join.join().unwrap().unwrap();
}

#[test]
fn overload_burst_sheds_typed_overloaded_frames_and_answers_the_rest() {
    // One worker and a 4-deep queue: a pipelined burst far beyond capacity
    // must shed most requests with typed Overloaded frames while every
    // admitted request is answered. Nothing may panic, hang, or go
    // unanswered.
    let options = ServeOptions::builder()
        .workers(1)
        .queue_capacity(4)
        .max_inflight_per_conn(4)
        .build()
        .unwrap();
    let (_server, handle, join, db, _held_out) = start_server(options);
    let total = 3000usize;

    let sender = connect(&handle);
    let mut receiver = sender.try_clone().unwrap();
    receiver
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut sender = sender;

    let reader = std::thread::spawn(move || {
        let mut ok = 0usize;
        let mut overloaded = 0usize;
        for _ in 0..total {
            let (_id, answer) = receiver.recv_answer().expect("every request gets a frame");
            match answer {
                Ok(response) => {
                    assert_eq!(response.top_k().len(), 5);
                    ok += 1;
                }
                Err(ServeError::Overloaded {
                    queue_depth,
                    queue_capacity,
                }) => {
                    assert_eq!(queue_capacity, 4);
                    assert!(queue_depth <= queue_capacity);
                    overloaded += 1;
                }
                Err(other) => panic!("unexpected rejection under burst: {other:?}"),
            }
        }
        (ok, overloaded)
    });

    for i in 0..total {
        sender
            .send_query(&QueryRequest::in_database(i % db.len(), 5))
            .unwrap();
    }
    let (ok, overloaded) = reader.join().unwrap();

    assert_eq!(
        ok + overloaded,
        total,
        "every request is answered exactly once"
    );
    assert!(ok >= 1, "at least the head of the burst must be served");
    assert!(
        overloaded > 0,
        "a 10x+ burst against a 4-deep queue must shed"
    );

    let mut client = connect(&handle);
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, ok as u64);
    assert_eq!(stats.shed_overloaded, overloaded as u64);
    assert_eq!(stats.queue_capacity, 4);
    assert!(stats.queue_depth <= 4, "the queue bound held under burst");

    handle.drain();
    join.join().unwrap().unwrap();
}

#[test]
fn drain_completes_admitted_work_then_rejects_and_exits() {
    let options = ServeOptions::builder().workers(2).build().unwrap();
    let (_server, handle, join, db, _held_out) = start_server(options);

    // Pipeline a handful of queries, then drain from a second connection
    // before reading the answers: every admitted query must still be
    // answered.
    let sender = connect(&handle);
    let mut receiver = sender.try_clone().unwrap();
    let mut sender = sender;
    let admitted = 16usize;
    for i in 0..admitted {
        sender
            .send_query(&QueryRequest::in_database(i % db.len(), 3))
            .unwrap();
    }

    let mut control = connect(&handle);
    control.drain_server().unwrap();
    assert!(handle.is_draining());

    let mut answered = 0usize;
    for _ in 0..admitted {
        match receiver.recv_answer() {
            Ok((_id, Ok(response))) => {
                assert_eq!(response.top_k().len(), 3);
                answered += 1;
            }
            // A request that raced the drain flag is shed with the typed
            // Draining error — acceptable; silence or a panic is not.
            Ok((_id, Err(ServeError::Draining))) => {}
            Ok((_id, Err(other))) => panic!("unexpected error during drain: {other:?}"),
            Err(err) => panic!("no answer for an admitted request: {err}"),
        }
    }
    assert!(answered >= 1);

    // run() returns once the drain completes.
    join.join().unwrap().unwrap();

    // After drain, new connections are refused or immediately closed.
    match NetClient::connect(handle.local_addr()) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            match late.query(&QueryRequest::in_database(0, 3)) {
                Err(_) => {} // EOF / reset / Draining — all acceptable
                Ok(_) => panic!("a drained server must not answer new queries"),
            }
        }
    }
}

#[test]
fn wire_drain_frame_equals_handle_drain() {
    let options = ServeOptions::builder().workers(1).build().unwrap();
    let (_server, handle, join, _db, _held_out) = start_server(options);
    let mut client = connect(&handle);
    client.drain_server().unwrap();
    join.join().unwrap().unwrap();
    assert!(handle.is_draining());
    // Post-drain stats are still readable out-of-band through the handle.
    let report = handle.stats_report();
    assert!(report.draining);
    assert_eq!(report.connections, 0);
}
