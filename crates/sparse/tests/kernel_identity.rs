//! SIMD-vs-scalar bit-identity and parallel-vs-serial determinism.
//!
//! The kernel engine's exactness contract (`mogul_sparse::kernel`) promises
//! that the AVX2 path performs per lane exactly the IEEE-754 operations of
//! the scalar path, in the same order — so every comparison here is exact
//! `==` on `f64`, never a tolerance. Without `--features simd` (or on a CPU
//! without AVX2) the `KernelKind::Simd` request falls back to the scalar
//! kernel and the assertions hold trivially; under the feature matrix the
//! same battery pins the real AVX2 instructions.
//!
//! The second half pins the wave-parallel factorizations: a worker count
//! must never change a bit of the factors (or the error reported on
//! breakdown), because the waves only ever parallelize provably disjoint
//! rows.

use mogul_sparse::kernel::KernelKind;
use mogul_sparse::triangular::{
    ldl_solve_multi_into_with, scale_diag_multi_into_with, solve_lower_multi_into_with,
    solve_unit_lower_multi_into_with, solve_unit_upper_multi_into_with,
    solve_upper_multi_into_with,
};
use mogul_sparse::{
    complete_ldl_threaded, incomplete_ldl_threaded, CooMatrix, CsrMatrix, MultiSolveWorkspace,
    SparseError,
};
use proptest::prelude::*;

/// A random symmetric diagonally-dominant (hence SPD) matrix built from an
/// edge list, mimicking the `I − α S` matrices Mogul factorizes.
fn spd_matrix(n: usize, edges: &[(usize, usize)], weight: f64) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut degree = vec![0.0; n];
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        coo.push_symmetric(a, b, -weight).unwrap();
        degree[a] += weight;
        degree[b] += weight;
    }
    for (i, &d) in degree.iter().enumerate() {
        coo.push(i, i, d + 1.0).unwrap();
    }
    coo.to_csr()
}

fn edge_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (4usize..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 1..(3 * n));
        (Just(n), edges)
    })
}

/// A deterministic "ragged" panel whose values round at every operation.
fn panel(n: usize, width: usize, salt: u64) -> Vec<f64> {
    (0..n * width)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(salt);
            (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every multi-RHS entry point produces bit-identical panels under the
    /// scalar and SIMD kernels, across narrow, full, misaligned and blocked
    /// (wider than `MAX_PANEL_WIDTH`) widths, for both factorization
    /// flavors' factors.
    #[test]
    fn simd_solves_are_bit_identical_to_scalar((n, edges) in edge_strategy(20), w in 0.05f64..0.45) {
        let matrix = spd_matrix(n, &edges, w);
        let complete = complete_ldl_threaded(&matrix, 1).unwrap().factors;
        let incomplete = incomplete_ldl_threaded(&matrix, 1).unwrap();
        let mut ws = MultiSolveWorkspace::new();
        for factors in [&complete, &incomplete] {
            let (l, u, d) = (&factors.l, &factors.u, &factors.d);
            // Widths 1..=8 cover every lane remainder of the 4-wide AVX2
            // chunking; 17 exercises the cache-blocked gather/scatter path.
            for width in [1usize, 2, 3, 4, 5, 6, 7, 8, 17] {
                let b = panel(n, width, width as u64);
                let (mut x_s, mut x_v) = (Vec::new(), Vec::new());
                for (kind, x) in [(KernelKind::Scalar, &mut x_s), (KernelKind::Simd, &mut x_v)] {
                    solve_unit_lower_multi_into_with(kind, l, &b, width, x).unwrap();
                }
                prop_assert_eq!(&x_s, &x_v, "unit_lower width {}", width);
                for (kind, x) in [(KernelKind::Scalar, &mut x_s), (KernelKind::Simd, &mut x_v)] {
                    solve_unit_upper_multi_into_with(kind, u, &b, width, x).unwrap();
                }
                prop_assert_eq!(&x_s, &x_v, "unit_upper width {}", width);
                for (kind, x) in [(KernelKind::Scalar, &mut x_s), (KernelKind::Simd, &mut x_v)] {
                    ldl_solve_multi_into_with(kind, l, u, d, &b, width, &mut ws, x).unwrap();
                }
                prop_assert_eq!(&x_s, &x_v, "ldl width {}", width);
                let (mut p_s, mut p_v) = (b.clone(), b);
                scale_diag_multi_into_with(KernelKind::Scalar, d, width, &mut p_s).unwrap();
                scale_diag_multi_into_with(KernelKind::Simd, d, width, &mut p_v).unwrap();
                prop_assert_eq!(&p_s, &p_v, "scale_diag width {}", width);
            }
        }
        // The non-unit solves over the lower factor with explicit diagonal
        // (the substitutions of the unrestricted baselines).
        let mut with_diag = CooMatrix::new(n, n);
        for (i, j, v) in complete.l.iter() {
            if i != j {
                with_diag.push(i, j, v).unwrap();
            }
        }
        for (i, &di) in complete.d.iter().enumerate() {
            with_diag.push(i, i, di + 1.5).unwrap();
        }
        let lower = with_diag.to_csr();
        let upper = lower.transpose();
        for width in [3usize, 8, 17] {
            let b = panel(n, width, 99);
            let (mut x_s, mut x_v) = (Vec::new(), Vec::new());
            for (kind, x) in [(KernelKind::Scalar, &mut x_s), (KernelKind::Simd, &mut x_v)] {
                solve_lower_multi_into_with(kind, &lower, &b, width, x).unwrap();
            }
            prop_assert_eq!(&x_s, &x_v, "lower width {}", width);
            for (kind, x) in [(KernelKind::Scalar, &mut x_s), (KernelKind::Simd, &mut x_v)] {
                solve_upper_multi_into_with(kind, &upper, &b, width, x).unwrap();
            }
            prop_assert_eq!(&x_s, &x_v, "upper width {}", width);
        }
    }
}

/// A graph large and wide enough to actually engage the wave-parallel
/// numeric path (`n ≥ PAR_MIN_DIM = 1024`, mean wave width ≥ 8): many small
/// rings — shallow elimination trees, hundreds of rows per wave — sprinkled
/// with a few cross-ring edges.
fn wide_wave_matrix(rings: usize, ring_len: usize, weight: f64) -> CsrMatrix {
    let n = rings * ring_len;
    let mut edges = Vec::new();
    for r in 0..rings {
        let base = r * ring_len;
        for i in 0..ring_len {
            edges.push((base + i, base + (i + 1) % ring_len));
        }
        if r + 1 < rings && r % 7 == 0 {
            edges.push((base, base + ring_len));
        }
    }
    spd_matrix(n, &edges, weight)
}

#[test]
fn parallel_factorizations_match_serial_bit_for_bit() {
    // 1280 nodes ≥ PAR_MIN_DIM; 256 rings give wave widths in the hundreds.
    let matrix = wide_wave_matrix(256, 5, 0.2);
    let serial_c = complete_ldl_threaded(&matrix, 1).unwrap();
    let serial_i = incomplete_ldl_threaded(&matrix, 1).unwrap();
    for threads in [2usize, 4, 8] {
        let par_c = complete_ldl_threaded(&matrix, threads).unwrap();
        assert_eq!(
            serial_c.factors.d, par_c.factors.d,
            "complete d, {threads} threads"
        );
        assert_eq!(
            serial_c.factors.l.to_dense().data(),
            par_c.factors.l.to_dense().data(),
            "complete l, {threads} threads"
        );
        assert_eq!(serial_c.factor_lower_nnz, par_c.factor_lower_nnz);
        let par_i = incomplete_ldl_threaded(&matrix, threads).unwrap();
        assert_eq!(serial_i.d, par_i.d, "incomplete d, {threads} threads");
        assert_eq!(
            serial_i.l.to_dense().data(),
            par_i.l.to_dense().data(),
            "incomplete l, {threads} threads"
        );
        assert_eq!(serial_i.boosted_pivots, par_i.boosted_pivots);
    }
}

#[test]
fn parallel_breakdown_reports_the_serial_error() {
    // A big well-conditioned wave-parallel matrix plus one exactly singular
    // 2×2 block `[[1, -1], [-1, 1]]` as its own component: eliminating the
    // second block node produces pivot `1 - 1 = 0` exactly, in serial and in
    // every wave schedule.
    let base = wide_wave_matrix(256, 5, 0.2);
    let n = base.nrows() + 2;
    let (a, b) = (n - 2, n - 1);
    let mut coo = CooMatrix::new(n, n);
    for (i, j, v) in base.iter() {
        coo.push(i, j, v).unwrap();
    }
    coo.push(a, a, 1.0).unwrap();
    coo.push(b, b, 1.0).unwrap();
    coo.push_symmetric(a, b, -1.0).unwrap();
    let matrix = coo.to_csr();
    let serial = complete_ldl_threaded(&matrix, 1).unwrap_err();
    let SparseError::Breakdown { index, .. } = serial else {
        panic!("expected Breakdown, got {serial:?}");
    };
    assert_eq!(index, b);
    for threads in [2usize, 8] {
        let parallel = complete_ldl_threaded(&matrix, threads).unwrap_err();
        let SparseError::Breakdown {
            index: par_index, ..
        } = parallel
        else {
            panic!("expected Breakdown, got {parallel:?}");
        };
        assert_eq!(index, par_index, "{threads} threads");
    }
}
