//! Property-based tests of the linear-algebra kernels.

use mogul_sparse::triangular::{ldl_solve, solve_unit_lower, solve_unit_upper};
use mogul_sparse::vector::max_abs_diff;
use mogul_sparse::{complete_ldl, incomplete_ldl, CooMatrix, CsrMatrix, Permutation};
use proptest::prelude::*;

/// A random symmetric diagonally-dominant (hence SPD) matrix built from an
/// edge list, mimicking the `I − α S` matrices Mogul factorizes.
fn spd_matrix(n: usize, edges: &[(usize, usize)], weight: f64) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut degree = vec![0.0; n];
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        coo.push_symmetric(a, b, -weight).unwrap();
        degree[a] += weight;
        degree[b] += weight;
    }
    for (i, &d) in degree.iter().enumerate() {
        coo.push(i, i, d + 1.0).unwrap();
    }
    coo.to_csr()
}

fn edge_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 1..(3 * n));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The complete LDLᵀ factorization reconstructs the input exactly and its
    /// solve inverts the matrix.
    #[test]
    fn complete_ldl_reconstructs_and_solves((n, edges) in edge_strategy(24), w in 0.05f64..0.45) {
        let matrix = spd_matrix(n, &edges, w);
        let factored = complete_ldl(&matrix).unwrap();
        let recon = factored.factors.reconstruct_dense();
        prop_assert!(recon.max_abs_diff(&matrix.to_dense()).unwrap() < 1e-9);

        let b: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 17) as f64 / 17.0 - 0.5).collect();
        let x = factored.solve(&b).unwrap();
        let ax = matrix.matvec(&x).unwrap();
        prop_assert!(max_abs_diff(&ax, &b).unwrap() < 1e-8);
    }

    /// The incomplete factorization never creates entries outside the input
    /// pattern, matches the input exactly on diagonally stored positions when
    /// there is no fill to drop, and keeps positive pivots.
    #[test]
    fn incomplete_ldl_respects_the_pattern((n, edges) in edge_strategy(24), w in 0.05f64..0.45) {
        let matrix = spd_matrix(n, &edges, w);
        let factors = incomplete_ldl(&matrix).unwrap();
        for (i, j, v) in factors.l.iter() {
            if i != j && v != 0.0 {
                prop_assert!(matrix.get(i, j) != 0.0, "fill-in at ({i},{j})");
            }
        }
        prop_assert!(factors.d.iter().all(|&d| d > 0.0));
        // The factor solve is a contraction toward the true solution: applying
        // the reconstructed operator to the solve of b reproduces b.
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let x = factors.solve(&b).unwrap();
        let recon = factors.reconstruct_dense();
        let rx = recon.matvec(&x).unwrap();
        prop_assert!(max_abs_diff(&rx, &b).unwrap() < 1e-8);
    }

    /// Forward and back substitution invert triangular matrix-vector products.
    #[test]
    fn triangular_solves_invert_matvec((n, edges) in edge_strategy(20), w in 0.05f64..0.45) {
        let matrix = spd_matrix(n, &edges, w);
        let factors = complete_ldl(&matrix).unwrap().factors;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 + 3) % 11) as f64 / 11.0).collect();

        let lx = {
            // L x with unit diagonal.
            let mut out = factors.l.matvec(&x_true).unwrap();
            // matvec already includes the explicit unit diagonal.
            out.truncate(n);
            out
        };
        let x_back = solve_unit_lower(&factors.l, &lx).unwrap();
        prop_assert!(max_abs_diff(&x_back, &x_true).unwrap() < 1e-9);

        let ux = factors.u.matvec(&x_true).unwrap();
        let x_back = solve_unit_upper(&factors.u, &ux).unwrap();
        prop_assert!(max_abs_diff(&x_back, &x_true).unwrap() < 1e-9);

        // Composite LDLᵀ solve agrees with the dense solution.
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x1 = ldl_solve(&factors.l, &factors.u, &factors.d, &b).unwrap();
        let x2 = matrix.to_dense().solve(&b).unwrap();
        prop_assert!(max_abs_diff(&x1, &x2).unwrap() < 1e-8);
    }

    /// Symmetric permutation of a matrix commutes with permutation of vectors:
    /// `(P A Pᵀ)(P x) = P (A x)`, and permuting back restores the original.
    #[test]
    fn permutation_roundtrips(
        (n, edges) in edge_strategy(20),
        w in 0.05f64..0.45,
        seed in 0u64..1000,
    ) {
        let matrix = spd_matrix(n, &edges, w);
        // Deterministic shuffle from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let perm = Permutation::from_new_to_old(order).unwrap();
        let permuted = matrix.permute_symmetric(&perm).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();

        let ax = matrix.matvec(&x).unwrap();
        let permuted_result = permuted.matvec(&perm.permute_vec(&x).unwrap()).unwrap();
        let expected = perm.permute_vec(&ax).unwrap();
        prop_assert!(max_abs_diff(&permuted_result, &expected).unwrap() < 1e-10);

        // Round-trip of the matrix itself.
        let back = permuted.permute_symmetric(&perm.inverse()).unwrap();
        prop_assert!(back.to_dense().max_abs_diff(&matrix.to_dense()).unwrap() < 1e-12);
    }

    /// CSR matvec agrees with the dense reference for arbitrary patterns.
    #[test]
    fn csr_matvec_matches_dense(
        entries in proptest::collection::vec((0usize..12, 0usize..12, -5.0f64..5.0), 0..60),
    ) {
        let csr = CsrMatrix::from_triplets(12, 12, &entries).unwrap();
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 1.3).sin()).collect();
        let sparse = csr.matvec(&x).unwrap();
        let dense = csr.to_dense().matvec(&x).unwrap();
        prop_assert!(max_abs_diff(&sparse, &dense).unwrap() < 1e-10);
        let sparse_t = csr.matvec_transpose(&x).unwrap();
        let dense_t = csr.to_dense().transpose().matvec(&x).unwrap();
        prop_assert!(max_abs_diff(&sparse_t, &dense_t).unwrap() < 1e-10);
    }
}
