//! Sparsity-pattern statistics and visualization.
//!
//! Figure 6 of the paper plots the non-zero patterns of the factor `L` under
//! the Mogul node ordering versus a random ordering, showing the singly
//! bordered block-diagonal structure predicted by Lemma 3. This module
//! produces the equivalent information in text form: a coarse density grid,
//! an ASCII rendering, and block-structure summary statistics.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// Summary statistics of a sparse matrix pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    /// Matrix dimension (rows).
    pub nrows: usize,
    /// Matrix dimension (columns).
    pub ncols: usize,
    /// Total stored non-zeros.
    pub nnz: usize,
    /// Non-zeros strictly below the diagonal.
    pub lower_nnz: usize,
    /// Non-zeros strictly above the diagonal.
    pub upper_nnz: usize,
    /// Fraction of stored entries over the full dense size.
    pub density: f64,
    /// Average number of stored entries per row.
    pub avg_row_nnz: f64,
    /// Maximum number of stored entries in any row.
    pub max_row_nnz: usize,
    /// Average |col − row| over stored entries (bandwidth-like measure; small
    /// values indicate entries concentrated near the diagonal, i.e. a good
    /// cluster-aware ordering).
    pub mean_distance_from_diagonal: f64,
}

/// Compute [`PatternStats`] for a matrix.
pub fn pattern_stats(m: &CsrMatrix) -> PatternStats {
    let nrows = m.nrows();
    let ncols = m.ncols();
    let nnz = m.nnz();
    let mut lower = 0usize;
    let mut upper = 0usize;
    let mut dist_sum = 0.0f64;
    let mut max_row = 0usize;
    for i in 0..nrows {
        let (cols, _) = m.row(i);
        max_row = max_row.max(cols.len());
        for &j in cols {
            if j < i {
                lower += 1;
            } else if j > i {
                upper += 1;
            }
            dist_sum += (j as f64 - i as f64).abs();
        }
    }
    let dense_size = (nrows * ncols).max(1) as f64;
    PatternStats {
        nrows,
        ncols,
        nnz,
        lower_nnz: lower,
        upper_nnz: upper,
        density: nnz as f64 / dense_size,
        avg_row_nnz: if nrows == 0 {
            0.0
        } else {
            nnz as f64 / nrows as f64
        },
        max_row_nnz: max_row,
        mean_distance_from_diagonal: if nnz == 0 { 0.0 } else { dist_sum / nnz as f64 },
    }
}

/// Coarse density grid: the matrix is divided into `grid × grid` cells and
/// each cell holds the fraction of its positions that are stored non-zeros.
pub fn density_grid(m: &CsrMatrix, grid: usize) -> DenseMatrix {
    let grid = grid.max(1);
    let mut counts = DenseMatrix::zeros(grid, grid);
    if m.nrows() == 0 || m.ncols() == 0 {
        return counts;
    }
    let row_scale = grid as f64 / m.nrows() as f64;
    let col_scale = grid as f64 / m.ncols() as f64;
    for (i, j, _) in m.iter() {
        let gi = ((i as f64 * row_scale) as usize).min(grid - 1);
        let gj = ((j as f64 * col_scale) as usize).min(grid - 1);
        counts.add_to(gi, gj, 1.0);
    }
    // Normalize by the number of matrix positions each cell covers.
    let cell_rows = m.nrows() as f64 / grid as f64;
    let cell_cols = m.ncols() as f64 / grid as f64;
    let cell_positions = (cell_rows * cell_cols).max(1.0);
    for i in 0..grid {
        for j in 0..grid {
            let v = counts.get(i, j) / cell_positions;
            counts.set(i, j, v.min(1.0));
        }
    }
    counts
}

/// Render a density grid as ASCII art (one character per cell, darker
/// characters mean denser cells). Mirrors the paper's Figure 6 spy plots.
pub fn render_density_ascii(grid: &DenseMatrix) -> String {
    const SHADES: &[char] = &[' ', '.', ':', '+', '*', '#', '@'];
    let mut out = String::with_capacity((grid.ncols() + 1) * grid.nrows());
    for i in 0..grid.nrows() {
        for j in 0..grid.ncols() {
            let v = grid.get(i, j).clamp(0.0, 1.0);
            let idx = if v <= 0.0 {
                0
            } else {
                // Log-ish scale: tiny densities still show up as '.'.
                let scaled = (v.sqrt() * (SHADES.len() - 2) as f64).ceil() as usize;
                scaled.clamp(1, SHADES.len() - 1)
            };
            out.push(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

/// Fraction of strictly-lower non-zeros that fall inside the diagonal blocks
/// described by `block_boundaries` (cluster start offsets, ascending, ending
/// implicitly at `nrows`). A value close to 1.0 means the matrix is (nearly)
/// block diagonal with respect to the given clustering — the structure the
/// Mogul ordering is designed to produce (Lemma 3).
pub fn block_diagonal_fraction(m: &CsrMatrix, block_boundaries: &[usize]) -> f64 {
    if m.nnz() == 0 {
        return 1.0;
    }
    let block_of = |idx: usize| -> usize {
        match block_boundaries.binary_search(&idx) {
            Ok(pos) => pos,
            Err(pos) => pos.saturating_sub(1),
        }
    };
    let mut off_diag = 0usize;
    let mut total = 0usize;
    for (i, j, _) in m.iter() {
        if i == j {
            continue;
        }
        total += 1;
        if block_of(i) != block_of(j) {
            off_diag += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        1.0 - off_diag as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn banded(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            if i + 1 < n {
                coo.push_symmetric(i, i + 1, 0.5).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn stats_of_banded_matrix() {
        let m = banded(10);
        let s = pattern_stats(&m);
        assert_eq!(s.nnz, 10 + 2 * 9);
        assert_eq!(s.lower_nnz, 9);
        assert_eq!(s.upper_nnz, 9);
        assert!(s.density > 0.0 && s.density < 1.0);
        assert_eq!(s.max_row_nnz, 3);
        assert!(s.mean_distance_from_diagonal < 1.0);
    }

    #[test]
    fn stats_of_empty_matrix() {
        let m = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let s = pattern_stats(&m);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.avg_row_nnz, 0.0);
        assert_eq!(s.mean_distance_from_diagonal, 0.0);
    }

    #[test]
    fn density_grid_concentrates_on_diagonal_for_banded() {
        let m = banded(40);
        let grid = density_grid(&m, 4);
        // Diagonal cells must be denser than far off-diagonal cells.
        assert!(grid.get(0, 0) > grid.get(0, 3));
        assert!(grid.get(3, 3) > grid.get(3, 0));
        let art = render_density_ascii(&grid);
        assert_eq!(art.lines().count(), 4);
        // The top-right cell has no entries and renders as blank.
        assert!(art.lines().next().unwrap().ends_with(' '));
    }

    #[test]
    fn density_grid_handles_degenerate_sizes() {
        let empty = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let grid = density_grid(&empty, 3);
        assert_eq!(grid.nrows(), 3);
        let tiny = CsrMatrix::identity(2);
        let grid = density_grid(&tiny, 8);
        assert_eq!(grid.nrows(), 8);
    }

    #[test]
    fn block_fraction_detects_block_structure() {
        // Two perfect blocks.
        let mut coo = CooMatrix::new(6, 6);
        for base in [0usize, 3] {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    coo.push_symmetric(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        let block_diag = coo.to_csr();
        assert!((block_diagonal_fraction(&block_diag, &[0, 3]) - 1.0).abs() < 1e-12);

        // Add a cross-block edge.
        let mut coo2 = CooMatrix::new(6, 6);
        for (i, j, v) in block_diag.iter() {
            coo2.push(i, j, v).unwrap();
        }
        coo2.push_symmetric(0, 5, 1.0).unwrap();
        let with_cross = coo2.to_csr();
        let frac = block_diagonal_fraction(&with_cross, &[0, 3]);
        assert!(frac < 1.0);
        assert!(frac > 0.5);
    }

    #[test]
    fn block_fraction_trivial_cases() {
        let empty = CsrMatrix::from_triplets(3, 3, &[]).unwrap();
        assert_eq!(block_diagonal_fraction(&empty, &[0]), 1.0);
        let diag_only = CsrMatrix::identity(3);
        assert_eq!(block_diagonal_fraction(&diag_only, &[0]), 1.0);
    }
}
