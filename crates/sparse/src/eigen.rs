//! Symmetric eigensolvers: cyclic Jacobi, tridiagonal QL, Lanczos.
//!
//! These kernels back two baselines from the paper: FMR's per-block low-rank
//! approximation (truncated eigendecomposition of symmetric adjacency blocks)
//! and spectral clustering (leading eigenvectors of the normalized adjacency).
//! None of the paper's own Mogul machinery needs an eigensolver — which is
//! exactly the point the authors make about being parameter-free.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::vector;

/// Anything that can apply itself to a vector (`y = A x`); used by the
/// matrix-free Lanczos and power iterations.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Compute `y = A x`; `y.len() == x.len() == dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let result = self.matvec(x).expect("operator dimension mismatch");
        y.copy_from_slice(&result);
    }
}

impl LinearOperator for DenseMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let result = self.matvec(x).expect("operator dimension mismatch");
        y.copy_from_slice(&result);
    }
}

/// Eigenpairs of a symmetric operator, sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct EigenPairs {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors stored as the columns of an `n × k` matrix, in the same
    /// order as `values`. Each column has unit Euclidean norm.
    pub vectors: DenseMatrix,
}

impl EigenPairs {
    /// Number of eigenpairs stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no eigenpairs are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `j`-th eigenvector as an owned vector.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.column(j)
    }
}

/// Minimal deterministic PRNG (SplitMix64) used to seed Lanczos start
/// vectors without pulling a dependency into this crate.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[-1, 1)`.
    pub(crate) fn next_symmetric(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// Cyclic Jacobi eigendecomposition of a dense symmetric matrix.
///
/// Returns all eigenpairs sorted by descending eigenvalue. Intended for small
/// matrices (baseline verification, EMR's `d × d` reduced systems).
pub fn jacobi_eigen(a: &DenseMatrix) -> Result<EigenPairs> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    let max_sweeps = 100;

    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&a, &b| {
        diag[b]
            .partial_cmp(&diag[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors.set(row, new_col, v.get(row, old_col));
        }
    }
    Ok(EigenPairs { values, vectors })
}

/// Eigendecomposition of a symmetric tridiagonal matrix via the implicit QL
/// method (`tql2`). `diag` has length `n`, `off` has length `n` with `off[0]`
/// unused (it holds the sub-diagonal shifted by one, as in EISPACK).
///
/// Returns eigenvalues (ascending as produced, then re-sorted descending) and
/// the rotation matrix whose columns are eigenvectors of the tridiagonal.
fn tql2(diag: &mut [f64], off: &mut [f64], z: &mut DenseMatrix) -> Result<()> {
    let n = diag.len();
    if n == 0 {
        return Ok(());
    }
    off.copy_within(1..n, 0);
    off[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = diag[m].abs() + diag[m + 1].abs();
                if off[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(SparseError::DidNotConverge {
                    iterations: iter,
                    residual: off[l].abs(),
                });
            }
            let mut g = (diag[l + 1] - diag[l]) / (2.0 * off[l]);
            let mut r = g.hypot(1.0);
            g = diag[m] - diag[l] + off[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut broke_early = false;
            let mut i = m;
            while i > l {
                i -= 1;
                let mut f = s * off[i];
                let b = c * off[i];
                r = f.hypot(g);
                off[i + 1] = r;
                if r == 0.0 {
                    diag[i + 1] -= p;
                    off[m] = 0.0;
                    broke_early = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = diag[i + 1] - p;
                r = (diag[i] - g) * s + 2.0 * c * b;
                p = s * r;
                diag[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the eigenvector rotation.
                for k in 0..n {
                    f = z.get(k, i + 1);
                    z.set(k, i + 1, s * z.get(k, i) + c * f);
                    z.set(k, i, c * z.get(k, i) - s * f);
                }
            }
            if broke_early {
                continue;
            }
            diag[l] -= p;
            off[l] = g;
            off[m] = 0.0;
        }
    }
    Ok(())
}

/// Lanczos iteration with full reorthogonalization for the largest
/// eigenvalues of a symmetric operator.
///
/// * `k` — number of requested eigenpairs.
/// * `max_subspace` — Krylov subspace dimension (clamped to `dim`); a common
///   choice is `2k + 20`.
/// * `seed` — seed for the deterministic start vector.
pub fn lanczos_largest<O: LinearOperator>(
    op: &O,
    k: usize,
    max_subspace: usize,
    seed: u64,
) -> Result<EigenPairs> {
    let n = op.dim();
    if n == 0 || k == 0 {
        return Ok(EigenPairs {
            values: vec![],
            vectors: DenseMatrix::zeros(n, 0),
        });
    }
    let m = max_subspace.max(k).min(n);

    let mut rng = SplitMix64::new(seed.wrapping_add(0xA5A5_A5A5));
    let mut q: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    let mut v0: Vec<f64> = (0..n).map(|_| rng.next_symmetric()).collect();
    vector::normalize(&mut v0);
    if vector::norm2(&v0) == 0.0 {
        v0[0] = 1.0;
    }
    q.push(v0);

    let mut alpha = Vec::with_capacity(m);
    let mut beta = Vec::with_capacity(m);
    let mut w = vec![0.0; n];

    for j in 0..m {
        op.apply(&q[j], &mut w);
        if j > 0 {
            let b = beta[j - 1];
            for (wi, qi) in w.iter_mut().zip(q[j - 1].iter()) {
                *wi -= b * qi;
            }
        }
        let a = vector::dot_unchecked(&w, &q[j]);
        alpha.push(a);
        for (wi, qi) in w.iter_mut().zip(q[j].iter()) {
            *wi -= a * qi;
        }
        // Full reorthogonalization for numerical robustness.
        for qv in q.iter() {
            let proj = vector::dot_unchecked(&w, qv);
            if proj != 0.0 {
                for (wi, qi) in w.iter_mut().zip(qv.iter()) {
                    *wi -= proj * qi;
                }
            }
        }
        let b = vector::norm2(&w);
        if j + 1 == m || b < 1e-12 {
            beta.push(0.0);
            break;
        }
        beta.push(b);
        let next: Vec<f64> = w.iter().map(|&x| x / b).collect();
        q.push(next);
    }

    let steps = alpha.len();
    // Eigendecomposition of the tridiagonal matrix T (alpha on the diagonal,
    // beta on the off-diagonals).
    let mut diag = alpha.clone();
    let mut off = vec![0.0; steps];
    if steps > 1 {
        off[1..steps].copy_from_slice(&beta[..steps - 1]);
    }
    let mut z = DenseMatrix::identity(steps);
    tql2(&mut diag, &mut off, &mut z)?;

    let mut order: Vec<usize> = (0..steps).collect();
    order.sort_by(|&a, &b| {
        diag[b]
            .partial_cmp(&diag[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let keep = k.min(steps);

    let mut values = Vec::with_capacity(keep);
    let mut vectors = DenseMatrix::zeros(n, keep);
    for (col, &idx) in order.iter().take(keep).enumerate() {
        values.push(diag[idx]);
        // Ritz vector: x = Q * z[:, idx]
        let mut ritz = vec![0.0; n];
        for (row_q, qv) in q.iter().enumerate().take(steps) {
            let coeff = z.get(row_q, idx);
            if coeff == 0.0 {
                continue;
            }
            for (r, qvi) in qv.iter().enumerate() {
                ritz[r] += coeff * qvi;
            }
        }
        vector::normalize(&mut ritz);
        for (r, &val) in ritz.iter().enumerate() {
            vectors.set(r, col, val);
        }
    }
    Ok(EigenPairs { values, vectors })
}

/// Power iteration for the single dominant eigenpair of a symmetric operator.
pub fn power_iteration<O: LinearOperator>(
    op: &O,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> Result<(f64, Vec<f64>)> {
    let n = op.dim();
    if n == 0 {
        return Err(SparseError::InvalidInput(
            "power iteration on an empty operator".into(),
        ));
    }
    let mut rng = SplitMix64::new(seed ^ 0xDEAD_BEEF);
    let mut x: Vec<f64> = (0..n).map(|_| rng.next_symmetric()).collect();
    vector::normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for it in 0..max_iter {
        op.apply(&x, &mut y);
        let new_lambda = vector::dot_unchecked(&x, &y);
        let norm = vector::norm2(&y);
        if norm < 1e-300 {
            return Ok((0.0, x));
        }
        for (xi, yi) in x.iter_mut().zip(y.iter()) {
            *xi = yi / norm;
        }
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            return Ok((new_lambda, x));
        }
        lambda = new_lambda;
        if it + 1 == max_iter {
            return Ok((lambda, x));
        }
    }
    Ok((lambda, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn symmetric_dense() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.0, 0.5],
            vec![1.0, 3.0, 1.0, 0.0],
            vec![0.0, 1.0, 2.0, 0.3],
            vec![0.5, 0.0, 0.3, 1.0],
        ])
        .unwrap()
    }

    fn check_eigen_pairs(a: &DenseMatrix, pairs: &EigenPairs, tol: f64) {
        for j in 0..pairs.len() {
            let v = pairs.vector(j);
            let av = a.matvec(&v).unwrap();
            let lv: Vec<f64> = v.iter().map(|x| pairs.values[j] * x).collect();
            let err = vector::max_abs_diff(&av, &lv).unwrap();
            assert!(err < tol, "eigenpair {j} residual {err}");
        }
    }

    #[test]
    fn jacobi_recovers_eigenpairs() {
        let a = symmetric_dense();
        let pairs = jacobi_eigen(&a).unwrap();
        assert_eq!(pairs.len(), 4);
        // Sorted descending.
        for w in pairs.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        check_eigen_pairs(&a, &pairs, 1e-8);
        // Trace is preserved.
        let trace: f64 = (0..4).map(|i| a.get(i, i)).sum();
        let sum: f64 = pairs.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn jacobi_rejects_rectangular() {
        assert!(jacobi_eigen(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = DenseMatrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let pairs = jacobi_eigen(&a).unwrap();
        assert!((pairs.values[0] - 5.0).abs() < 1e-12);
        assert!((pairs.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lanczos_matches_jacobi_on_small_matrix() {
        let a = symmetric_dense();
        let sparse = CsrMatrix::from_dense(&a, 0.0);
        let dense_pairs = jacobi_eigen(&a).unwrap();
        let lanczos_pairs = lanczos_largest(&sparse, 2, 4, 7).unwrap();
        assert_eq!(lanczos_pairs.len(), 2);
        for j in 0..2 {
            assert!(
                (lanczos_pairs.values[j] - dense_pairs.values[j]).abs() < 1e-6,
                "eigenvalue {j}: {} vs {}",
                lanczos_pairs.values[j],
                dense_pairs.values[j]
            );
        }
        check_eigen_pairs(&a, &lanczos_pairs, 1e-6);
    }

    #[test]
    fn lanczos_on_larger_sparse_matrix() {
        // Ring + chords graph adjacency; eigenvalues bounded by max degree.
        let n = 60;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push_symmetric(i, (i + 1) % n, 1.0).unwrap();
            coo.push_symmetric(i, (i + 7) % n, 0.5).unwrap();
        }
        let a = coo.to_csr();
        let pairs = lanczos_largest(&a, 4, 30, 42).unwrap();
        assert_eq!(pairs.len(), 4);
        check_eigen_pairs(&a.to_dense(), &pairs, 1e-5);
    }

    #[test]
    fn lanczos_edge_cases() {
        let a = CsrMatrix::identity(3);
        let pairs = lanczos_largest(&a, 0, 10, 1).unwrap();
        assert!(pairs.is_empty());
        let empty = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let pairs = lanczos_largest(&empty, 2, 10, 1).unwrap();
        assert!(pairs.is_empty());
        // Requesting more pairs than the dimension returns at most n.
        let pairs = lanczos_largest(&a, 10, 10, 1).unwrap();
        assert!(pairs.len() <= 3);
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        let a = symmetric_dense();
        let pairs = jacobi_eigen(&a).unwrap();
        let (lambda, v) = power_iteration(&a, 500, 1e-12, 3).unwrap();
        assert!((lambda - pairs.values[0]).abs() < 1e-6);
        let av = a.matvec(&v).unwrap();
        let lv: Vec<f64> = v.iter().map(|x| lambda * x).collect();
        assert!(vector::max_abs_diff(&av, &lv).unwrap() < 1e-5);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = a.next_symmetric();
        assert!((-1.0..1.0).contains(&v));
    }
}
