//! Scoped-thread plumbing for the parallel numeric kernels.
//!
//! Three things live here:
//!
//! * [`effective_threads`] — the one audited `available_parallelism` policy
//!   every thread-count knob in the workspace resolves through (`0` means
//!   "one worker per core", anything else is taken literally, and the result
//!   is never below 1 even when the OS refuses to answer).
//! * [`WaveSchedule`] — a dependency levelization: rows grouped into *waves*
//!   such that every row's dependencies sit in strictly earlier waves. All
//!   rows of one wave can run concurrently; a barrier separates waves.
//! * `SharedSlice` — the unsafe cell the wave workers write through. Rows
//!   of one wave touch pairwise-disjoint parts of the output arrays (that is
//!   exactly what the wave construction proves), so the aliasing is benign,
//!   but the borrow checker cannot see it across `scope.spawn` closures.
//!
//! The factorization modules ([`crate::ldl`], [`crate::ichol`]) own the
//! proofs that their wave usage is race-free and bit-identical to the serial
//! sweeps; this module only provides the mechanics.

use std::marker::PhantomData;

/// Smallest dimension worth spawning workers for: below this the whole
/// factorization costs less than creating the thread pool.
pub(crate) const PAR_MIN_DIM: usize = 1024;

/// Smallest mean wave width worth parallelizing. A path-shaped elimination
/// tree produces `n` waves of width 1 — all barrier, no parallelism.
pub(crate) const PAR_MIN_WAVE_WIDTH: usize = 8;

/// Resolve a requested worker count against the machine.
///
/// `0` asks for one worker per available core; any other value is used as
/// given. The result is always at least 1: when the OS cannot report its
/// parallelism (`available_parallelism` fails on some restricted
/// environments), the fallback is a single worker, never zero.
///
/// Every `available_parallelism` call site in the workspace funnels through
/// here so the fallback policy cannot drift between crates.
pub fn effective_threads(requested: usize) -> usize {
    let resolved = if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        requested
    };
    resolved.max(1)
}

/// Rows grouped into dependency levels ("waves").
///
/// Wave `w` holds every row whose longest dependency chain has length `w`;
/// rows within a wave are stored in ascending index order. The schedule is
/// valid for concurrent execution iff each row depends only on rows with a
/// strictly smaller level — which the producer guarantees by construction
/// (`level[row] = 1 + max(level[dep])`).
#[derive(Debug, Clone)]
pub struct WaveSchedule {
    /// Rows sorted by (wave, row index).
    rows: Vec<usize>,
    /// `rows[ptr[w]..ptr[w + 1]]` is wave `w`.
    ptr: Vec<usize>,
}

impl WaveSchedule {
    /// Build the schedule from per-row levels (`level[i] < n` for all `i`).
    pub fn from_levels(levels: &[usize]) -> WaveSchedule {
        let n = levels.len();
        let num_waves = levels.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut ptr = vec![0usize; num_waves + 1];
        for &l in levels {
            ptr[l + 1] += 1;
        }
        for w in 0..num_waves {
            ptr[w + 1] += ptr[w];
        }
        let mut cursor = ptr.clone();
        let mut rows = vec![0usize; n];
        // Ascending row order within each wave falls out of the stable scan.
        for (i, &l) in levels.iter().enumerate() {
            rows[cursor[l]] = i;
            cursor[l] += 1;
        }
        WaveSchedule { rows, ptr }
    }

    /// Number of waves (sequential phases).
    pub fn num_waves(&self) -> usize {
        self.ptr.len().saturating_sub(1)
    }

    /// The rows of wave `w`, ascending.
    pub fn wave(&self, w: usize) -> &[usize] {
        &self.rows[self.ptr[w]..self.ptr[w + 1]]
    }

    /// Mean rows per wave — the available parallelism. Serial chains (a path
    /// elimination tree) score ~1; wide cluster structures score high.
    pub fn mean_wave_width(&self) -> usize {
        self.rows.len().checked_div(self.num_waves()).unwrap_or(0)
    }
}

/// A raw view of a `&mut [T]` that several scoped workers write through.
///
/// # Safety contract
///
/// The creator must guarantee that concurrent accesses through clones of the
/// view never overlap: every index is written by at most one worker between
/// two synchronization points, and never read by another worker in the same
/// phase. The wave factorizations satisfy this via their elimination-tree
/// chain arguments; the `Barrier` between waves provides the happens-before
/// edge that makes earlier-wave writes visible.
pub(crate) struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the view is only a pointer; all access is through `unsafe` methods
// whose disjointness the caller proves (see the struct docs).
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Read `idx`. Caller proves no concurrent writer (see struct docs).
    #[inline(always)]
    pub(crate) unsafe fn get(&self, idx: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) }
    }

    /// Write `idx`. Caller proves exclusive access (see struct docs).
    #[inline(always)]
    pub(crate) unsafe fn set(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = value }
    }

    /// A subslice `range` of the underlying data. Caller proves no other
    /// worker touches any index of `range` concurrently (see struct docs).
    #[inline(always)]
    #[allow(clippy::mut_from_ref)] // the whole point of the cell; see docs
    pub(crate) unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }

    /// A read-only subslice. Caller proves no worker writes any index of the
    /// range concurrently (concurrent readers are fine — see struct docs).
    #[inline(always)]
    pub(crate) unsafe fn slice(&self, start: usize, len: usize) -> &[T] {
        debug_assert!(start + len <= self.len);
        unsafe { std::slice::from_raw_parts(self.ptr.add(start), len) }
    }
}

/// Split `len` items into `workers` near-equal contiguous chunks; returns the
/// half-open range of chunk `worker`. Contiguous (not strided) assignment
/// keeps each worker's writes on its own cache lines.
pub(crate) fn chunk_range(len: usize, workers: usize, worker: usize) -> (usize, usize) {
    let base = len / workers;
    let extra = len % workers;
    let start = worker * base + worker.min(extra);
    let size = base + usize::from(worker < extra);
    (start, start + size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_policy() {
        // Explicit requests are taken literally.
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        // Auto is at least one worker, at most "something sane".
        let auto = effective_threads(0);
        assert!(auto >= 1);
        assert!(auto <= 4096);
    }

    #[test]
    fn wave_schedule_orders_rows() {
        // levels: row 0 -> 0, row 1 -> 1, row 2 -> 0, row 3 -> 1, row 4 -> 2
        let s = WaveSchedule::from_levels(&[0, 1, 0, 1, 2]);
        assert_eq!(s.num_waves(), 3);
        assert_eq!(s.wave(0), &[0, 2]);
        assert_eq!(s.wave(1), &[1, 3]);
        assert_eq!(s.wave(2), &[4]);
        assert_eq!(s.mean_wave_width(), 1);
    }

    #[test]
    fn wave_schedule_empty() {
        let s = WaveSchedule::from_levels(&[]);
        assert_eq!(s.num_waves(), 0);
        assert_eq!(s.mean_wave_width(), 0);
    }

    #[test]
    fn chunks_cover_everything_once() {
        for len in [0usize, 1, 5, 16, 17] {
            for workers in [1usize, 2, 3, 8] {
                let mut seen = vec![0u32; len];
                for w in 0..workers {
                    let (a, b) = chunk_range(len, workers, w);
                    for item in seen.iter_mut().take(b).skip(a) {
                        *item += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "len {len} workers {workers}");
            }
        }
    }
}
