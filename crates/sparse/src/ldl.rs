//! Complete sparse `L D Lᵀ` factorization with fill-in.
//!
//! The paper calls this "Modified Cholesky factorization" (Section 4.6.1): it
//! is the same recurrence as the incomplete factorization but *without* the
//! sparsity-pattern restriction, so the ranking scores it produces are exact.
//! MogulE builds on this factorization; its cost is `O(m)` where `m` is the
//! number of non-zeros of `L` including fill-in.
//!
//! The implementation follows the classic up-looking algorithm (Davis, *Direct
//! Methods for Sparse Linear Systems*): the elimination tree is discovered in
//! a symbolic pass, then each column of `L` is computed with a sparse
//! triangular solve whose non-zero pattern is the row subtree.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};
use crate::ichol::LdlFactors;
use crate::parallel::{
    chunk_range, effective_threads, SharedSlice, WaveSchedule, PAR_MIN_DIM, PAR_MIN_WAVE_WIDTH,
};
use std::sync::{Barrier, Mutex};

/// Complete `L D Lᵀ` factorization together with fill-in statistics.
#[derive(Debug, Clone)]
pub struct CompleteLdl {
    /// The factors (`L`, `U = Lᵀ`, `D`).
    pub factors: LdlFactors,
    /// Elimination-tree parent of each column (`usize::MAX` for roots).
    pub etree: Vec<usize>,
    /// Number of strictly-lower non-zeros in the original matrix.
    pub input_lower_nnz: usize,
    /// Number of strictly-lower non-zeros in `L` (≥ `input_lower_nnz`).
    pub factor_lower_nnz: usize,
}

impl CompleteLdl {
    /// Fill-in: strictly-lower non-zeros created beyond the input pattern.
    pub fn fill_in(&self) -> usize {
        self.factor_lower_nnz.saturating_sub(self.input_lower_nnz)
    }

    /// Solve `A x = b` exactly using the complete factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.factors.solve(b)
    }
}

/// Complete sparse `L D Lᵀ` factorization of a symmetric matrix.
///
/// Returns an error if a pivot collapses to zero (the matrix is singular or
/// numerically indefinite in a way the factorization cannot handle). For the
/// paper's matrices `W = I − α S` with `α < 1` the input is positive definite
/// and the factorization always succeeds.
///
/// Delegates to [`complete_ldl_threaded`] with automatic worker selection;
/// the parallel schedule is **bit-identical** to the serial sweep (see
/// there), so the thread count never changes the factors.
pub fn complete_ldl(w: &CsrMatrix) -> Result<CompleteLdl> {
    complete_ldl_threaded(w, 0)
}

/// Per-worker scratch of the up-looking numeric pass.
struct UpLookScratch {
    /// Dense accumulator of the sparse triangular solve.
    y: Vec<f64>,
    /// Stack holding the row pattern in topological order.
    pattern: Vec<usize>,
    /// Visit marker (`flag[i] == k` means "seen while processing row `k`").
    flag: Vec<usize>,
}

impl UpLookScratch {
    fn new(n: usize) -> Self {
        UpLookScratch {
            y: vec![0.0f64; n],
            pattern: vec![0usize; n],
            flag: vec![usize::MAX; n],
        }
    }
}

/// Compute row `k` of the up-looking factorization: the sparse triangular
/// solve over row `k`'s elimination-tree pattern, appending `l_ki` into every
/// column `i` of the pattern and returning `d_k`.
///
/// # Safety
///
/// Row `k`'s pattern columns must be owned exclusively by this call for the
/// duration of the wave: the rows stored in column `i` of `L` are exactly the
/// elimination-tree ancestors of `i`, which form a chain — so any two rows
/// whose patterns share a column are ordered by the wave levelization, and
/// within a wave at most one row reads or appends to any column. Earlier
/// waves (sequenced by the caller's barrier) have fully written everything
/// this row reads: the column prefixes `l_rows/l_vals[col_ptr[i] ..
/// col_ptr[i] + col_len[i]]` and the `d[i]` pivots.
#[allow(clippy::too_many_arguments)] // mirrors the factorization's working set
unsafe fn uplook_row(
    w: &CsrMatrix,
    parent: &[usize],
    col_ptr: &[usize],
    l_rows: &SharedSlice<'_, usize>,
    l_vals: &SharedSlice<'_, f64>,
    col_len: &SharedSlice<'_, usize>,
    d: &SharedSlice<'_, f64>,
    scratch: &mut UpLookScratch,
    k: usize,
) -> Result<f64> {
    let n = parent.len();
    let UpLookScratch { y, pattern, flag } = scratch;
    flag[k] = k;
    let mut top = n;
    let (cols, vals) = w.row(k);
    let mut w_kk = 0.0;
    for (&j, &v) in cols.iter().zip(vals.iter()) {
        if j > k {
            continue;
        }
        if j == k {
            w_kk = v;
            continue;
        }
        y[j] += v;
        // Walk up the elimination tree collecting the (reversed) path.
        let mut len = 0usize;
        let mut i = j;
        while flag[i] != k {
            pattern[len] = i;
            len += 1;
            flag[i] = k;
            i = parent[i];
        }
        // Move the path onto the top of the pattern stack (topological order).
        while len > 0 {
            len -= 1;
            top -= 1;
            pattern[top] = pattern[len];
        }
    }

    let mut d_k = w_kk;
    // Sparse triangular solve over the pattern in topological order.
    for &i in &pattern[top..n] {
        let yi = y[i];
        y[i] = 0.0;
        // SAFETY: this row owns column `i` for the wave (see contract).
        let len_i = unsafe { col_len.get(i) };
        let start = col_ptr[i];
        for p in start..start + len_i {
            // SAFETY: prefix entries were written by earlier waves.
            y[unsafe { l_rows.get(p) }] -= unsafe { l_vals.get(p) } * yi;
        }
        // SAFETY: d[i] was written by an earlier wave.
        let d_i = unsafe { d.get(i) };
        if d_i == 0.0 {
            // Leave the remaining pattern columns untouched — exactly where
            // the serial sweep stops. The caller records the error.
            return Err(SparseError::Breakdown {
                index: i,
                value: d_i,
            });
        }
        let l_ki = yi / d_i;
        d_k -= l_ki * yi;
        let slot = start + len_i;
        // SAFETY: this row owns column `i`'s append slot for the wave.
        unsafe {
            l_rows.set(slot, k);
            l_vals.set(slot, l_ki);
            col_len.set(i, len_i + 1);
        }
    }
    if d_k == 0.0 || !d_k.is_finite() {
        return Err(SparseError::Breakdown {
            index: k,
            value: d_k,
        });
    }
    Ok(d_k)
}

/// [`complete_ldl`] with an explicit worker count (`0` = one per core, via
/// [`effective_threads`]).
///
/// The numeric pass is parallelized over *column waves* of the elimination
/// tree: row `k`'s level is one past the deepest level in its symbolic
/// pattern, so every column a row reads or appends to was finalized in an
/// earlier wave, and — because the rows stored in a column form an ancestor
/// chain — no two rows of one wave ever touch the same column. Appends land
/// in the same ascending-row order and each row runs the identical operation
/// sequence as the serial sweep, so the factors (and any breakdown error)
/// are **bit-identical for every worker count**. Small or chain-shaped
/// problems fall back to the serial sweep automatically.
pub fn complete_ldl_threaded(w: &CsrMatrix, threads: usize) -> Result<CompleteLdl> {
    if w.nrows() != w.ncols() {
        return Err(SparseError::NotSquare {
            nrows: w.nrows(),
            ncols: w.ncols(),
        });
    }
    let n = w.nrows();

    // --- Symbolic pass: elimination tree + column counts + wave levels ------
    // For the symmetric matrix stored in CSR, row k restricted to columns
    // j < k is column k of the strictly-upper triangle, which is what the
    // up-looking algorithm consumes. The flag walk enumerates exactly row
    // k's pattern (the union of elimination-tree paths), which is also what
    // the wave levelization needs.
    let mut parent = vec![usize::MAX; n];
    let mut flag = vec![usize::MAX; n];
    let mut col_nnz = vec![0usize; n]; // strictly-lower nnz of each column of L
    let mut levels = vec![0usize; n];
    for k in 0..n {
        flag[k] = k;
        let mut level = 0usize;
        let (cols, _) = w.row(k);
        for &j in cols {
            if j >= k {
                continue;
            }
            let mut i = j;
            while flag[i] != k {
                if parent[i] == usize::MAX {
                    parent[i] = k;
                }
                col_nnz[i] += 1;
                flag[i] = k;
                level = level.max(levels[i] + 1);
                i = parent[i];
            }
        }
        levels[k] = level;
    }

    // Column pointers for the strictly-lower part of L in CSC layout.
    let mut col_ptr = vec![0usize; n + 1];
    for i in 0..n {
        col_ptr[i + 1] = col_ptr[i] + col_nnz[i];
    }
    let total_lower = col_ptr[n];
    let mut l_rows = vec![0usize; total_lower];
    let mut l_vals = vec![0.0f64; total_lower];
    let mut col_len = vec![0usize; n];
    let mut d = vec![0.0f64; n];

    // --- Numeric pass --------------------------------------------------------
    let workers = effective_threads(threads).min(n.max(1));
    let schedule = if workers > 1 && n >= PAR_MIN_DIM {
        let s = WaveSchedule::from_levels(&levels);
        (s.mean_wave_width() >= PAR_MIN_WAVE_WIDTH).then_some(s)
    } else {
        None
    };

    let numeric_result: Result<()> = {
        let rows_cell = SharedSlice::new(&mut l_rows);
        let vals_cell = SharedSlice::new(&mut l_vals);
        let len_cell = SharedSlice::new(&mut col_len);
        let d_cell = SharedSlice::new(&mut d);
        match schedule {
            None => {
                let mut scratch = UpLookScratch::new(n);
                let mut out = Ok(());
                for k in 0..n {
                    // SAFETY: single-threaded — rows < k are complete, and
                    // nobody else touches any column.
                    match unsafe {
                        uplook_row(
                            w,
                            &parent,
                            &col_ptr,
                            &rows_cell,
                            &vals_cell,
                            &len_cell,
                            &d_cell,
                            &mut scratch,
                            k,
                        )
                    } {
                        // SAFETY: single-threaded.
                        Ok(dk) => unsafe { d_cell.set(k, dk) },
                        Err(e) => {
                            out = Err(e);
                            break;
                        }
                    }
                }
                out
            }
            Some(schedule) => {
                // On breakdown the waves still run to completion: a failed
                // row skips its remaining appends and poisons d[k] with NaN,
                // which only its dependents (all later waves, higher row
                // indices) can observe. The minimum failing row index is
                // therefore the exact row where the serial sweep would have
                // stopped, and its error is bit-identical to the serial one.
                let first_error: Mutex<Option<(usize, SparseError)>> = Mutex::new(None);
                let barrier = Barrier::new(workers);
                std::thread::scope(|scope| {
                    for tid in 0..workers {
                        let (rows_cell, vals_cell) = (&rows_cell, &vals_cell);
                        let (len_cell, d_cell) = (&len_cell, &d_cell);
                        let (schedule, barrier) = (&schedule, &barrier);
                        let first_error = &first_error;
                        let (parent, col_ptr) = (&parent, &col_ptr);
                        scope.spawn(move || {
                            let mut scratch = UpLookScratch::new(n);
                            for wave in 0..schedule.num_waves() {
                                let rows = schedule.wave(wave);
                                let (lo, hi) = chunk_range(rows.len(), workers, tid);
                                for &k in &rows[lo..hi] {
                                    // SAFETY: see `uplook_row` — waves are
                                    // sequenced by the barrier below and no
                                    // two rows of a wave share a column.
                                    match unsafe {
                                        uplook_row(
                                            w,
                                            parent,
                                            col_ptr,
                                            rows_cell,
                                            vals_cell,
                                            len_cell,
                                            d_cell,
                                            &mut scratch,
                                            k,
                                        )
                                    } {
                                        // SAFETY: only this worker owns d[k].
                                        Ok(dk) => unsafe { d_cell.set(k, dk) },
                                        Err(e) => {
                                            // SAFETY: only this worker owns d[k].
                                            unsafe { d_cell.set(k, f64::NAN) };
                                            let mut slot = first_error.lock().unwrap();
                                            if slot.as_ref().is_none_or(|(row, _)| k < *row) {
                                                *slot = Some((k, e));
                                            }
                                        }
                                    }
                                }
                                barrier.wait();
                            }
                        });
                    }
                });
                match first_error.into_inner().unwrap() {
                    Some((_, e)) => Err(e),
                    None => Ok(()),
                }
            }
        }
    };
    numeric_result?;

    // --- Assemble CSR factors ------------------------------------------------
    // The CSC arrays of the strictly-lower L are, read as CSR, the strictly
    // upper factor U = Lᵀ. Add explicit unit diagonals to both.
    let mut u_indptr = Vec::with_capacity(n + 1);
    let mut u_indices = Vec::with_capacity(total_lower + n);
    let mut u_values = Vec::with_capacity(total_lower + n);
    u_indptr.push(0);
    for i in 0..n {
        u_indices.push(i);
        u_values.push(1.0);
        let start = col_ptr[i];
        let end = start + col_len[i];
        // Row indices within a column are produced in increasing k, already sorted.
        for p in start..end {
            u_indices.push(l_rows[p]);
            u_values.push(l_vals[p]);
        }
        u_indptr.push(u_indices.len());
    }
    let u = CsrMatrix::from_raw_parts(n, n, u_indptr, u_indices, u_values)?;
    let l = u.transpose();

    let input_lower_nnz = w.lower_triangle(false).nnz();
    let factor_lower_nnz = total_lower;

    Ok(CompleteLdl {
        factors: LdlFactors {
            l,
            u,
            d,
            boosted_pivots: 0,
        },
        etree: parent,
        input_lower_nnz,
        factor_lower_nnz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::vector::max_abs_diff;

    fn spd_graph_matrix(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(a, b) in edges {
            coo.push_symmetric(a, b, -0.2).unwrap();
        }
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn exact_reconstruction_with_fill_in() {
        // A cycle graph whose natural ordering forces fill-in.
        let n = 7;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let w = spd_graph_matrix(n, &edges);
        let f = complete_ldl(&w).unwrap();
        let diff = f
            .factors
            .reconstruct_dense()
            .max_abs_diff(&w.to_dense())
            .unwrap();
        assert!(diff < 1e-12, "reconstruction error {diff}");
        assert!(f.fill_in() > 0, "cycle ordering should create fill-in");
    }

    #[test]
    fn solve_matches_dense_lu() {
        let n = 9;
        let edges = [
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (6, 7),
            (7, 8),
            (6, 8),
            (2, 3),
            (5, 6),
            (0, 8),
        ];
        let w = spd_graph_matrix(n, &edges);
        let f = complete_ldl(&w).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = f.solve(&b).unwrap();
        let x_ref = w.to_dense().solve(&b).unwrap();
        assert!(max_abs_diff(&x, &x_ref).unwrap() < 1e-10);
    }

    #[test]
    fn no_fill_in_for_tridiagonal() {
        let n = 10;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let w = spd_graph_matrix(n, &edges);
        let f = complete_ldl(&w).unwrap();
        assert_eq!(f.fill_in(), 0);
        assert_eq!(f.factor_lower_nnz, n - 1);
        // Elimination tree of a path graph is the path itself.
        for i in 0..n - 1 {
            assert_eq!(f.etree[i], i + 1);
        }
        assert_eq!(f.etree[n - 1], usize::MAX);
    }

    #[test]
    fn complete_is_at_least_as_dense_as_incomplete() {
        let n = 12;
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| vec![(i, (i + 1) % n), (i, (i + 3) % n)])
            .collect();
        let w = spd_graph_matrix(n, &edges);
        let complete = complete_ldl(&w).unwrap();
        let incomplete = crate::ichol::incomplete_ldl(&w).unwrap();
        assert!(complete.factors.l.nnz() >= incomplete.l.nnz());
    }

    #[test]
    fn rejects_rectangular_and_singular() {
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(complete_ldl(&rect).is_err());

        // Singular: zero matrix.
        let zero = CsrMatrix::from_triplets(2, 2, &[]).unwrap();
        assert!(matches!(
            complete_ldl(&zero),
            Err(SparseError::Breakdown { .. })
        ));
    }

    #[test]
    fn identity_factorizes_trivially() {
        let w = CsrMatrix::identity(5);
        let f = complete_ldl(&w).unwrap();
        assert_eq!(f.factors.d, vec![1.0; 5]);
        assert_eq!(f.fill_in(), 0);
    }
}
