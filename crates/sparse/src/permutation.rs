//! Node permutations (the matrix `P` of Section 4.2.2).
//!
//! The paper permutes the nodes of the k-NN graph before Incomplete Cholesky
//! factorization so that within-cluster nodes become contiguous and the
//! "border" nodes (those with cross-cluster edges) come last. `P` is an
//! orthogonal 0/1 matrix with exactly one `1` per row and column; we store it
//! as a pair of index maps instead of materializing `n × n` entries, which
//! keeps the memory cost at `O(n)` as required by Theorem 3.

use crate::error::{Result, SparseError};

/// A permutation of `n` items, stored as both directions of the index map.
///
/// Following the paper's convention, "new" indices are positions after the
/// permutation (primed nodes `u'_i`) and "old" indices are the original node
/// identifiers `u_i`. `P_{ij} = 1` means old node `j` moves to new position
/// `i`, i.e. `new_to_old[i] = j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<usize>,
    old_to_new: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<usize> = (0..n).collect();
        Permutation {
            new_to_old: ids.clone(),
            old_to_new: ids,
        }
    }

    /// Build from the `new → old` map (entry `i` holds the original index of
    /// the node placed at position `i`).
    ///
    /// Returns an error unless the map is a bijection on `0..n`.
    pub fn from_new_to_old(new_to_old: Vec<usize>) -> Result<Self> {
        let n = new_to_old.len();
        let mut old_to_new = vec![usize::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            if old >= n {
                return Err(SparseError::InvalidInput(format!(
                    "permutation entry {old} out of range for length {n}"
                )));
            }
            if old_to_new[old] != usize::MAX {
                return Err(SparseError::InvalidInput(format!(
                    "permutation maps index {old} twice"
                )));
            }
            old_to_new[old] = new;
        }
        Ok(Permutation {
            new_to_old,
            old_to_new,
        })
    }

    /// Build from the `old → new` map (entry `j` holds the new position of
    /// original node `j`).
    pub fn from_old_to_new(old_to_new: Vec<usize>) -> Result<Self> {
        let inv = Permutation::from_new_to_old(old_to_new)?;
        Ok(inv.inverse())
    }

    /// Number of permuted items.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// `true` if the permutation is over zero items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Original index of the node at new position `new`.
    #[inline]
    pub fn old_index(&self, new: usize) -> usize {
        self.new_to_old[new]
    }

    /// New position of original node `old`.
    #[inline]
    pub fn new_index(&self, old: usize) -> usize {
        self.old_to_new[old]
    }

    /// The full `new → old` map.
    #[inline]
    pub fn new_to_old(&self) -> &[usize] {
        &self.new_to_old
    }

    /// The full `old → new` map.
    #[inline]
    pub fn old_to_new(&self) -> &[usize] {
        &self.old_to_new
    }

    /// Inverse permutation (`Pᵀ = P⁻¹`).
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_to_old: self.old_to_new.clone(),
            old_to_new: self.new_to_old.clone(),
        }
    }

    /// `true` if this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &j)| i == j)
    }

    /// Apply to a vector: returns `x'` with `x'[new] = x[old]` (i.e. `P x`).
    pub fn permute_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.len() {
            return Err(SparseError::DimensionMismatch {
                op: "permute_vec",
                left: (self.len(), 1),
                right: (x.len(), 1),
            });
        }
        Ok(self.new_to_old.iter().map(|&old| x[old]).collect())
    }

    /// Apply the inverse to a vector: returns `x` with `x[old] = x'[new]`
    /// (i.e. `Pᵀ x'`).
    pub fn unpermute_vec(&self, x_permuted: &[f64]) -> Result<Vec<f64>> {
        if x_permuted.len() != self.len() {
            return Err(SparseError::DimensionMismatch {
                op: "unpermute_vec",
                left: (self.len(), 1),
                right: (x_permuted.len(), 1),
            });
        }
        let mut x = vec![0.0; self.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            x[old] = x_permuted[new];
        }
        Ok(x)
    }

    /// Compose with another permutation: the result maps old indices through
    /// `self` first and then through `other` (i.e. `other ∘ self` as matrices
    /// `P_other · P_self`).
    pub fn compose(&self, other: &Permutation) -> Result<Permutation> {
        if self.len() != other.len() {
            return Err(SparseError::DimensionMismatch {
                op: "compose permutations",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        // new index in the composed permutation = other.new of (self.new of old)
        let mut old_to_new = vec![0usize; self.len()];
        for old in 0..self.len() {
            old_to_new[old] = other.new_index(self.new_index(old));
        }
        Permutation::from_old_to_new(old_to_new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.len(), 4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.permute_vec(&x).unwrap(), x);
        assert_eq!(p.unpermute_vec(&x).unwrap(), x);
    }

    #[test]
    fn from_new_to_old_validates() {
        assert!(Permutation::from_new_to_old(vec![0, 1, 1]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 3]).is_err());
        assert!(Permutation::from_new_to_old(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn permute_and_unpermute_are_inverse() {
        let p = Permutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let x = vec![10.0, 20.0, 30.0, 40.0];
        let px = p.permute_vec(&x).unwrap();
        assert_eq!(px, vec![30.0, 10.0, 40.0, 20.0]);
        assert_eq!(p.unpermute_vec(&px).unwrap(), x);
        assert!(p.permute_vec(&[1.0]).is_err());
        assert!(p.unpermute_vec(&[1.0]).is_err());
    }

    #[test]
    fn inverse_swaps_maps() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        for old in 0..3 {
            assert_eq!(
                inv.old_index(p.new_index(old)),
                p.new_index(inv.old_index(old))
            );
            assert_eq!(
                inv.new_index(p.old_index(old)),
                p.old_index(inv.new_index(old))
            );
        }
        // P composed with its inverse is the identity.
        let composed = p.compose(&inv).unwrap();
        assert!(composed.is_identity());
    }

    #[test]
    fn from_old_to_new_matches_inverse_construction() {
        let old_to_new = vec![1, 2, 0];
        let p = Permutation::from_old_to_new(old_to_new.clone()).unwrap();
        for (old, &new) in old_to_new.iter().enumerate() {
            assert_eq!(p.new_index(old), new);
            assert_eq!(p.old_index(new), old);
        }
    }

    #[test]
    fn compose_applies_left_then_right() {
        // self: rotate right, other: swap first two.
        let a = Permutation::from_old_to_new(vec![1, 2, 0]).unwrap();
        let b = Permutation::from_old_to_new(vec![1, 0, 2]).unwrap();
        let c = a.compose(&b).unwrap();
        for old in 0..3 {
            assert_eq!(c.new_index(old), b.new_index(a.new_index(old)));
        }
        assert!(a.compose(&Permutation::identity(4)).is_err());
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
        assert_eq!(p.permute_vec(&[]).unwrap(), Vec::<f64>::new());
    }
}
