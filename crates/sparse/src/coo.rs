//! Coordinate-format (triplet) sparse matrix builder.
//!
//! `CooMatrix` is the write-optimized staging structure: graph-construction
//! code pushes `(row, col, value)` triplets in arbitrary order and converts to
//! [`CsrMatrix`] once, deduplicating by summation.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

/// A sparse matrix in coordinate (triplet) format.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Create an empty COO matrix with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Create an empty COO matrix with the given shape and entry capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, capacity: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted individually).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Stored triplets.
    #[inline]
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Push a triplet. Out-of-bounds indices are rejected.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Push both `(row, col, value)` and `(col, row, value)`.
    ///
    /// Convenience for building symmetric adjacency matrices from undirected
    /// edges; diagonal entries are pushed only once.
    pub fn push_symmetric(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// Convert to CSR, summing duplicate entries and dropping explicit zeros
    /// that result from cancellation.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(row, col, _)| (row, col));

        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        indptr.push(0);

        let mut current_row = 0usize;
        let mut idx = 0usize;
        while idx < sorted.len() {
            let (row, col, _) = sorted[idx];
            while current_row < row {
                indptr.push(indices.len());
                current_row += 1;
            }
            // Merge duplicates for (row, col).
            let mut value = 0.0;
            while idx < sorted.len() && sorted[idx].0 == row && sorted[idx].1 == col {
                value += sorted[idx].2;
                idx += 1;
            }
            if value != 0.0 {
                indices.push(col);
                values.push(value);
            }
        }
        while current_row < self.nrows {
            indptr.push(indices.len());
            current_row += 1;
        }
        indptr.push(indices.len());
        // The loop above pushes one extra terminator when nrows > 0 and the
        // last row had entries; normalize to exactly nrows + 1 pointers.
        indptr.truncate(self.nrows + 1);
        while indptr.len() < self.nrows + 1 {
            indptr.push(indices.len());
        }

        CsrMatrix::from_raw_parts(self.nrows, self.ncols, indptr, indices, values)
            .expect("COO to CSR conversion produced inconsistent structure")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(0, 0, 1.0).is_ok());
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 5, 1.0).is_err());
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn to_csr_sorts_and_merges_duplicates() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 1, 4.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 0, 5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 2), 3.0);
        assert_eq!(csr.get(1, 0), 5.0);
        assert_eq!(csr.get(2, 1), 4.0);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn to_csr_drops_cancelled_entries() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 1, -2.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 3, 1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 4);
        assert_eq!(csr.row(0).0.len(), 0);
        assert_eq!(csr.row(3).0, &[3]);
    }

    #[test]
    fn symmetric_push() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 2.0).unwrap();
        coo.push_symmetric(2, 2, 5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(2, 2), 5.0);
        assert!(csr.is_symmetric(1e-12));
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let coo = CooMatrix::new(0, 0);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 0);
        assert_eq!(csr.nnz(), 0);
    }
}
