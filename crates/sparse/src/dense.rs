//! Dense row-major matrices with LU decomposition and inversion.
//!
//! The dense path exists for three reasons:
//!
//! 1. The paper's `O(n³)` **Inverse** baseline (Equation (2)) literally builds
//!    the dense matrix `(I − α C^{-1/2} A C^{-1/2})` and inverts it.
//! 2. The EMR baseline needs small `d × d` dense solves (Woodbury identity).
//! 3. Every sparse kernel in this crate is verified against a dense reference
//!    in the test suites.

use crate::error::{Result, SparseError};
use crate::vector;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a zero-filled matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Create an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Create a matrix from a row-major data vector.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(SparseError::InvalidInput(format!(
                "data length {} does not match shape {}x{}",
                data.len(),
                nrows,
                ncols
            )));
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Create a matrix from a slice of equal-length rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(SparseError::InvalidInput(
                    "rows have inconsistent lengths".into(),
                ));
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Create a diagonal matrix from its diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m.set(i, i, v);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Immutable access to the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Read entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j]
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] = value;
    }

    /// Add `value` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] += value;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copy column `j` into a new vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self.get(i, j)).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "dense matvec",
                left: (self.nrows, self.ncols),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.nrows)
            .map(|i| vector::dot_unchecked(self.row(i), x))
            .collect())
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "dense matvec_transpose",
                left: (self.ncols, self.nrows),
                right: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (j, &a) in row.iter().enumerate() {
                y[j] += a * xi;
            }
        }
        Ok(y)
    }

    /// Matrix-matrix product `A B`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "dense matmul",
                left: (self.nrows, self.ncols),
                right: (other.nrows, other.ncols),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (j, &b) in brow.iter().enumerate() {
                    orow[j] += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `Aᵀ A` (ncols × ncols, symmetric).
    pub fn gram(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.ncols, self.ncols);
        for i in 0..self.nrows {
            let row = self.row(i);
            for (a_idx, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (b_idx, &b) in row.iter().enumerate() {
                    out.add_to(a_idx, b_idx, a * b);
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Elementwise sum `A + B`.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "dense add",
                left: (self.nrows, self.ncols),
                right: (other.nrows, other.ncols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        })
    }

    /// Elementwise difference `A - B`.
    pub fn sub(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "dense sub",
                left: (self.nrows, self.ncols),
                right: (other.nrows, other.ncols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        })
    }

    /// Scale every entry by `alpha`, returning a new matrix.
    pub fn scaled(&self, alpha: f64) -> DenseMatrix {
        DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|v| alpha * v).collect(),
        }
    }

    /// Maximum absolute entrywise difference from another matrix.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f64> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "dense max_abs_diff",
                left: (self.nrows, self.ncols),
                right: (other.nrows, other.ncols),
            });
        }
        vector::max_abs_diff(&self.data, &other.data)
    }

    /// `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// LU-factorize the matrix with partial pivoting.
    pub fn lu(&self) -> Result<LuDecomposition> {
        LuDecomposition::new(self)
    }

    /// Solve `A x = b` using LU decomposition with partial pivoting.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Invert the matrix using LU decomposition with partial pivoting.
    ///
    /// This is the `O(n³)` operation the paper's Inverse baseline relies on.
    pub fn inverse(&self) -> Result<DenseMatrix> {
        let lu = self.lu()?;
        let n = self.nrows;
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = lu.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv.set(i, j, col[i]);
            }
        }
        Ok(inv)
    }
}

/// LU decomposition with partial pivoting (`P A = L U`), stored compactly.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: DenseMatrix,
    /// Row permutation applied during pivoting: `perm[i]` is the original row
    /// now sitting at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (used by [`LuDecomposition::determinant`]).
    sign: f64,
}

impl LuDecomposition {
    /// Factorize a square matrix.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if a.nrows != a.ncols {
            return Err(SparseError::NotSquare {
                nrows: a.nrows,
                ncols: a.ncols,
            });
        }
        let n = a.nrows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SparseError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu.get(k, j);
                    lu.set(k, j, lu.get(pivot_row, j));
                    lu.set(pivot_row, j, tmp);
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let v = lu.get(i, j) - factor * lu.get(k, j);
                    lu.set(i, j, v);
                }
            }
        }
        Ok(LuDecomposition { lu, perm, sign })
    }

    /// Solve `A x = b` for the factorized matrix.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// [`LuDecomposition::solve`] writing into a caller-owned buffer, so
    /// repeated solves against one factorization (the capacitance systems of
    /// [`crate::woodbury::WoodburyCorrection`]) allocate nothing once the
    /// buffer has grown to the system size.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        let n = self.lu.nrows;
        if b.len() != n {
            return Err(SparseError::DimensionMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the row permutation, then forward- and back-substitute.
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu.get(i, j) * x[j];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu.get(i, j) * x[j];
            }
            x[i] = sum / self.lu.get(i, i);
        }
        Ok(())
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.nrows;
        let mut det = self.sign;
        for i in 0..n {
            det *= self.lu.get(i, i);
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = example();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.row(0), &[4.0, 1.0, 0.0]);
        assert_eq!(m.column(1), vec![1.0, 3.0, 1.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates_shapes() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_and_diagonal() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let d = DenseMatrix::from_diagonal(&[2.0, 3.0]);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = example();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![6.0, 10.0, 8.0]);
        let yt = m.matvec_transpose(&[1.0, 2.0, 3.0]).unwrap();
        // M is symmetric so the transposed product matches.
        assert_eq!(yt, y);
        assert!(m.matvec(&[1.0]).is_err());

        let t = m.transpose();
        assert_eq!(t, m); // symmetric
    }

    #[test]
    fn matmul_matches_manual() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert!(a.matmul(&DenseMatrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn gram_is_at_a() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&expected).unwrap() < 1e-12);
        assert!(g.is_symmetric(1e-12));
    }

    #[test]
    fn add_sub_scale() {
        let a = example();
        let zero = a.sub(&a).unwrap();
        assert_eq!(zero.frobenius_norm(), 0.0);
        let doubled = a.add(&a).unwrap();
        assert!(doubled.max_abs_diff(&a.scaled(2.0)).unwrap() < 1e-15);
    }

    #[test]
    fn lu_solve_and_inverse() {
        let a = example();
        let b = vec![1.0, 2.0, 3.0];
        let x = a.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(vector::max_abs_diff(&ax, &b).unwrap() < 1e-10);

        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn lu_requires_square_and_detects_singular() {
        let rect = DenseMatrix::zeros(2, 3);
        assert!(rect.lu().is_err());
        let singular = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            singular.inverse(),
            Err(SparseError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn lu_pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        let det = a.lu().unwrap().determinant();
        assert!((det + 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_diagonal() {
        let d = DenseMatrix::from_diagonal(&[2.0, 3.0, 4.0]);
        assert!((d.lu().unwrap().determinant() - 24.0).abs() < 1e-12);
    }
}
