//! Truncated low-rank approximation of symmetric matrices.
//!
//! Used by the **FMR** baseline (He et al. \[8\] in the paper): after spectral
//! partitioning, each (block of the) adjacency matrix is replaced by a
//! low-rank approximation so the ranking scores can be computed in the
//! reduced space. For a symmetric matrix the truncated SVD used in the paper
//! coincides with the truncated eigendecomposition computed here.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::eigen::{jacobi_eigen, lanczos_largest, EigenPairs};
use crate::error::{Result, SparseError};

/// A rank-`r` symmetric approximation `A ≈ V Λ Vᵀ`.
#[derive(Debug, Clone)]
pub struct LowRank {
    /// Eigenvalues of the retained components (descending).
    pub values: Vec<f64>,
    /// Orthonormal basis, one column per retained component (`n × r`).
    pub vectors: DenseMatrix,
}

impl LowRank {
    /// Build a rank-`rank` approximation of a symmetric sparse matrix using
    /// Lanczos iteration.
    pub fn from_sparse(a: &CsrMatrix, rank: usize, seed: u64) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let subspace = (2 * rank + 20).min(a.nrows());
        let pairs = lanczos_largest(a, rank, subspace, seed)?;
        Ok(LowRank::from_pairs(pairs))
    }

    /// Build a rank-`rank` approximation of a symmetric dense matrix using
    /// the Jacobi eigensolver (small matrices only).
    pub fn from_dense(a: &DenseMatrix, rank: usize) -> Result<Self> {
        let mut pairs = jacobi_eigen(a)?;
        let keep = rank.min(pairs.values.len());
        pairs.values.truncate(keep);
        let mut vectors = DenseMatrix::zeros(a.nrows(), keep);
        for col in 0..keep {
            for row in 0..a.nrows() {
                vectors.set(row, col, pairs.vectors.get(row, col));
            }
        }
        Ok(LowRank {
            values: pairs.values,
            vectors,
        })
    }

    fn from_pairs(pairs: EigenPairs) -> Self {
        LowRank {
            values: pairs.values,
            vectors: pairs.vectors,
        }
    }

    /// Rank of the approximation.
    pub fn rank(&self) -> usize {
        self.values.len()
    }

    /// Dimension of the approximated matrix.
    pub fn dim(&self) -> usize {
        self.vectors.nrows()
    }

    /// Apply the approximation to a vector: `y = V Λ Vᵀ x`.
    pub fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.dim() {
            return Err(SparseError::DimensionMismatch {
                op: "lowrank apply",
                left: (self.dim(), self.dim()),
                right: (x.len(), 1),
            });
        }
        let coeffs = self.vectors.matvec_transpose(x)?;
        let scaled: Vec<f64> = coeffs
            .iter()
            .zip(self.values.iter())
            .map(|(c, l)| c * l)
            .collect();
        self.vectors.matvec(&scaled)
    }

    /// Solve `(I − α V Λ Vᵀ) x = q` exactly in the reduced space:
    ///
    /// `x = q + V diag(α λᵢ / (1 − α λᵢ)) Vᵀ q`.
    ///
    /// This is the reduced-space solve FMR performs per block; components with
    /// `1 − α λᵢ` close to zero are rejected as singular.
    pub fn solve_shifted(&self, alpha: f64, q: &[f64]) -> Result<Vec<f64>> {
        if q.len() != self.dim() {
            return Err(SparseError::DimensionMismatch {
                op: "lowrank solve_shifted",
                left: (self.dim(), self.dim()),
                right: (q.len(), 1),
            });
        }
        let coeffs = self.vectors.matvec_transpose(q)?;
        let mut scaled = Vec::with_capacity(coeffs.len());
        for (idx, (&c, &l)) in coeffs.iter().zip(self.values.iter()).enumerate() {
            let denom = 1.0 - alpha * l;
            if denom.abs() < 1e-12 {
                return Err(SparseError::SingularMatrix { pivot: idx });
            }
            scaled.push(c * alpha * l / denom);
        }
        let mut x = self.vectors.matvec(&scaled)?;
        for (xi, qi) in x.iter_mut().zip(q.iter()) {
            *xi += qi;
        }
        Ok(x)
    }

    /// Reconstruct the dense approximation `V Λ Vᵀ` (tests / small inputs).
    pub fn reconstruct_dense(&self) -> DenseMatrix {
        let n = self.dim();
        let r = self.rank();
        let mut scaled = DenseMatrix::zeros(n, r);
        for col in 0..r {
            for row in 0..n {
                scaled.set(row, col, self.vectors.get(row, col) * self.values[col]);
            }
        }
        scaled
            .matmul(&self.vectors.transpose())
            .expect("low-rank reconstruction shape mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::vector::max_abs_diff;

    fn block_diagonal_graph() -> CsrMatrix {
        // Two dense blocks of 5 nodes each; a rank-2 approximation captures
        // most of the spectrum.
        let n = 10;
        let mut coo = CooMatrix::new(n, n);
        for block in 0..2 {
            let base = block * 5;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    coo.push_symmetric(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn rank_limited_approximation_quality() {
        let a = block_diagonal_graph();
        let lr = LowRank::from_sparse(&a, 2, 11).unwrap();
        assert_eq!(lr.rank(), 2);
        assert_eq!(lr.dim(), 10);
        // Dominant eigenvalue of a K5 block adjacency is 4. The eigenvalue is
        // degenerate (one copy per block) and a single-vector Krylov space
        // only captures one copy, so only the first value is pinned exactly.
        assert!((lr.values[0] - 4.0).abs() < 1e-6);
        assert!(lr.values[1] <= 4.0 + 1e-9 && lr.values[1] >= -1.0 - 1e-9);
        // Rank-2 keeps the dominant structure of the two blocks.
        let recon = lr.reconstruct_dense();
        let full = a.to_dense();
        let err = recon.max_abs_diff(&full).unwrap();
        assert!(err <= 1.0 + 1e-9, "unexpectedly poor approximation: {err}");
    }

    #[test]
    fn apply_matches_reconstruction() {
        let a = block_diagonal_graph();
        let lr = LowRank::from_sparse(&a, 3, 5).unwrap();
        let x: Vec<f64> = (0..10).map(|i| (i as f64).cos()).collect();
        let applied = lr.apply(&x).unwrap();
        let reference = lr.reconstruct_dense().matvec(&x).unwrap();
        assert!(max_abs_diff(&applied, &reference).unwrap() < 1e-10);
        assert!(lr.apply(&[1.0]).is_err());
    }

    #[test]
    fn full_rank_solve_matches_dense_inverse() {
        let a = block_diagonal_graph();
        let dense = a.to_dense();
        let lr = LowRank::from_dense(&dense, 10).unwrap();
        let alpha = 0.2;
        let mut q = vec![0.0; 10];
        q[0] = 1.0;
        let x = lr.solve_shifted(alpha, &q).unwrap();
        // Reference: (I - alpha * A)^{-1} q via dense solve.
        let shifted = DenseMatrix::identity(10).sub(&dense.scaled(alpha)).unwrap();
        let x_ref = shifted.solve(&q).unwrap();
        assert!(max_abs_diff(&x, &x_ref).unwrap() < 1e-8);
    }

    #[test]
    fn solve_shifted_detects_singular_component() {
        let a = CsrMatrix::identity(3);
        let lr = LowRank::from_sparse(&a, 1, 2).unwrap();
        // alpha * lambda = 1 exactly → singular.
        assert!(lr.solve_shifted(1.0, &[1.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn from_dense_truncates() {
        let dense = block_diagonal_graph().to_dense();
        let lr = LowRank::from_dense(&dense, 4).unwrap();
        assert_eq!(lr.rank(), 4);
        let lr_over = LowRank::from_dense(&dense, 100).unwrap();
        assert_eq!(lr_over.rank(), 10);
    }

    #[test]
    fn rejects_rectangular() {
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(LowRank::from_sparse(&rect, 1, 0).is_err());
    }
}
