//! Compressed sparse row (CSR) matrices.
//!
//! The k-NN adjacency matrix `A`, the normalized matrix
//! `W = I − α C^{-1/2} A C^{-1/2}` and the triangular factors `L`, `U` of the
//! paper all live in this format. A k-NN graph has `O(n)` edges, so every
//! matrix here carries `O(n)` non-zero entries — the property Lemmas 1–2 rely
//! on for Mogul's linear time and space bounds.

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::permutation::Permutation;

/// A sparse matrix in compressed sparse row format with sorted column indices.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build a CSR matrix from raw parts, validating structural invariants:
    /// `indptr` is monotone with `nrows + 1` entries, column indices are in
    /// range and strictly increasing within each row.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::InvalidInput(format!(
                "indptr length {} does not match nrows {} + 1",
                indptr.len(),
                nrows
            )));
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidInput(format!(
                "indices length {} does not match values length {}",
                indices.len(),
                values.len()
            )));
        }
        if indptr[0] != 0 || indptr[nrows] != indices.len() {
            return Err(SparseError::InvalidInput(
                "indptr must start at 0 and end at nnz".into(),
            ));
        }
        for row in 0..nrows {
            let (start, end) = (indptr[row], indptr[row + 1]);
            if start > end || end > indices.len() {
                return Err(SparseError::InvalidInput(format!(
                    "indptr is not monotone at row {row}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &col in &indices[start..end] {
                if col >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        index: (row, col),
                        shape: (nrows, ncols),
                    });
                }
                if let Some(p) = prev {
                    if col <= p {
                        return Err(SparseError::InvalidInput(format!(
                            "column indices not strictly increasing in row {row}"
                        )));
                    }
                }
                prev = Some(col);
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Build a CSR matrix from `(row, col, value)` triplets (convenience
    /// wrapper over [`CooMatrix`](crate::CooMatrix)).
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        let mut coo = crate::coo::CooMatrix::with_capacity(nrows, ncols, triplets.len());
        for &(r, c, v) in triplets {
            coo.push(r, c, v)?;
        }
        Ok(coo.to_csr())
    }

    /// Sparse identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Sparse diagonal matrix from its diagonal entries (zeros are kept).
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    /// Convert a dense matrix to CSR, dropping entries with absolute value
    /// at or below `tol`.
    pub fn from_dense(dense: &DenseMatrix, tol: f64) -> Self {
        let nrows = dense.nrows();
        let ncols = dense.ncols();
        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..nrows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v.abs() > tol {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (start, end) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[start..end], &self.values[start..end])
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Value at `(i, j)`, `0.0` if not stored. Binary search over the row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterate over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals.iter()).map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "csr matvec",
                left: (self.nrows, self.ncols),
                right: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut sum = 0.0;
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                sum += v * x[j];
            }
            y[i] = sum;
        }
        Ok(y)
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "csr matvec_transpose",
                left: (self.ncols, self.nrows),
                right: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                y[j] += v * xi;
            }
        }
        Ok(y)
    }

    /// Transpose into a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut col_counts = vec![0usize; self.ncols];
        for &j in &self.indices {
            col_counts[j] += 1;
        }
        let mut indptr = vec![0usize; self.ncols + 1];
        for j in 0..self.ncols {
            indptr[j + 1] = indptr[j] + col_counts[j];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = indptr.clone();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                let pos = next[j];
                indices[pos] = i;
                values[pos] = v;
                next[j] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            values,
        }
    }

    /// Extract the main diagonal (length `min(nrows, ncols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Row sums (the degree vector `C_ii = Σ_j A_ij` of the paper).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// Return a copy with every value transformed by `f` (pattern unchanged;
    /// values mapped to exactly zero are kept as explicit zeros).
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Scale row `i` by `row_scale[i]` and column `j` by `col_scale[j]`,
    /// returning a new matrix: `out_ij = row_scale[i] * a_ij * col_scale[j]`.
    ///
    /// With `row_scale = col_scale = C^{-1/2}` this computes the symmetric
    /// normalization `C^{-1/2} A C^{-1/2}` from Equation (2).
    pub fn scale_rows_cols(&self, row_scale: &[f64], col_scale: &[f64]) -> Result<CsrMatrix> {
        if row_scale.len() != self.nrows || col_scale.len() != self.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "scale_rows_cols",
                left: (self.nrows, self.ncols),
                right: (row_scale.len(), col_scale.len()),
            });
        }
        let mut out = self.clone();
        for i in 0..self.nrows {
            let (start, end) = (self.indptr[i], self.indptr[i + 1]);
            for pos in start..end {
                let j = out.indices[pos];
                out.values[pos] *= row_scale[i] * col_scale[j];
            }
        }
        Ok(out)
    }

    /// Sparse sum `self + alpha * other`. The result contains the union of
    /// the two patterns (entries cancelling to exactly zero are dropped).
    pub fn add_scaled(&self, alpha: f64, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch {
                op: "csr add_scaled",
                left: (self.nrows, self.ncols),
                right: (other.nrows, other.ncols),
            });
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        indptr.push(0);
        for i in 0..self.nrows {
            let (ac, av) = self.row(i);
            let (bc, bv) = other.row(i);
            let (mut pa, mut pb) = (0usize, 0usize);
            while pa < ac.len() || pb < bc.len() {
                let (col, val) = if pb >= bc.len() || (pa < ac.len() && ac[pa] < bc[pb]) {
                    let out = (ac[pa], av[pa]);
                    pa += 1;
                    out
                } else if pa >= ac.len() || bc[pb] < ac[pa] {
                    let out = (bc[pb], alpha * bv[pb]);
                    pb += 1;
                    out
                } else {
                    let out = (ac[pa], av[pa] + alpha * bv[pb]);
                    pa += 1;
                    pb += 1;
                    out
                };
                if val != 0.0 {
                    indices.push(col);
                    values.push(val);
                }
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        })
    }

    /// `true` if the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for (i, j, v) in self.iter() {
            if (v - self.get(j, i)).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Symmetric permutation `A' = P A Pᵀ`: entry `(i, j)` of the result is
    /// entry `(old(i), old(j))` of `self`.
    pub fn permute_symmetric(&self, perm: &Permutation) -> Result<CsrMatrix> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if perm.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "permute_symmetric",
                left: (self.nrows, self.ncols),
                right: (perm.len(), perm.len()),
            });
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0);
        let mut row_buf: Vec<(usize, f64)> = Vec::new();
        for new_i in 0..self.nrows {
            let old_i = perm.old_index(new_i);
            let (cols, vals) = self.row(old_i);
            row_buf.clear();
            row_buf.extend(
                cols.iter()
                    .zip(vals.iter())
                    .map(|(&old_j, &v)| (perm.new_index(old_j), v)),
            );
            row_buf.sort_unstable_by_key(|&(j, _)| j);
            for &(j, v) in &row_buf {
                indices.push(j);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Lower-triangular part (entries with `col <= row` when
    /// `include_diagonal`, else `col < row`).
    pub fn lower_triangle(&self, include_diagonal: bool) -> CsrMatrix {
        self.filter(|i, j| if include_diagonal { j <= i } else { j < i })
    }

    /// Upper-triangular part (entries with `col >= row` when
    /// `include_diagonal`, else `col > row`).
    pub fn upper_triangle(&self, include_diagonal: bool) -> CsrMatrix {
        self.filter(|i, j| if include_diagonal { j >= i } else { j > i })
    }

    /// Keep only entries for which `keep(row, col)` returns true.
    pub fn filter(&self, mut keep: impl FnMut(usize, usize) -> bool) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if keep(i, j) {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Convert to a dense matrix (use only for small matrices / tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.nrows, self.ncols);
        for (i, j, v) in self.iter() {
            dense.set(i, j, v);
        }
        dense
    }

    /// Maximum absolute value of stored entries (`0.0` if empty).
    pub fn max_abs_value(&self) -> f64 {
        self.values.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 1 0 4 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn raw_parts_validation() {
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![0], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![0, 5], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.row(2).0, &[0, 2]);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.diagonal(), vec![2.0, 3.0, 4.0]);
        assert_eq!(m.row_sums(), vec![3.0, 3.0, 5.0]);
        assert_eq!(m.max_abs_value(), 4.0);
    }

    #[test]
    fn identity_and_diagonal_constructors() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), 1.0);
        let d = CsrMatrix::from_diagonal(&[5.0, 6.0]);
        assert_eq!(d.get(1, 1), 6.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let sparse = m.matvec(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert_eq!(sparse, dense);
        let sparse_t = m.matvec_transpose(&x).unwrap();
        let dense_t = m.to_dense().transpose().matvec(&x).unwrap();
        assert_eq!(sparse_t, dense_t);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_transpose(&[1.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, 3.0), (1, 2, 4.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(2, 1), 4.0);
        let tt = t.transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn scaling_and_mapping() {
        let m = sample();
        let scaled = m
            .scale_rows_cols(&[1.0, 2.0, 3.0], &[1.0, 1.0, 0.5])
            .unwrap();
        assert_eq!(scaled.get(1, 1), 6.0);
        assert_eq!(scaled.get(2, 2), 6.0);
        assert!(m.scale_rows_cols(&[1.0], &[1.0, 1.0, 1.0]).is_err());

        let mapped = m.map_values(|v| v * v);
        assert_eq!(mapped.get(2, 2), 16.0);
        assert_eq!(mapped.nnz(), m.nnz());
    }

    #[test]
    fn add_scaled_merges_patterns() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 1, 4.0)]).unwrap();
        let c = a.add_scaled(2.0, &b).unwrap();
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 6.0);
        assert_eq!(c.get(1, 1), 10.0);
        // Cancellation drops the entry.
        let d = a
            .add_scaled(
                -0.5,
                &CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0)]).unwrap(),
            )
            .unwrap();
        assert_eq!(d.nnz(), 1);
        assert!(a.add_scaled(1.0, &CsrMatrix::identity(3)).is_err());
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(sym.is_symmetric(1e-12));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(!asym.is_symmetric(1e-12));
        let rect = CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn symmetric_permutation_matches_dense() {
        let m = sample();
        let perm = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let pm = m.permute_symmetric(&perm).unwrap();
        for new_i in 0..3 {
            for new_j in 0..3 {
                assert_eq!(
                    pm.get(new_i, new_j),
                    m.get(perm.old_index(new_i), perm.old_index(new_j)),
                    "mismatch at ({new_i},{new_j})"
                );
            }
        }
        assert!(m.permute_symmetric(&Permutation::identity(2)).is_err());
    }

    #[test]
    fn triangle_extraction() {
        let m = sample();
        let lower = m.lower_triangle(true);
        assert_eq!(lower.nnz(), 4);
        assert_eq!(lower.get(0, 2), 0.0);
        let strict_lower = m.lower_triangle(false);
        assert_eq!(strict_lower.nnz(), 1);
        let upper = m.upper_triangle(true);
        assert_eq!(upper.nnz(), 4);
        assert_eq!(upper.get(2, 0), 0.0);
    }

    #[test]
    fn from_dense_roundtrip() {
        let dense = sample().to_dense();
        let back = CsrMatrix::from_dense(&dense, 0.0);
        assert_eq!(back, sample());
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(collected.len(), 5);
        assert!(collected.contains(&(2, 2, 4.0)));
    }
}
