//! Error types shared by every numerical kernel in the crate.

use std::error::Error;
use std::fmt;

/// Convenience alias used by all fallible operations in `mogul-sparse`.
pub type Result<T> = std::result::Result<T, SparseError>;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Two operands have incompatible shapes.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Number of rows of the offending matrix.
        nrows: usize,
        /// Number of columns of the offending matrix.
        ncols: usize,
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending (row, col) pair.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// A factorization or solve encountered an (effectively) singular pivot.
    SingularMatrix {
        /// The pivot index at which the breakdown occurred.
        pivot: usize,
    },
    /// A factorization broke down (e.g. non-positive pivot in Cholesky).
    Breakdown {
        /// The row/column at which the breakdown occurred.
        index: usize,
        /// The offending pivot value.
        value: f64,
    },
    /// An iterative method failed to converge within its iteration budget.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// The input violated a documented precondition.
    InvalidInput(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "matrix must be square, got {nrows}x{ncols}")
            }
            SparseError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            SparseError::Breakdown { index, value } => write!(
                f,
                "factorization breakdown at index {index}: pivot {value:e}"
            ),
            SparseError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} iterations (residual {residual:e})"
            ),
            SparseError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = SparseError::DimensionMismatch {
            op: "matvec",
            left: (3, 4),
            right: (5, 1),
        };
        let msg = err.to_string();
        assert!(msg.contains("matvec"));
        assert!(msg.contains("3x4"));
        assert!(msg.contains("5x1"));
    }

    #[test]
    fn display_not_square() {
        let err = SparseError::NotSquare { nrows: 2, ncols: 3 };
        assert!(err.to_string().contains("2x3"));
    }

    #[test]
    fn display_singular() {
        let err = SparseError::SingularMatrix { pivot: 7 };
        assert!(err.to_string().contains('7'));
    }

    #[test]
    fn display_breakdown_and_convergence() {
        let err = SparseError::Breakdown {
            index: 3,
            value: -1e-20,
        };
        assert!(err.to_string().contains("index 3"));
        let err = SparseError::DidNotConverge {
            iterations: 100,
            residual: 0.5,
        };
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn Error> = Box::new(SparseError::InvalidInput("bad".into()));
        assert!(err.to_string().contains("bad"));
    }
}
