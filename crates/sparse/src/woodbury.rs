//! Woodbury-identity solves for low-rank-plus-identity systems.
//!
//! The **EMR** baseline (Xu et al. \[21\] in the paper) approximates the
//! normalized adjacency with an anchor-graph factorization `S ≈ H Hᵀ` where
//! `H` is `n × d` and `d ≪ n`. Ranking scores are then obtained from
//!
//! ```text
//! (I − α H Hᵀ)⁻¹ q = q + α H (I_d − α Hᵀ H)⁻¹ Hᵀ q
//! ```
//!
//! which costs `O(n d + d³)` — the complexity quoted for EMR in Section 2.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};

/// Solve `(I − α H Hᵀ) x = q` for a sparse `n × d` factor `H`.
pub fn woodbury_solve_csr(h: &CsrMatrix, alpha: f64, q: &[f64]) -> Result<Vec<f64>> {
    if q.len() != h.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "woodbury rhs",
            left: (h.nrows(), h.ncols()),
            right: (q.len(), 1),
        });
    }
    let d = h.ncols();
    // Gram matrix G = Hᵀ H (d × d).
    let mut gram = DenseMatrix::zeros(d, d);
    for i in 0..h.nrows() {
        let (cols, vals) = h.row(i);
        for (&ja, &va) in cols.iter().zip(vals.iter()) {
            for (&jb, &vb) in cols.iter().zip(vals.iter()) {
                gram.add_to(ja, jb, va * vb);
            }
        }
    }
    // Reduced system matrix M = I_d − α G.
    let mut m = DenseMatrix::identity(d);
    for i in 0..d {
        for j in 0..d {
            m.add_to(i, j, -alpha * gram.get(i, j));
        }
    }
    let ht_q = h.matvec_transpose(q)?;
    let z = m.solve(&ht_q)?;
    let hz = h.matvec(&z)?;
    let mut x = q.to_vec();
    for (xi, hzi) in x.iter_mut().zip(hz.iter()) {
        *xi += alpha * hzi;
    }
    Ok(x)
}

/// Solve `(I − α H Hᵀ) x = q` for a dense `n × d` factor `H`.
pub fn woodbury_solve_dense(h: &DenseMatrix, alpha: f64, q: &[f64]) -> Result<Vec<f64>> {
    if q.len() != h.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "woodbury rhs",
            left: (h.nrows(), h.ncols()),
            right: (q.len(), 1),
        });
    }
    let d = h.ncols();
    let gram = h.gram();
    let mut m = DenseMatrix::identity(d);
    for i in 0..d {
        for j in 0..d {
            m.add_to(i, j, -alpha * gram.get(i, j));
        }
    }
    let ht_q = h.matvec_transpose(q)?;
    let z = m.solve(&ht_q)?;
    let hz = h.matvec(&z)?;
    let mut x = q.to_vec();
    for (xi, hzi) in x.iter_mut().zip(hz.iter()) {
        *xi += alpha * hzi;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::max_abs_diff;

    fn reference_solve(h: &DenseMatrix, alpha: f64, q: &[f64]) -> Vec<f64> {
        let n = h.nrows();
        let hht = h.matmul(&h.transpose()).unwrap();
        let system = DenseMatrix::identity(n).sub(&hht.scaled(alpha)).unwrap();
        system.solve(q).unwrap()
    }

    fn example_h() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![0.5, 0.1],
            vec![0.4, 0.0],
            vec![0.0, 0.6],
            vec![0.2, 0.3],
            vec![0.1, 0.1],
        ])
        .unwrap()
    }

    #[test]
    fn dense_woodbury_matches_direct_solve() {
        let h = example_h();
        let q = vec![1.0, 0.0, 0.0, 0.5, -0.2];
        let alpha = 0.9;
        let x = woodbury_solve_dense(&h, alpha, &q).unwrap();
        let x_ref = reference_solve(&h, alpha, &q);
        assert!(max_abs_diff(&x, &x_ref).unwrap() < 1e-10);
    }

    #[test]
    fn sparse_woodbury_matches_dense_path() {
        let h_dense = example_h();
        let h_sparse = CsrMatrix::from_dense(&h_dense, 0.0);
        let q = vec![0.0, 1.0, 0.0, 0.0, 0.0];
        let alpha = 0.99;
        let x_sparse = woodbury_solve_csr(&h_sparse, alpha, &q).unwrap();
        let x_dense = woodbury_solve_dense(&h_dense, alpha, &q).unwrap();
        assert!(max_abs_diff(&x_sparse, &x_dense).unwrap() < 1e-10);
        let x_ref = reference_solve(&h_dense, alpha, &q);
        assert!(max_abs_diff(&x_sparse, &x_ref).unwrap() < 1e-10);
    }

    #[test]
    fn zero_alpha_is_identity() {
        let h = example_h();
        let q = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = woodbury_solve_dense(&h, 0.0, &q).unwrap();
        assert!(max_abs_diff(&x, &q).unwrap() < 1e-14);
    }

    #[test]
    fn dimension_validation() {
        let h = example_h();
        assert!(woodbury_solve_dense(&h, 0.5, &[1.0]).is_err());
        let hs = CsrMatrix::from_dense(&h, 0.0);
        assert!(woodbury_solve_csr(&hs, 0.5, &[1.0]).is_err());
    }

    #[test]
    fn empty_factor_behaves_like_identity() {
        // d = 0 columns: H Hᵀ = 0, so the solve returns q.
        let h = DenseMatrix::zeros(4, 0);
        let q = vec![1.0, -1.0, 2.0, 0.5];
        let x = woodbury_solve_dense(&h, 0.7, &q).unwrap();
        assert!(max_abs_diff(&x, &q).unwrap() < 1e-14);
    }
}
