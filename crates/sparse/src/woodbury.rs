//! Woodbury-identity solves for low-rank-corrected systems.
//!
//! Two users share this module:
//!
//! 1. The **EMR** baseline (Xu et al. \[21\] in the paper) approximates the
//!    normalized adjacency with an anchor-graph factorization `S ≈ H Hᵀ`
//!    where `H` is `n × d` and `d ≪ n`. Ranking scores are then obtained from
//!
//!    ```text
//!    (I − α H Hᵀ)⁻¹ q = q + α H (I_d − α Hᵀ H)⁻¹ Hᵀ q
//!    ```
//!
//!    which costs `O(n d + d³)` — the complexity quoted for EMR in Section 2
//!    ([`woodbury_solve_csr`] / [`woodbury_solve_dense`]).
//!
//! 2. The **incremental index update** machinery (`mogul-core::update`): when
//!    database items are inserted or removed, the new ranking system matrix
//!    is the old one plus a low-rank symmetric correction, `W = W₀ + U Vᵀ`,
//!    and queries are answered against the *existing* factorization of `W₀`
//!    through the general Woodbury identity
//!
//!    ```text
//!    (W₀ + U Vᵀ)⁻¹ b = x₀ − Z (I_r + Vᵀ Z)⁻¹ Vᵀ x₀,
//!        where x₀ = W₀⁻¹ b and Z = W₀⁻¹ U.
//!    ```
//!
//!    [`WoodburyCorrection`] precomputes `Z` and LU-factorizes the `r × r`
//!    capacitance matrix `I_r + Vᵀ Z` once per update batch, so correcting
//!    one solved query costs `O(n r + r²)` and allocates nothing when driven
//!    through a reusable [`CorrectionWorkspace`].

use crate::csr::CsrMatrix;
use crate::dense::{DenseMatrix, LuDecomposition};
use crate::error::{Result, SparseError};

/// Solve `(I − α H Hᵀ) x = q` for a sparse `n × d` factor `H`.
pub fn woodbury_solve_csr(h: &CsrMatrix, alpha: f64, q: &[f64]) -> Result<Vec<f64>> {
    if q.len() != h.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "woodbury rhs",
            left: (h.nrows(), h.ncols()),
            right: (q.len(), 1),
        });
    }
    let d = h.ncols();
    // Gram matrix G = Hᵀ H (d × d).
    let mut gram = DenseMatrix::zeros(d, d);
    for i in 0..h.nrows() {
        let (cols, vals) = h.row(i);
        for (&ja, &va) in cols.iter().zip(vals.iter()) {
            for (&jb, &vb) in cols.iter().zip(vals.iter()) {
                gram.add_to(ja, jb, va * vb);
            }
        }
    }
    // Reduced system matrix M = I_d − α G.
    let mut m = DenseMatrix::identity(d);
    for i in 0..d {
        for j in 0..d {
            m.add_to(i, j, -alpha * gram.get(i, j));
        }
    }
    let ht_q = h.matvec_transpose(q)?;
    let z = m.solve(&ht_q)?;
    let hz = h.matvec(&z)?;
    let mut x = q.to_vec();
    for (xi, hzi) in x.iter_mut().zip(hz.iter()) {
        *xi += alpha * hzi;
    }
    Ok(x)
}

/// Solve `(I − α H Hᵀ) x = q` for a dense `n × d` factor `H`.
pub fn woodbury_solve_dense(h: &DenseMatrix, alpha: f64, q: &[f64]) -> Result<Vec<f64>> {
    if q.len() != h.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "woodbury rhs",
            left: (h.nrows(), h.ncols()),
            right: (q.len(), 1),
        });
    }
    let d = h.ncols();
    let gram = h.gram();
    let mut m = DenseMatrix::identity(d);
    for i in 0..d {
        for j in 0..d {
            m.add_to(i, j, -alpha * gram.get(i, j));
        }
    }
    let ht_q = h.matvec_transpose(q)?;
    let z = m.solve(&ht_q)?;
    let hz = h.matvec(&z)?;
    let mut x = q.to_vec();
    for (xi, hzi) in x.iter_mut().zip(hz.iter()) {
        *xi += alpha * hzi;
    }
    Ok(x)
}

/// Reusable scratch for [`WoodburyCorrection::apply_in`].
///
/// Holds the two rank-sized vectors one correction touches (`t = Vᵀ x₀` and
/// the capacitance solution). Like every workspace in this crate it carries
/// no correction state: any workspace works with any correction, and a fresh
/// workspace produces bit-identical results to a warm one.
#[derive(Debug, Clone, Default)]
pub struct CorrectionWorkspace {
    /// `t = Vᵀ x₀` (length = rank).
    t: Vec<f64>,
    /// Capacitance solution `y = (I + Vᵀ Z)⁻¹ t` (length = rank).
    y: Vec<f64>,
}

impl CorrectionWorkspace {
    /// An empty workspace; the two rank-sized buffers grow on first use.
    pub fn new() -> Self {
        CorrectionWorkspace::default()
    }
}

/// A precomputed low-rank correction turning solves against a base matrix
/// `W₀` into solves against `W = W₀ + U Vᵀ`.
///
/// `U` and `V` are supplied as sparse columns (`(row, value)` pairs); the
/// base matrix itself is abstracted behind a solver callback, so any
/// factorization (the incomplete or complete `L D Lᵀ` of a
/// [`crate::ichol::LdlFactors`], a dense LU, …) can serve as `W₀⁻¹`.
/// Construction performs `r` base solves to form `Z = W₀⁻¹ U` and one dense
/// LU factorization of the `r × r` capacitance matrix `I_r + Vᵀ Z`;
/// afterwards [`WoodburyCorrection::apply_in`] upgrades a base solution
/// `x₀ = W₀⁻¹ b` to the corrected solution `(W₀ + U Vᵀ)⁻¹ b` in
/// `O(n r + r²)` time with zero allocations (warm workspace).
#[derive(Debug, Clone)]
pub struct WoodburyCorrection {
    dim: usize,
    /// Sparse columns of `V` (validated, in-range).
    v_cols: Vec<Vec<(usize, f64)>>,
    /// `Z = W₀⁻¹ U`, one dense column per correction direction (`dim × r`).
    z: DenseMatrix,
    /// LU factors of the capacitance matrix `I_r + Vᵀ Z`.
    cap: LuDecomposition,
}

impl WoodburyCorrection {
    /// Precompute the correction for `W = W₀ + U Vᵀ`.
    ///
    /// `u_cols` and `v_cols` hold the `r` sparse columns of `U` and `V`;
    /// `base_solve(rhs, out)` must write `W₀⁻¹ rhs` into `out`. Fails if the
    /// capacitance matrix is singular (i.e. the corrected matrix is), if any
    /// index is out of range, or if any value is non-finite.
    pub fn new(
        dim: usize,
        u_cols: &[Vec<(usize, f64)>],
        v_cols: Vec<Vec<(usize, f64)>>,
        mut base_solve: impl FnMut(&[f64], &mut Vec<f64>) -> Result<()>,
    ) -> Result<Self> {
        if u_cols.len() != v_cols.len() {
            return Err(SparseError::DimensionMismatch {
                op: "woodbury correction factors",
                left: (dim, u_cols.len()),
                right: (dim, v_cols.len()),
            });
        }
        let r = u_cols.len();
        for col in u_cols.iter().chain(v_cols.iter()) {
            for &(row, value) in col {
                if row >= dim {
                    return Err(SparseError::IndexOutOfBounds {
                        index: (row, 0),
                        shape: (dim, r),
                    });
                }
                if !value.is_finite() {
                    return Err(SparseError::InvalidInput(format!(
                        "correction factor entry at row {row} is not finite"
                    )));
                }
            }
        }

        // Z = W₀⁻¹ U, one base solve per correction direction.
        let mut z = DenseMatrix::zeros(dim, r);
        let mut rhs = vec![0.0; dim];
        let mut solved = Vec::new();
        for (j, col) in u_cols.iter().enumerate() {
            for &(row, value) in col {
                rhs[row] += value;
            }
            base_solve(&rhs, &mut solved)?;
            if solved.len() != dim {
                return Err(SparseError::DimensionMismatch {
                    op: "woodbury base solve",
                    left: (dim, 1),
                    right: (solved.len(), 1),
                });
            }
            for (i, &value) in solved.iter().enumerate() {
                z.set(i, j, value);
            }
            for &(row, _) in col {
                rhs[row] = 0.0;
            }
        }

        // Capacitance matrix I_r + Vᵀ Z, LU-factorized once.
        let mut cap = DenseMatrix::identity(r);
        for (i, col) in v_cols.iter().enumerate() {
            for j in 0..r {
                let dot: f64 = col.iter().map(|&(row, value)| value * z.get(row, j)).sum();
                cap.add_to(i, j, dot);
            }
        }
        let cap = cap.lu()?;

        Ok(WoodburyCorrection {
            dim,
            v_cols,
            z,
            cap,
        })
    }

    /// Rank `r` of the correction (number of `U`/`V` columns).
    pub fn rank(&self) -> usize {
        self.v_cols.len()
    }

    /// Dimension `n` of the corrected system.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Estimated memory footprint in bytes (dominated by the `n × r` dense
    /// block `Z` — this is what the rebuild-debt policy upstream bounds).
    pub fn memory_bytes(&self) -> usize {
        let val = std::mem::size_of::<f64>();
        let idx = std::mem::size_of::<usize>();
        let r = self.rank();
        let v_nnz: usize = self.v_cols.iter().map(Vec::len).sum();
        self.dim * r * val            // Z
            + 2 * r * r * val         // capacitance LU (factors + permutation rounding up)
            + v_nnz * (idx + val) // sparse V
    }

    /// Upgrade a base solution in place: on entry `x = W₀⁻¹ b`, on exit
    /// `x = (W₀ + U Vᵀ)⁻¹ b`.
    ///
    /// Costs `O(nnz(V) + r² + n r)` and performs no heap allocation once the
    /// workspace buffers have grown to the correction rank.
    pub fn apply_in(&self, ws: &mut CorrectionWorkspace, x: &mut [f64]) -> Result<()> {
        if x.len() != self.dim {
            return Err(SparseError::DimensionMismatch {
                op: "woodbury correction apply",
                left: (self.dim, 1),
                right: (x.len(), 1),
            });
        }
        let r = self.rank();
        if r == 0 {
            return Ok(());
        }
        // t = Vᵀ x₀ (sparse dot products).
        ws.t.clear();
        ws.t.extend(
            self.v_cols
                .iter()
                .map(|col| col.iter().map(|&(row, value)| value * x[row]).sum::<f64>()),
        );
        // y = (I + Vᵀ Z)⁻¹ t.
        self.cap.solve_into(&ws.t, &mut ws.y)?;
        // x ← x₀ − Z y, streaming over the row-major dense block.
        for (i, xi) in x.iter_mut().enumerate() {
            let row = self.z.row(i);
            let mut correction = 0.0;
            for (zij, yj) in row.iter().zip(ws.y.iter()) {
                correction += zij * yj;
            }
            *xi -= correction;
        }
        Ok(())
    }

    /// [`WoodburyCorrection::apply_in`] with fresh scratch (convenience for
    /// one-off use; loops should reuse a [`CorrectionWorkspace`]).
    pub fn apply(&self, x: &mut [f64]) -> Result<()> {
        self.apply_in(&mut CorrectionWorkspace::new(), x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::max_abs_diff;

    fn reference_solve(h: &DenseMatrix, alpha: f64, q: &[f64]) -> Vec<f64> {
        let n = h.nrows();
        let hht = h.matmul(&h.transpose()).unwrap();
        let system = DenseMatrix::identity(n).sub(&hht.scaled(alpha)).unwrap();
        system.solve(q).unwrap()
    }

    fn example_h() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![0.5, 0.1],
            vec![0.4, 0.0],
            vec![0.0, 0.6],
            vec![0.2, 0.3],
            vec![0.1, 0.1],
        ])
        .unwrap()
    }

    #[test]
    fn dense_woodbury_matches_direct_solve() {
        let h = example_h();
        let q = vec![1.0, 0.0, 0.0, 0.5, -0.2];
        let alpha = 0.9;
        let x = woodbury_solve_dense(&h, alpha, &q).unwrap();
        let x_ref = reference_solve(&h, alpha, &q);
        assert!(max_abs_diff(&x, &x_ref).unwrap() < 1e-10);
    }

    #[test]
    fn sparse_woodbury_matches_dense_path() {
        let h_dense = example_h();
        let h_sparse = CsrMatrix::from_dense(&h_dense, 0.0);
        let q = vec![0.0, 1.0, 0.0, 0.0, 0.0];
        let alpha = 0.99;
        let x_sparse = woodbury_solve_csr(&h_sparse, alpha, &q).unwrap();
        let x_dense = woodbury_solve_dense(&h_dense, alpha, &q).unwrap();
        assert!(max_abs_diff(&x_sparse, &x_dense).unwrap() < 1e-10);
        let x_ref = reference_solve(&h_dense, alpha, &q);
        assert!(max_abs_diff(&x_sparse, &x_ref).unwrap() < 1e-10);
    }

    #[test]
    fn zero_alpha_is_identity() {
        let h = example_h();
        let q = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = woodbury_solve_dense(&h, 0.0, &q).unwrap();
        assert!(max_abs_diff(&x, &q).unwrap() < 1e-14);
    }

    #[test]
    fn dimension_validation() {
        let h = example_h();
        assert!(woodbury_solve_dense(&h, 0.5, &[1.0]).is_err());
        let hs = CsrMatrix::from_dense(&h, 0.0);
        assert!(woodbury_solve_csr(&hs, 0.5, &[1.0]).is_err());
    }

    #[test]
    fn empty_factor_behaves_like_identity() {
        // d = 0 columns: H Hᵀ = 0, so the solve returns q.
        let h = DenseMatrix::zeros(4, 0);
        let q = vec![1.0, -1.0, 2.0, 0.5];
        let x = woodbury_solve_dense(&h, 0.7, &q).unwrap();
        assert!(max_abs_diff(&x, &q).unwrap() < 1e-14);
    }

    // ------------------------------------------------------------------
    // WoodburyCorrection
    // ------------------------------------------------------------------

    /// A small SPD base matrix (diagonally dominant).
    fn base_matrix() -> DenseMatrix {
        let n = 6;
        let mut w = DenseMatrix::identity(n);
        for i in 0..n {
            w.set(i, i, 2.0 + 0.1 * i as f64);
            if i + 1 < n {
                w.set(i, i + 1, -0.4);
                w.set(i + 1, i, -0.4);
            }
        }
        w
    }

    #[test]
    fn corrected_solve_matches_direct_dense_solve() {
        let w0 = base_matrix();
        let n = w0.nrows();
        // Rank-3 unstructured correction U Vᵀ.
        let u_cols = vec![
            vec![(0usize, 0.3), (4usize, -0.2)],
            vec![(2usize, 0.5)],
            vec![(1usize, -0.1), (3usize, 0.2), (5usize, 0.4)],
        ];
        let v_cols = vec![
            vec![(1usize, 0.2), (5usize, 0.3)],
            vec![(2usize, -0.4), (0usize, 0.1)],
            vec![(4usize, 0.25)],
        ];
        let correction = WoodburyCorrection::new(n, &u_cols, v_cols.clone(), |b, out| {
            *out = w0.solve(b)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(correction.rank(), 3);
        assert_eq!(correction.dim(), n);
        assert!(correction.memory_bytes() > 0);

        // Direct reference: assemble W = W₀ + U Vᵀ densely and solve.
        let mut w = w0.clone();
        for (uc, vc) in u_cols.iter().zip(v_cols.iter()) {
            for &(i, uv) in uc {
                for &(j, vv) in vc {
                    w.add_to(i, j, uv * vv);
                }
            }
        }
        let b = vec![1.0, -0.5, 0.0, 2.0, 0.25, -1.0];
        let mut x = w0.solve(&b).unwrap();
        correction.apply(&mut x).unwrap();
        let x_ref = w.solve(&b).unwrap();
        assert!(max_abs_diff(&x, &x_ref).unwrap() < 1e-10);

        // Workspace reuse is bit-identical to fresh scratch.
        let mut ws = CorrectionWorkspace::new();
        for rhs in [&b, &vec![0.0, 1.0, 0.0, 0.0, -2.0, 0.5]] {
            let mut fresh = w0.solve(rhs).unwrap();
            let mut reused = fresh.clone();
            correction.apply(&mut fresh).unwrap();
            correction.apply_in(&mut ws, &mut reused).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn symmetric_row_column_update_decomposition() {
        // The shape mogul-core::update feeds in: a symmetric Δ supported on
        // rows/columns R, decomposed as Δ = E_R A_R + B E_Rᵀ with
        // U = [E_R | B], V = [A_Rᵀ | E_R].
        let w0 = base_matrix();
        let n = w0.nrows();
        let r_set = [1usize, 4];
        // Symmetric Δ touching rows/cols 1 and 4 (including entries to
        // columns outside R).
        let mut delta = DenseMatrix::zeros(n, n);
        for &(i, j, v) in &[
            (1usize, 0usize, 0.15),
            (1, 3, -0.2),
            (1, 4, 0.1),
            (4, 5, 0.05),
            (1, 1, 0.3),
            (4, 4, -0.1),
        ] {
            delta.add_to(i, j, v);
            if i != j {
                delta.add_to(j, i, v);
            }
        }
        // A_R = rows R of Δ; B = columns R of the remainder.
        let mut u_cols = Vec::new();
        let mut v_cols = Vec::new();
        for &row in &r_set {
            u_cols.push(vec![(row, 1.0)]);
            let a_row: Vec<(usize, f64)> = (0..n)
                .filter(|&j| delta.get(row, j) != 0.0)
                .map(|j| (j, delta.get(row, j)))
                .collect();
            v_cols.push(a_row);
        }
        for &col in &r_set {
            let b_col: Vec<(usize, f64)> = (0..n)
                .filter(|&i| !r_set.contains(&i) && delta.get(i, col) != 0.0)
                .map(|i| (i, delta.get(i, col)))
                .collect();
            u_cols.push(b_col);
            v_cols.push(vec![(col, 1.0)]);
        }
        let correction = WoodburyCorrection::new(n, &u_cols, v_cols, |b, out| {
            *out = w0.solve(b)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(correction.rank(), 2 * r_set.len());

        let w = w0.add(&delta).unwrap();
        let b = vec![0.5, 1.0, -1.0, 0.0, 2.0, 0.1];
        let mut x = w0.solve(&b).unwrap();
        correction.apply(&mut x).unwrap();
        let x_ref = w.solve(&b).unwrap();
        assert!(max_abs_diff(&x, &x_ref).unwrap() < 1e-10);
    }

    #[test]
    fn zero_rank_correction_is_identity() {
        let w0 = base_matrix();
        let correction = WoodburyCorrection::new(6, &[], Vec::new(), |b, out| {
            *out = w0.solve(b)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(correction.rank(), 0);
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let before = x.clone();
        correction.apply(&mut x).unwrap();
        assert_eq!(x, before);
    }

    #[test]
    fn correction_validation() {
        let w0 = base_matrix();
        let solve = |b: &[f64], out: &mut Vec<f64>| {
            *out = w0.solve(b)?;
            Ok(())
        };
        // Mismatched column counts.
        assert!(WoodburyCorrection::new(6, &[vec![(0, 1.0)]], Vec::new(), solve).is_err());
        // Out-of-range row index.
        assert!(
            WoodburyCorrection::new(6, &[vec![(9, 1.0)]], vec![vec![(0, 1.0)]], solve).is_err()
        );
        // Non-finite value.
        assert!(
            WoodburyCorrection::new(6, &[vec![(0, f64::NAN)]], vec![vec![(0, 1.0)]], solve)
                .is_err()
        );
        // Singular corrected matrix: U Vᵀ = −W₀ on a 1-dim system.
        let singular = WoodburyCorrection::new(
            1,
            &[vec![(0, -1.0)]],
            vec![vec![(0, 1.0)]],
            |b: &[f64], out: &mut Vec<f64>| {
                out.clear();
                out.push(b[0]);
                Ok(())
            },
        );
        assert!(singular.is_err());
        // Wrong-length vector at apply time.
        let ok =
            WoodburyCorrection::new(6, &[vec![(0, 0.1)]], vec![vec![(0, 0.1)]], solve).unwrap();
        assert!(ok.apply(&mut [1.0, 2.0]).is_err());
    }
}
