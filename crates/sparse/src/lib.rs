//! # mogul-sparse
//!
//! Sparse and dense linear-algebra substrate for the Mogul manifold-ranking
//! library (Fujiwara et al., *Scaling Manifold Ranking Based Image Retrieval*,
//! VLDB 2014).
//!
//! The paper's machinery is built almost entirely out of a handful of
//! numerical kernels that this crate provides from scratch:
//!
//! * [`CsrMatrix`] / [`CooMatrix`] — compressed sparse row storage for the
//!   k-NN adjacency matrix and everything derived from it.
//! * [`Permutation`] — the node permutation matrix `P` of Section 4.2.2
//!   (`A' = P A Pᵀ`).
//! * [`triangular`] — forward/back substitution (Equations (4) and (5)),
//!   each solve also available as a `*_into` variant writing into
//!   caller-owned buffers (see [`SolveWorkspace`]) for allocation-free loops,
//!   and as a blocked `*_multi_into` variant that solves a whole panel of
//!   right-hand sides per traversal of the factor (see
//!   [`MultiSolveWorkspace`]) — the substrate of the batched query engine.
//! * [`kernel`] — the lane-kernel trait under every panel sweep: a scalar
//!   reference implementation and a runtime-dispatched AVX2 implementation
//!   (behind the `simd` cargo feature), bit-identical by construction.
//! * [`parallel`] — the audited `available_parallelism` policy
//!   ([`effective_threads`]) and the wave-scheduling machinery behind the
//!   scoped-thread parallel factorizations.
//! * [`ichol`] — Incomplete Cholesky `L D Lᵀ` factorization restricted to the
//!   sparsity pattern of `W` (Equations (6) and (7)).
//! * [`ldl`] — complete ("Modified Cholesky" in the paper's terminology)
//!   sparse `L D Lᵀ` factorization with fill-in, used by MogulE (Section 4.6.1).
//! * [`eigen`] / [`lowrank`] — Lanczos and Jacobi eigensolvers plus truncated
//!   low-rank approximation, used by the FMR baseline and spectral clustering.
//! * [`woodbury`] — Woodbury-identity solves: the anchor-graph form used by
//!   the EMR baseline, and the general [`WoodburyCorrection`] low-rank update
//!   kernel used by incremental index updates (`mogul-core::update`).
//! * [`dense`] — dense matrices with LU decomposition and inversion, used by
//!   the `O(n³)` Inverse baseline and for verification in tests.
//! * [`persist`] — the byte-level codec of the on-disk index format: bit-exact
//!   `f64`/CSR/permutation/`L D Lᵀ`-factor (de)serialization plus the FNV-1a
//!   section checksum (the container lives in `mogul-core::persist`).
//!
//! All numerics use `f64`. The crate has no third-party dependencies.

#![deny(missing_docs)]
// Index-based loops are used deliberately throughout the numerical kernels:
// they mirror the paper's equations and index several arrays in lockstep.
#![allow(clippy::needless_range_loop)]

pub mod coo;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod error;
pub mod ichol;
pub mod kernel;
pub mod ldl;
pub mod lowrank;
pub mod parallel;
pub mod permutation;
pub mod persist;
pub mod stats;
pub mod triangular;
pub mod vector;
pub mod woodbury;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{Result, SparseError};
pub use ichol::{incomplete_ldl, incomplete_ldl_threaded, LdlFactors};
pub use kernel::{active_kernel, set_kernel_override, simd_available, KernelKind};
pub use ldl::{complete_ldl, complete_ldl_threaded, CompleteLdl};
pub use parallel::effective_threads;
pub use permutation::Permutation;
pub use triangular::{MultiSolveWorkspace, SolveWorkspace, MAX_PANEL_WIDTH};
pub use woodbury::{CorrectionWorkspace, WoodburyCorrection};
