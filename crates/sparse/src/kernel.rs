//! Lane kernels: the vectorizable primitives under every panel sweep.
//!
//! The panel layout (`panel[node * width + lane]`, see
//! [`MultiSolveWorkspace`](crate::MultiSolveWorkspace)) keeps the `width` lane
//! values of a node adjacent precisely so the per-node inner loops can run as
//! SIMD instructions. This module names those inner loops as an explicit
//! [`LaneKernel`] trait with two implementations:
//!
//! * [`ScalarKernel`] — the plain `f64` loops the sweeps have always run.
//!   Always available, always the default.
//! * `Avx2Kernel` — AVX2 intrinsics (4 `f64` lanes per instruction),
//!   compiled only under the `simd` cargo feature on `x86_64` and selected at
//!   runtime only when the CPU reports AVX2 support.
//!
//! # Exactness contract
//!
//! Both kernels produce **bit-identical** results. Every primitive operates on
//! per-lane-independent accumulator chains (`acc[lane] -= v * x[lane]`,
//! `row[lane] /= d`): lane `b`'s value never feeds lane `b'`, so evaluating
//! lanes in parallel performs exactly the same IEEE-754 operations in exactly
//! the same order per lane as the scalar loop. The AVX2 implementation uses
//! separate multiply and subtract instructions — never fused multiply-add,
//! which would change rounding — so the SIMD fast path is a pure reordering
//! across (independent) lanes, not a renumbering of any lane's arithmetic.
//!
//! # Dispatch rules
//!
//! [`active_kernel`] resolves once per call site in this order:
//!
//! 1. a process-wide override installed by [`set_kernel_override`]
//!    (benchmarks and the bit-identity test batteries use this to pin a path);
//! 2. [`KernelKind::Simd`] when the crate was built with `--features simd`,
//!    the target is `x86_64` and the running CPU reports AVX2;
//! 3. [`KernelKind::Scalar`] otherwise.
//!
//! Requesting [`KernelKind::Simd`] when the SIMD path is unavailable (feature
//! off, non-x86 target, or no AVX2 at runtime) silently falls back to the
//! scalar kernel — the request is a performance hint, never a correctness
//! switch.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation a panel sweep should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Plain `f64` loops. Always available; the default.
    Scalar,
    /// The vectorized path (AVX2 on `x86_64` under `--features simd`).
    /// Falls back to [`KernelKind::Scalar`] when unavailable.
    Simd,
}

/// Process-wide kernel override: 0 = none, 1 = force scalar, 2 = force SIMD.
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether the SIMD kernel can actually run in this process: the `simd`
/// feature was compiled in, the target is `x86_64`, and the CPU has AVX2.
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// The kernel the panel sweeps will use right now (override, then runtime
/// detection, then scalar — see the module docs for the full dispatch rules).
pub fn active_kernel() -> KernelKind {
    match KERNEL_OVERRIDE.load(Ordering::Relaxed) {
        1 => KernelKind::Scalar,
        2 if simd_available() => KernelKind::Simd,
        2 => KernelKind::Scalar,
        _ => {
            if simd_available() {
                KernelKind::Simd
            } else {
                KernelKind::Scalar
            }
        }
    }
}

/// Install (or clear, with `None`) a process-wide kernel override.
///
/// Intended for benchmarks and for the bit-identity test batteries, which run
/// the same workload under both kernels and compare results bit for bit.
/// Forcing [`KernelKind::Simd`] where it is unavailable still runs scalar.
pub fn set_kernel_override(kind: Option<KernelKind>) {
    let code = match kind {
        None => 0,
        Some(KernelKind::Scalar) => 1,
        Some(KernelKind::Simd) => 2,
    };
    KERNEL_OVERRIDE.store(code, Ordering::Relaxed);
}

/// The lane primitives every panel sweep is built from.
///
/// Implementations must satisfy the exactness contract in the module docs:
/// per lane, the same IEEE-754 operations in the same order as
/// [`ScalarKernel`]. All slices passed to a kernel have equal length (the
/// panel width); implementations may not read or write outside them.
pub trait LaneKernel: Copy {
    /// `acc[b] -= v * x[b]` for every lane `b` — the elimination update of
    /// the forward/back substitution sweeps.
    fn axpy_neg(self, acc: &mut [f64], x: &[f64], v: f64);

    /// `out[b] = acc[b] / d` for every lane `b` — the pivot division of the
    /// non-unit triangular solves.
    fn div_store(self, out: &mut [f64], acc: &[f64], d: f64);

    /// `row[b] /= d` for every lane `b` — the in-place diagonal scaling of
    /// `scale_diag_multi_into`.
    fn div_assign(self, row: &mut [f64], d: f64);
}

/// The reference scalar implementation: plain `f64` loops.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl LaneKernel for ScalarKernel {
    #[inline(always)]
    fn axpy_neg(self, acc: &mut [f64], x: &[f64], v: f64) {
        for (a, &xv) in acc.iter_mut().zip(x.iter()) {
            *a -= v * xv;
        }
    }

    #[inline(always)]
    fn div_store(self, out: &mut [f64], acc: &[f64], d: f64) {
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            *o = a / d;
        }
    }

    #[inline(always)]
    fn div_assign(self, row: &mut [f64], d: f64) {
        for v in row.iter_mut() {
            *v /= d;
        }
    }
}

/// AVX2 implementation: 4 `f64` lanes per instruction, unaligned loads and
/// stores (panels carry no alignment guarantee), remainder lanes scalar.
///
/// Only constructible through [`Avx2Kernel::try_new`], which performs the
/// runtime CPUID check — holding a value is proof the instructions can run.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[derive(Debug, Clone, Copy)]
pub struct Avx2Kernel(());

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl Avx2Kernel {
    /// The AVX2 kernel, if the running CPU supports it.
    pub fn try_new() -> Option<Self> {
        if std::arch::is_x86_feature_detected!("avx2") {
            Some(Avx2Kernel(()))
        } else {
            None
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl LaneKernel for Avx2Kernel {
    #[inline(always)]
    fn axpy_neg(self, acc: &mut [f64], x: &[f64], v: f64) {
        use std::arch::x86_64::*;
        let len = acc.len();
        debug_assert_eq!(len, x.len());
        // SAFETY: construction proved AVX2 is available; all pointer
        // arithmetic stays inside the equal-length `acc` and `x` slices.
        unsafe {
            let vv = _mm256_set1_pd(v);
            let mut i = 0usize;
            while i + 4 <= len {
                let a = _mm256_loadu_pd(acc.as_ptr().add(i));
                let xv = _mm256_loadu_pd(x.as_ptr().add(i));
                // mul + sub, never FMA: FMA skips the intermediate rounding
                // step and would break bit-identity with the scalar kernel.
                let prod = _mm256_mul_pd(vv, xv);
                _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_sub_pd(a, prod));
                i += 4;
            }
            while i < len {
                *acc.get_unchecked_mut(i) -= v * *x.get_unchecked(i);
                i += 1;
            }
        }
    }

    #[inline(always)]
    fn div_store(self, out: &mut [f64], acc: &[f64], d: f64) {
        use std::arch::x86_64::*;
        let len = out.len();
        debug_assert_eq!(len, acc.len());
        // SAFETY: as in `axpy_neg`.
        unsafe {
            let dv = _mm256_set1_pd(d);
            let mut i = 0usize;
            while i + 4 <= len {
                let a = _mm256_loadu_pd(acc.as_ptr().add(i));
                _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_div_pd(a, dv));
                i += 4;
            }
            while i < len {
                *out.get_unchecked_mut(i) = *acc.get_unchecked(i) / d;
                i += 1;
            }
        }
    }

    #[inline(always)]
    fn div_assign(self, row: &mut [f64], d: f64) {
        use std::arch::x86_64::*;
        let len = row.len();
        // SAFETY: as in `axpy_neg`.
        unsafe {
            let dv = _mm256_set1_pd(d);
            let mut i = 0usize;
            while i + 4 <= len {
                let a = _mm256_loadu_pd(row.as_ptr().add(i));
                _mm256_storeu_pd(row.as_mut_ptr().add(i), _mm256_div_pd(a, dv));
                i += 4;
            }
            while i < len {
                let p = row.get_unchecked_mut(i);
                *p /= d;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<K: LaneKernel>(k: K) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // Lengths straddle the 4-lane SIMD chunking (remainders 1..3) and the
        // values are "ragged" decimals that round at every operation.
        let x: Vec<f64> = (0..11).map(|i| 0.1 + i as f64 * 0.3).collect();
        let mut acc: Vec<f64> = (0..11).map(|i| 1.7 - i as f64 * 0.913).collect();
        k.axpy_neg(&mut acc, &x, 0.37);
        let mut out = vec![0.0; 11];
        k.div_store(&mut out, &acc, 0.7);
        let mut row = x.clone();
        k.div_assign(&mut row, -3.3);
        (acc, out, row)
    }

    #[test]
    fn scalar_kernel_matches_reference_loops() {
        let (acc, out, row) = exercise(ScalarKernel);
        for i in 0..11 {
            let x = 0.1 + i as f64 * 0.3;
            let a = (1.7 - i as f64 * 0.913) - 0.37 * x;
            assert_eq!(acc[i], a);
            assert_eq!(out[i], a / 0.7);
            assert_eq!(row[i], x / -3.3);
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn avx2_kernel_is_bit_identical_to_scalar() {
        let Some(avx2) = Avx2Kernel::try_new() else {
            return; // CPU without AVX2: nothing to compare.
        };
        // Every length 0..=19 so all remainder shapes are covered.
        for len in 0..20usize {
            let x: Vec<f64> = (0..len).map(|i| 0.1 + i as f64 * 0.3).collect();
            let base: Vec<f64> = (0..len).map(|i| 1.7 - i as f64 * 0.913).collect();
            let (mut a_s, mut a_v) = (base.clone(), base.clone());
            ScalarKernel.axpy_neg(&mut a_s, &x, 0.37);
            avx2.axpy_neg(&mut a_v, &x, 0.37);
            assert_eq!(a_s, a_v, "axpy_neg len {len}");
            let (mut o_s, mut o_v) = (vec![0.0; len], vec![0.0; len]);
            ScalarKernel.div_store(&mut o_s, &a_s, 0.7);
            avx2.div_store(&mut o_v, &a_v, 0.7);
            assert_eq!(o_s, o_v, "div_store len {len}");
            let (mut r_s, mut r_v) = (x.clone(), x.clone());
            ScalarKernel.div_assign(&mut r_s, -3.3);
            avx2.div_assign(&mut r_v, -3.3);
            assert_eq!(r_s, r_v, "div_assign len {len}");
        }
    }

    #[test]
    fn override_controls_dispatch() {
        set_kernel_override(Some(KernelKind::Scalar));
        assert_eq!(active_kernel(), KernelKind::Scalar);
        set_kernel_override(Some(KernelKind::Simd));
        if simd_available() {
            assert_eq!(active_kernel(), KernelKind::Simd);
        } else {
            assert_eq!(active_kernel(), KernelKind::Scalar);
        }
        set_kernel_override(None);
        let expected = if simd_available() {
            KernelKind::Simd
        } else {
            KernelKind::Scalar
        };
        assert_eq!(active_kernel(), expected);
    }
}
