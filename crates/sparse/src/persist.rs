//! Byte-level (de)serialization of the sparse substrate.
//!
//! This module is the bottom layer of the on-disk index format (see
//! `mogul-core::persist` for the container): a little-endian, length-prefixed
//! codec for the primitive shapes every persisted structure is made of —
//! integers, `f64` slices (stored bit-exactly via [`f64::to_bits`]), CSR
//! matrices and [`Permutation`]s — plus the `L D Lᵀ` factor codec.
//!
//! Design rules, shared by every `decode_*` function:
//!
//! * **Never panic.** Every read is bounds-checked through [`ByteReader`];
//!   short input returns [`SparseError::InvalidInput`] naming the field.
//! * **Never trust a length.** Element counts are validated against the
//!   number of bytes actually remaining *before* any allocation, so a
//!   corrupted length cannot trigger a huge allocation.
//! * **Validate structurally.** Decoded matrices go through
//!   [`CsrMatrix::from_raw_parts`] and decoded permutations through
//!   [`Permutation::from_new_to_old`], so malformed payloads are rejected
//!   with the same errors a malformed in-memory construction would produce.
//!
//! Values round-trip bit-exactly: floats are stored as raw IEEE-754 bits, so
//! a loaded factor produces *identical* substitution results, not merely
//! close ones.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};
use crate::ichol::LdlFactors;
use crate::permutation::Permutation;

/// FNV-1a 64-bit hash — the per-section checksum of the index file format.
///
/// Not cryptographic; the goal is detecting torn writes, truncation and
/// bit rot, for which a 64-bit FNV over the section payload is ample.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding primitives (infallible: they just append to a Vec)
// ---------------------------------------------------------------------------

/// Append a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Append a `usize` as a `u64`.
pub fn put_usize(out: &mut Vec<u8>, value: usize) {
    put_u64(out, value as u64);
}

/// Append an `f64` as its raw IEEE-754 bits (bit-exact round-trip).
pub fn put_f64(out: &mut Vec<u8>, value: f64) {
    put_u64(out, value.to_bits());
}

/// Append a length-prefixed slice of `usize` values.
pub fn put_usize_slice(out: &mut Vec<u8>, values: &[usize]) {
    put_usize(out, values.len());
    for &v in values {
        put_usize(out, v);
    }
}

/// Append a length-prefixed slice of `f64` values (bit-exact).
pub fn put_f64_slice(out: &mut Vec<u8>, values: &[f64]) {
    put_usize(out, values.len());
    for &v in values {
        put_f64(out, v);
    }
}

// ---------------------------------------------------------------------------
// Decoding primitives
// ---------------------------------------------------------------------------

/// A bounds-checked forward cursor over a byte slice.
///
/// All reads return [`SparseError::InvalidInput`] (naming the field that was
/// being read) instead of panicking when the input is short.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn short(&self, what: &str, needed: usize) -> SparseError {
        SparseError::InvalidInput(format!(
            "truncated payload while reading {what}: need {needed} bytes, {} remain",
            self.remaining()
        ))
    }

    /// Read `len` raw bytes.
    pub fn take_bytes(&mut self, len: usize, what: &str) -> Result<&'a [u8]> {
        if len > self.remaining() {
            return Err(self.short(what, len));
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Read one little-endian `u64`.
    pub fn take_u64(&mut self, what: &str) -> Result<u64> {
        let bytes = self.take_bytes(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Read a `u64` and convert it to `usize`, rejecting values that do not
    /// fit the platform's pointer width.
    pub fn take_usize(&mut self, what: &str) -> Result<usize> {
        let v = self.take_u64(what)?;
        usize::try_from(v).map_err(|_| {
            SparseError::InvalidInput(format!("{what}: value {v} does not fit in usize"))
        })
    }

    /// Read one `f64` stored as raw bits.
    pub fn take_f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Read a length prefix for elements of `elem_bytes` bytes each,
    /// validating the count against the remaining payload *before* the
    /// caller allocates.
    pub fn take_len(&mut self, elem_bytes: usize, what: &str) -> Result<usize> {
        let len = self.take_usize(what)?;
        let needed = len
            .checked_mul(elem_bytes)
            .ok_or_else(|| SparseError::InvalidInput(format!("{what}: length {len} overflows")))?;
        if needed > self.remaining() {
            return Err(SparseError::InvalidInput(format!(
                "{what}: declared {len} elements ({needed} bytes) but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Read a length-prefixed `usize` slice.
    pub fn take_usize_vec(&mut self, what: &str) -> Result<Vec<usize>> {
        let len = self.take_len(8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_usize(what)?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `f64` slice (bit-exact).
    pub fn take_f64_vec(&mut self, what: &str) -> Result<Vec<f64>> {
        let len = self.take_len(8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_f64(what)?);
        }
        Ok(out)
    }

    /// Assert that the payload was consumed exactly (no trailing bytes).
    pub fn finish(&self, what: &str) -> Result<()> {
        if self.remaining() != 0 {
            return Err(SparseError::InvalidInput(format!(
                "{what}: {} unexpected trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Structure codecs
// ---------------------------------------------------------------------------

/// Append a CSR matrix (shape + indptr + indices + values).
pub fn encode_csr(matrix: &CsrMatrix, out: &mut Vec<u8>) {
    put_usize(out, matrix.nrows());
    put_usize(out, matrix.ncols());
    put_usize_slice(out, matrix.indptr());
    put_usize_slice(out, matrix.indices());
    put_f64_slice(out, matrix.values());
}

/// Decode a CSR matrix, re-validating every structural invariant through
/// [`CsrMatrix::from_raw_parts`].
pub fn decode_csr(reader: &mut ByteReader<'_>, what: &str) -> Result<CsrMatrix> {
    let nrows = reader.take_usize(what)?;
    let ncols = reader.take_usize(what)?;
    let indptr = reader.take_usize_vec(what)?;
    let indices = reader.take_usize_vec(what)?;
    let values = reader.take_f64_vec(what)?;
    CsrMatrix::from_raw_parts(nrows, ncols, indptr, indices, values)
}

/// Append a permutation (its `new → old` map).
pub fn encode_permutation(perm: &Permutation, out: &mut Vec<u8>) {
    put_usize_slice(out, perm.new_to_old());
}

/// Decode a permutation, re-validating bijectivity.
pub fn decode_permutation(reader: &mut ByteReader<'_>, what: &str) -> Result<Permutation> {
    Permutation::from_new_to_old(reader.take_usize_vec(what)?)
}

/// Append `L D Lᵀ` factors.
///
/// Only `L`, `D` and the boosted-pivot count are stored: `U = Lᵀ` is
/// reconstructed by [`decode_ldl_factors`] through [`CsrMatrix::transpose`],
/// which moves values without arithmetic — the loaded `U` is bit-identical
/// to the one that was in memory, at roughly half the file size.
pub fn encode_ldl_factors(factors: &LdlFactors, out: &mut Vec<u8>) {
    encode_csr(&factors.l, out);
    put_f64_slice(out, &factors.d);
    put_usize(out, factors.boosted_pivots);
}

/// Decode `L D Lᵀ` factors (see [`encode_ldl_factors`]).
pub fn decode_ldl_factors(reader: &mut ByteReader<'_>, what: &str) -> Result<LdlFactors> {
    let l = decode_csr(reader, what)?;
    let d = reader.take_f64_vec(what)?;
    let boosted_pivots = reader.take_usize(what)?;
    if l.nrows() != l.ncols() {
        return Err(SparseError::NotSquare {
            nrows: l.nrows(),
            ncols: l.ncols(),
        });
    }
    if d.len() != l.nrows() {
        return Err(SparseError::InvalidInput(format!(
            "{what}: diagonal has {} entries but L is {}x{}",
            d.len(),
            l.nrows(),
            l.ncols()
        )));
    }
    // The solves assume a unit lower-triangular L and a nonsingular D; a
    // factor violating either would produce silently wrong substitutions,
    // so reject it here instead.
    for i in 0..l.nrows() {
        let (cols, vals) = l.row(i);
        if cols.last() != Some(&i) || *vals.last().expect("diagonal entry") != 1.0 {
            return Err(SparseError::InvalidInput(format!(
                "{what}: row {i} of L lacks the unit diagonal (or has entries above it)"
            )));
        }
    }
    if let Some(i) = d.iter().position(|v| !v.is_finite() || *v == 0.0) {
        return Err(SparseError::InvalidInput(format!(
            "{what}: diagonal pivot {i} is {} (must be finite and non-zero)",
            d[i]
        )));
    }
    let u = l.transpose();
    Ok(LdlFactors {
        l,
        u,
        d,
        boosted_pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::ichol::incomplete_ldl;

    fn sample_matrix() -> CsrMatrix {
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..4 {
            coo.push_symmetric(i, i + 1, -0.3).unwrap();
        }
        for i in 0..5 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn csr_round_trip_is_exact() {
        let m = sample_matrix();
        let mut bytes = Vec::new();
        encode_csr(&m, &mut bytes);
        let mut reader = ByteReader::new(&bytes);
        let back = decode_csr(&mut reader, "matrix").unwrap();
        reader.finish("matrix").unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn ldl_round_trip_reconstructs_u_bit_identically() {
        let factors = incomplete_ldl(&sample_matrix()).unwrap();
        let mut bytes = Vec::new();
        encode_ldl_factors(&factors, &mut bytes);
        let mut reader = ByteReader::new(&bytes);
        let back = decode_ldl_factors(&mut reader, "factors").unwrap();
        reader.finish("factors").unwrap();
        assert_eq!(factors.l, back.l);
        assert_eq!(factors.u, back.u);
        assert_eq!(factors.d, back.d);
        assert_eq!(factors.boosted_pivots, back.boosted_pivots);
    }

    #[test]
    fn permutation_round_trip() {
        let perm = Permutation::from_new_to_old(vec![3, 1, 0, 2]).unwrap();
        let mut bytes = Vec::new();
        encode_permutation(&perm, &mut bytes);
        let back = decode_permutation(&mut ByteReader::new(&bytes), "perm").unwrap();
        assert_eq!(perm, back);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let values = [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1e-308,
            f64::NAN,
        ];
        let mut bytes = Vec::new();
        put_f64_slice(&mut bytes, &values);
        let back = ByteReader::new(&bytes).take_f64_vec("floats").unwrap();
        let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        let back_bits: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, back_bits);
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let m = sample_matrix();
        let mut bytes = Vec::new();
        encode_csr(&m, &mut bytes);
        for len in 0..bytes.len() {
            let mut reader = ByteReader::new(&bytes[..len]);
            assert!(
                decode_csr(&mut reader, "matrix").is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        // A declared length of u64::MAX must fail the pre-allocation check.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, u64::MAX);
        assert!(ByteReader::new(&bytes).take_usize_vec("vec").is_err());
        // A length that overflows the byte computation as well.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, u64::MAX / 4);
        assert!(ByteReader::new(&bytes).take_f64_vec("vec").is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = Vec::new();
        put_usize_slice(&mut bytes, &[1, 2, 3]);
        bytes.push(0xAB);
        let mut reader = ByteReader::new(&bytes);
        reader.take_usize_vec("vec").unwrap();
        assert!(reader.finish("vec").is_err());
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let data = b"mogul index payload";
        let a = checksum64(data);
        let b = checksum64(data);
        assert_eq!(a, b);
        let mut flipped = data.to_vec();
        flipped[3] ^= 0x04;
        assert_ne!(a, checksum64(&flipped));
        // Pinned value: the FNV-1a constant must never drift, or every
        // previously written file would fail its checksum.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
