//! Forward and back substitution for sparse triangular systems.
//!
//! Mogul obtains the approximate ranking scores by forward substitution on
//! `L' y = q'` (Equation (4)) followed by back substitution on `U x' = y`
//! (Equation (5)); both factors come from the `L D Lᵀ` factorization of `W`
//! and are stored row-wise (CSR), which is exactly the access pattern the two
//! substitutions need.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

/// Smallest pivot magnitude accepted before a solve is declared singular.
const PIVOT_TOL: f64 = 1e-300;

/// Reusable scratch for the composite [`ldl_solve_into`] operation.
///
/// Holding the intermediate vector of the two-phase solve in a caller-owned
/// workspace lets hot query loops (for example the concurrent serving layer
/// in `mogul-serve`) run the substitution path with zero heap allocations
/// after the first call: the buffer is resized once and then reused.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    /// Intermediate `y` of `L y = b` before the diagonal scaling.
    intermediate: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SolveWorkspace::default()
    }

    /// A workspace pre-sized for systems of dimension `n`.
    pub fn with_capacity(n: usize) -> Self {
        SolveWorkspace {
            intermediate: Vec::with_capacity(n),
        }
    }
}

/// Reset `out` to `n` zeros, reusing its existing capacity.
fn reset(out: &mut Vec<f64>, n: usize) {
    out.clear();
    out.resize(n, 0.0);
}

fn check_square_and_rhs(m: &CsrMatrix, b: &[f64], op: &'static str) -> Result<()> {
    if m.nrows() != m.ncols() {
        return Err(SparseError::NotSquare {
            nrows: m.nrows(),
            ncols: m.ncols(),
        });
    }
    if b.len() != m.nrows() {
        return Err(SparseError::DimensionMismatch {
            op,
            left: (m.nrows(), m.ncols()),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

/// Solve `L x = b` where `L` is lower triangular with a non-zero stored
/// diagonal. Entries above the diagonal are ignored.
pub fn solve_lower_triangular(l: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = Vec::new();
    solve_lower_triangular_into(l, b, &mut x)?;
    Ok(x)
}

/// [`solve_lower_triangular`] writing into a caller-owned buffer (resized and
/// zeroed in place, so repeated solves never reallocate).
pub fn solve_lower_triangular_into(l: &CsrMatrix, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
    check_square_and_rhs(l, b, "solve_lower_triangular")?;
    let n = l.nrows();
    reset(x, n);
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let mut sum = b[i];
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                sum -= v * x[j];
            } else if j == i {
                diag = v;
            }
        }
        if diag.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        x[i] = sum / diag;
    }
    Ok(())
}

/// Solve `L x = b` where `L` is *unit* lower triangular (implicit or explicit
/// diagonal of ones). Entries above the diagonal are ignored.
pub fn solve_unit_lower(l: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = Vec::new();
    solve_unit_lower_into(l, b, &mut x)?;
    Ok(x)
}

/// [`solve_unit_lower`] writing into a caller-owned buffer (resized and
/// zeroed in place, so repeated solves never reallocate).
pub fn solve_unit_lower_into(l: &CsrMatrix, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
    check_square_and_rhs(l, b, "solve_unit_lower")?;
    let n = l.nrows();
    reset(x, n);
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let mut sum = b[i];
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                sum -= v * x[j];
            }
        }
        x[i] = sum;
    }
    Ok(())
}

/// Solve `U x = b` where `U` is upper triangular with a non-zero stored
/// diagonal. Entries below the diagonal are ignored.
pub fn solve_upper_triangular(u: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = Vec::new();
    solve_upper_triangular_into(u, b, &mut x)?;
    Ok(x)
}

/// [`solve_upper_triangular`] writing into a caller-owned buffer (resized and
/// zeroed in place, so repeated solves never reallocate).
pub fn solve_upper_triangular_into(u: &CsrMatrix, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
    check_square_and_rhs(u, b, "solve_upper_triangular")?;
    let n = u.nrows();
    reset(x, n);
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        let mut sum = b[i];
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                sum -= v * x[j];
            } else if j == i {
                diag = v;
            }
        }
        if diag.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        x[i] = sum / diag;
    }
    Ok(())
}

/// Solve `U x = b` where `U` is *unit* upper triangular (implicit or explicit
/// diagonal of ones). Entries below the diagonal are ignored.
pub fn solve_unit_upper(u: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = Vec::new();
    solve_unit_upper_into(u, b, &mut x)?;
    Ok(x)
}

/// [`solve_unit_upper`] writing into a caller-owned buffer (resized and
/// zeroed in place, so repeated solves never reallocate).
pub fn solve_unit_upper_into(u: &CsrMatrix, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
    check_square_and_rhs(u, b, "solve_unit_upper")?;
    let n = u.nrows();
    reset(x, n);
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        let mut sum = b[i];
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                sum -= v * x[j];
            }
        }
        x[i] = sum;
    }
    Ok(())
}

/// Solve `L D Lᵀ x = b` given the unit-lower factor `L` (rows, CSR), its
/// transpose `U = Lᵀ` (rows, CSR) and the diagonal `D`.
///
/// This is the composite operation Mogul performs when it computes the
/// approximate scores of *all* nodes (the "Incomplete Cholesky" baseline of
/// Figure 5); the selective per-cluster variant lives in `mogul-core`.
pub fn ldl_solve(l: &CsrMatrix, u: &CsrMatrix, d: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    let mut ws = SolveWorkspace::new();
    let mut x = Vec::new();
    ldl_solve_into(l, u, d, b, &mut ws, &mut x)?;
    Ok(x)
}

/// [`ldl_solve`] with caller-owned scratch and output buffers: the
/// intermediate of the forward phase lives in `ws` and the solution is
/// written to `x`, so a warm loop of solves performs no heap allocation.
pub fn ldl_solve_into(
    l: &CsrMatrix,
    u: &CsrMatrix,
    d: &[f64],
    b: &[f64],
    ws: &mut SolveWorkspace,
    x: &mut Vec<f64>,
) -> Result<()> {
    if d.len() != l.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "ldl_solve diagonal",
            left: (l.nrows(), l.ncols()),
            right: (d.len(), 1),
        });
    }
    solve_unit_lower_into(l, b, &mut ws.intermediate)?;
    for (i, yi) in ws.intermediate.iter_mut().enumerate() {
        let di = d[i];
        if di.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        *yi /= di;
    }
    solve_unit_upper_into(u, &ws.intermediate, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::vector::max_abs_diff;

    fn lower_example() -> CsrMatrix {
        // [ 2 0 0 ]
        // [ 1 3 0 ]
        // [ 0 2 4 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, 2.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lower_solve_matches_dense() {
        let l = lower_example();
        let b = vec![2.0, 7.0, 14.0];
        let x = solve_lower_triangular(&l, &b).unwrap();
        let lx = l.matvec(&x).unwrap();
        assert!(max_abs_diff(&lx, &b).unwrap() < 1e-12);
    }

    #[test]
    fn upper_solve_matches_dense() {
        let u = lower_example().transpose();
        let b = vec![5.0, 4.0, 8.0];
        let x = solve_upper_triangular(&u, &b).unwrap();
        let ux = u.matvec(&x).unwrap();
        assert!(max_abs_diff(&ux, &b).unwrap() < 1e-12);
    }

    #[test]
    fn unit_solves_ignore_missing_diagonal() {
        // Strictly lower part only; diagonal treated as 1.
        let l = CsrMatrix::from_triplets(3, 3, &[(1, 0, 0.5), (2, 1, 0.25)]).unwrap();
        let b = vec![1.0, 1.0, 1.0];
        let x = solve_unit_lower(&l, &b).unwrap();
        assert_eq!(x, vec![1.0, 0.5, 0.875]);

        let u = l.transpose();
        let xu = solve_unit_upper(&u, &b).unwrap();
        assert_eq!(xu, vec![0.625, 0.75, 1.0]);
    }

    #[test]
    fn singular_diagonals_are_reported() {
        let l = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            solve_lower_triangular(&l, &[1.0, 1.0]),
            Err(SparseError::SingularMatrix { pivot: 1 })
        ));
        let u = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            solve_upper_triangular(&u, &[1.0, 1.0]),
            Err(SparseError::SingularMatrix { pivot: 0 })
        ));
    }

    #[test]
    fn shape_validation() {
        let l = lower_example();
        assert!(solve_lower_triangular(&l, &[1.0]).is_err());
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(solve_unit_lower(&rect, &[1.0, 1.0]).is_err());
        assert!(solve_unit_upper(&rect, &[1.0, 1.0]).is_err());
        assert!(solve_upper_triangular(&rect, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn into_variants_are_bit_identical_and_reusable() {
        let l = lower_example();
        let u = l.transpose();
        let unit_l = CsrMatrix::from_triplets(3, 3, &[(1, 0, 0.5), (2, 1, 0.25)]).unwrap();
        let unit_u = unit_l.transpose();
        let d = vec![2.0, 3.0, 4.0];

        // One shared output buffer reused across every solve kind and several
        // right-hand sides: results must equal the allocating API bit for bit.
        let mut out = Vec::new();
        let mut ws = SolveWorkspace::with_capacity(3);
        for b in [vec![2.0, 7.0, 14.0], vec![-1.0, 0.5, 3.25], vec![0.0; 3]] {
            solve_lower_triangular_into(&l, &b, &mut out).unwrap();
            assert_eq!(out, solve_lower_triangular(&l, &b).unwrap());
            solve_upper_triangular_into(&u, &b, &mut out).unwrap();
            assert_eq!(out, solve_upper_triangular(&u, &b).unwrap());
            solve_unit_lower_into(&unit_l, &b, &mut out).unwrap();
            assert_eq!(out, solve_unit_lower(&unit_l, &b).unwrap());
            solve_unit_upper_into(&unit_u, &b, &mut out).unwrap();
            assert_eq!(out, solve_unit_upper(&unit_u, &b).unwrap());
            ldl_solve_into(&unit_l, &unit_u, &d, &b, &mut ws, &mut out).unwrap();
            assert_eq!(out, ldl_solve(&unit_l, &unit_u, &d, &b).unwrap());
        }

        // Shape errors are reported through the `_into` path as well.
        assert!(solve_lower_triangular_into(&l, &[1.0], &mut out).is_err());
        assert!(ldl_solve_into(&unit_l, &unit_u, &[1.0], &[1.0; 3], &mut ws, &mut out).is_err());
    }

    #[test]
    fn ldl_solve_reconstructs_spd_solution() {
        // Build an SPD matrix A = L D L^T and verify ldl_solve(A factors) inverts it.
        let l = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (1, 0, 0.5),
                (1, 1, 1.0),
                (2, 1, -0.25),
                (2, 2, 1.0),
            ],
        )
        .unwrap();
        let d = vec![4.0, 2.0, 1.0];
        let u = l.transpose();

        // Dense A = L * D * L^T for reference.
        let ld = l
            .to_dense()
            .matmul(&DenseMatrix::from_diagonal(&d))
            .unwrap();
        let a = ld.matmul(&l.to_dense().transpose()).unwrap();

        let b = vec![1.0, -2.0, 3.0];
        let x = ldl_solve(&l, &u, &d, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(max_abs_diff(&ax, &b).unwrap() < 1e-12);

        assert!(ldl_solve(&l, &u, &[1.0], &b).is_err());
        assert!(ldl_solve(&l, &u, &[1.0, 0.0, 1.0], &b).is_err());
    }
}
